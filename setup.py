"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``)
perform a legacy editable install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
