"""Ablation (DESIGN.md §5.3) — state-granular vs page-granular indexing.

The thesis indexes *states* as retrieval units.  The ablation collapses
every page model into one concatenated document (how a traditional
engine would index the page if it somehow had all the text) and counts
conjunction **false positives**: queries whose terms co-occur on the
same *page* but never in the same *state* — exactly the precision the
state-granular index preserves.
"""

from repro.experiments import datasets
from repro.experiments.exp_query import workload_queries
from repro.experiments.harness import emit, format_table
from repro.model import ApplicationModel
from repro.search import SearchEngine


def collapse_to_page_granularity(models):
    """One state per page: all state texts concatenated."""
    collapsed = []
    for model in models:
        merged = ApplicationModel(model.url)
        merged.add_state(
            f"{model.url}-merged",
            " ".join(state.text for state in model.states()),
        )
        collapsed.append(merged)
    return collapsed


def run_ablation(num_videos: int = datasets.QUERY_VIDEOS):
    crawled = datasets.crawl_ajax(num_videos)
    state_engine = SearchEngine.build(crawled.models)
    page_engine = SearchEngine.build(collapse_to_page_granularity(crawled.models))
    conjunctions = [q.text for q in workload_queries() if q.is_conjunction]
    false_positive_queries = 0
    state_pages_total = 0
    page_pages_total = 0
    for query in conjunctions:
        state_pages = {r.uri for r in state_engine.search(query)}
        page_pages = {r.uri for r in page_engine.search(query)}
        state_pages_total += len(state_pages)
        page_pages_total += len(page_pages)
        if page_pages - state_pages:
            false_positive_queries += 1
    return (
        len(conjunctions),
        false_positive_queries,
        state_pages_total,
        page_pages_total,
    )


def test_ablation_ranking_granularity(benchmark):
    total, false_positives, state_pages, page_pages = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = [
        ("Conjunction queries", total),
        ("Queries with page-level false positives", false_positives),
        ("Matched pages (state-granular)", state_pages),
        ("Matched pages (page-granular)", page_pages),
    ]
    emit(
        "ablation_ranking",
        format_table(
            ["Metric", "Value"],
            rows,
            title="Ablation: state-granular vs page-granular conjunctions",
        ),
    )
    # Page-granular indexing over-matches: terms from different states
    # are conflated, producing spurious conjunction hits.
    assert page_pages >= state_pages
    assert false_positives > 0
