"""Table 7.4 — the query workload: occurrences on the first comment page
vs on all pages.

Paper: every query matches several times more states in the AJAX index
than in the first-page (traditional) index — e.g. "wow": 310 first-page
vs 2041 total.
"""

from repro.experiments.exp_query import format_table_7_4, table_7_4
from repro.experiments.harness import emit


def test_table_7_4(benchmark):
    rows = benchmark.pedantic(table_7_4, rounds=1, iterations=1)
    emit("table_7_4", format_table_7_4(rows))
    assert len(rows) == 11
    # Every query gains results from AJAX content.
    answerable = [row for row in rows if row.all_pages > 0]
    assert len(answerable) >= 9
    assert all(row.all_pages >= row.first_page for row in rows)
    # The aggregate gain factor is in the paper's regime (~6-10x).
    total_first = sum(row.first_page for row in rows)
    total_all = sum(row.all_pages for row in rows)
    assert total_all > 2 * total_first
    # Popularity order: Q1 ("wow") beats Q11 ("low").
    assert rows[0].all_pages > rows[-1].all_pages
