"""Figure 7.10 — result throughput vs number of crawled/indexed states.

Paper: relative result throughput of AJAX vs traditional decreases
significantly as more states are indexed; a limit of 0.4 suggests
crawling ~5 states.
"""

from repro.experiments.exp_threshold import (
    crawl_threshold,
    format_figure_7_10,
    threshold_study,
)
from repro.experiments.harness import emit


def test_figure_7_10(benchmark):
    points = benchmark.pedantic(threshold_study, rounds=1, iterations=1)
    emit("fig_7_10", format_figure_7_10(points))
    # Result volume grows monotonically with indexed states.
    results = [p.total_results for p in points]
    assert results == sorted(results)
    assert results[-1] > results[0]
    # Relative query throughput decreases significantly as more AJAX
    # content is indexed (the paper's central Figure 7.10 claim).
    base = points[0].throughput
    assert points[-1].throughput < 0.8 * base
    # A 0.4-relative-throughput limit lands on a small number of states.
    threshold = crawl_threshold(points, limit=0.4)
    assert 1 <= threshold <= 11
