"""Extension bench — form-filling crawl of a Suggest-style app.

The basic crawler indexes nothing behind the form; the form-filling
crawler surfaces one state per distinct suggestion list.
"""

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, FormFillingAjaxCrawler
from repro.experiments.harness import emit, format_table
from repro.search import SearchEngine
from repro.sites import SyntheticSuggest

DICTIONARY = ("dance", "funny", "american", "chris", "wow", "qqq")


def run_comparison():
    site = SyntheticSuggest()
    cost = CostModel(network_jitter=0.0)
    basic = AjaxCrawler(site, cost_model=cost).crawl_page(site.search_url)
    filled = FormFillingAjaxCrawler(
        site, DICTIONARY, cost_model=CostModel(network_jitter=0.0)
    ).crawl_page(site.search_url)
    basic_engine = SearchEngine.build([basic.model])
    filled_engine = SearchEngine.build([filled.model])
    probe_queries = ("tutorial", "idol", "cats", "gameplay")
    return {
        "basic_states": basic.model.num_states,
        "filled_states": filled.model.num_states,
        "filled_events": filled.metrics.events_invoked,
        "basic_hits": sum(basic_engine.result_count(q) for q in probe_queries),
        "filled_hits": sum(filled_engine.result_count(q) for q in probe_queries),
    }


def test_form_filling_crawl(benchmark):
    outcome = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        ("States", outcome["basic_states"], outcome["filled_states"]),
        ("Probes fired", 0, outcome["filled_events"]),
        ("Suggestion-content hits", outcome["basic_hits"], outcome["filled_hits"]),
    ]
    emit(
        "ext_forms",
        format_table(
            ["Metric", "Basic crawler", "Form-filling crawler"],
            rows,
            title="Extension: Deep-Web-style form filling on SimSuggest",
        ),
    )
    assert outcome["basic_states"] == 1
    assert outcome["filled_states"] > outcome["basic_states"]
    assert outcome["basic_hits"] == 0
    assert outcome["filled_hits"] > 0
