"""Hashing-work benchmark: Merkle incremental hashing vs the seed full rewalk.

Crawls the webmail and youtube corpora twice — ``incremental_hashing=False``
reproduces the seed's full-rewalk baseline, ``True`` is the shipped Merkle
path — and compares the hashing work booked in the ``crawl.hash_*``
registry counters.  A query suite then times the galloping conjunction
merge against the historical linear merge.  Results are persisted as
``benchmarks/results/BENCH_hashing.json``.

The acceptance threshold (>=5x fewer hashed bytes per event on webmail)
is asserted here, so ``make bench-smoke`` / ``make check`` fail on a
hashing-work regression.
"""

import json
import time
from pathlib import Path

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.dom import clear_digest_memo
from repro.search.engine import SearchEngine
from repro.search.postings import merge_conjunction
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_hashing.json"

#: Acceptance threshold: hashed bytes per event on the webmail corpus
#: must drop by at least this factor vs the seed full-rewalk baseline.
MIN_BYTES_REDUCTION = 5.0

YOUTUBE_VIDEOS = 8

_COUNTERS = (
    "events_invoked",
    "hash_nodes_hashed",
    "hash_nodes_skipped",
    "hash_bytes_hashed",
    "hash_full_passes",
    "hash_incremental_passes",
)


def _corpus(name):
    if name == "webmail":
        site = SyntheticWebmail()
        return site, [site.inbox_url]
    site = SyntheticYouTube(SiteConfig(num_videos=YOUTUBE_VIDEOS, seed=7))
    return site, [site.video_url(i) for i in range(YOUTUBE_VIDEOS)]


def _crawl(name, incremental):
    clear_digest_memo()  # each mode starts cold: no cross-run hashing credit
    site, urls = _corpus(name)
    crawler = AjaxCrawler(
        site,
        CrawlerConfig(incremental_hashing=incremental),
        clock=SimClock(),
        cost_model=CostModel(),
    )
    start = time.perf_counter()
    result = crawler.crawl(urls)
    wall_ms = (time.perf_counter() - start) * 1000.0
    registry = result.report.registry
    record = {key: registry.counter(f"crawl.{key}") for key in _COUNTERS}
    events = record["events_invoked"] or 1
    record["bytes_per_event"] = record["hash_bytes_hashed"] / events
    record["crawl_wall_ms"] = wall_ms
    hashes = sorted(
        state.content_hash for model in result.models for state in model.states()
    )
    return record, hashes, result.models


def _naive_merge(lists):
    """The seed linear merge, kept here as the timing baseline."""
    if not lists:
        return []
    if any(not postings for postings in lists):
        return []
    cursors = [0] * len(lists)
    results = []
    while all(cursors[i] < len(lists[i]) for i in range(len(lists))):
        keys = [lists[i][cursors[i]].sort_key for i in range(len(lists))]
        largest = max(keys)
        if all(key == largest for key in keys):
            results.append([lists[i][cursors[i]] for i in range(len(lists))])
            for i in range(len(lists)):
                cursors[i] += 1
            continue
        for i in range(len(lists)):
            if keys[i] < largest:
                cursors[i] += 1
    return results


def _query_suite(models):
    """Multi-term conjunctions over the crawled corpus + a skewed case."""
    engine = SearchEngine.build(models)
    index = engine.index
    by_frequency = sorted(
        index._postings, key=lambda term: len(index._postings[term]), reverse=True
    )
    frequent = by_frequency[:4]
    rare = by_frequency[len(by_frequency) // 2 : len(by_frequency) // 2 + 4]
    queries = [
        " ".join(frequent[:2]),
        " ".join(frequent[:3]),
        f"{frequent[0]} {rare[0]}",
        f"{frequent[1]} {frequent[2]} {rare[1]}",
        " ".join(rare[:2]),
    ]
    start = time.perf_counter()
    total_results = sum(len(engine.search(query)) for query in queries)
    engine_wall_ms = (time.perf_counter() - start) * 1000.0

    # Merge-only timing on the actual posting lists of the suite.
    posting_sets = [
        [index.postings(term) for term in query.split()] for query in queries
    ]
    repeats = 50
    start = time.perf_counter()
    for _ in range(repeats):
        galloping = [merge_conjunction(lists) for lists in posting_sets]
    galloping_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    for _ in range(repeats):
        naive = [_naive_merge(lists) for lists in posting_sets]
    naive_ms = (time.perf_counter() - start) * 1000.0
    assert galloping == naive, "galloping merge diverged from the linear merge"

    return {
        "queries": queries,
        "total_results": total_results,
        "engine_wall_ms": engine_wall_ms,
        "merge_repeats": repeats,
        "galloping_merge_ms": galloping_ms,
        "naive_merge_ms": naive_ms,
    }


def _skewed_merge_timing():
    """The galloping win case: one long list, one short selective list."""
    from repro.search.postings import Posting, sort_postings

    long_list = sort_postings(
        [
            Posting(uri=f"http://site/{i // 50}", state_id=f"s{i % 50}", positions=(0,))
            for i in range(40_000)
        ]
    )
    short_list = [long_list[i] for i in range(0, 40_000, 4000)]
    start = time.perf_counter()
    galloping = merge_conjunction([long_list, short_list])
    galloping_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    naive = _naive_merge([long_list, short_list])
    naive_ms = (time.perf_counter() - start) * 1000.0
    assert galloping == naive
    return {
        "long_list": len(long_list),
        "short_list": len(short_list),
        "galloping_ms": galloping_ms,
        "naive_ms": naive_ms,
        "speedup": naive_ms / galloping_ms if galloping_ms else float("inf"),
    }


def hashing_study():
    corpora = {}
    merkle_models = []
    for name in ("webmail", "youtube"):
        baseline, baseline_hashes, _ = _crawl(name, incremental=False)
        merkle, merkle_hashes, models = _crawl(name, incremental=True)
        assert merkle_hashes == baseline_hashes, f"{name}: state hashes diverged"
        merkle_models.extend(models)
        corpora[name] = {
            "baseline": baseline,
            "merkle": merkle,
            "bytes_reduction_factor": baseline["bytes_per_event"]
            / max(merkle["bytes_per_event"], 1e-9),
            "nodes_reduction_factor": baseline["hash_nodes_hashed"]
            / max(merkle["hash_nodes_hashed"], 1),
            "hashes_identical": True,
        }
    report = {
        "corpora": corpora,
        "query_suite": _query_suite(merkle_models),
        "skewed_merge": _skewed_merge_timing(),
        "threshold": {
            "min_bytes_reduction": MIN_BYTES_REDUCTION,
            "webmail_bytes_reduction": corpora["webmail"]["bytes_reduction_factor"],
            "passed": corpora["webmail"]["bytes_reduction_factor"]
            >= MIN_BYTES_REDUCTION,
        },
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_hashing_benchmark(benchmark):
    report = benchmark.pedantic(hashing_study, rounds=1, iterations=1)
    for name, corpus in report["corpora"].items():
        print(
            f"[{name}] bytes/event: {corpus['baseline']['bytes_per_event']:.0f} -> "
            f"{corpus['merkle']['bytes_per_event']:.0f} "
            f"({corpus['bytes_reduction_factor']:.1f}x)"
        )
        assert corpus["hashes_identical"]
        # The Merkle path actually skips work on every corpus.
        assert corpus["merkle"]["hash_nodes_skipped"] > 0
        assert corpus["baseline"]["hash_nodes_skipped"] == 0
    # Acceptance: >=5x fewer hashed bytes per event on webmail.
    assert report["threshold"]["passed"], report["threshold"]
    # Galloping wins clearly on the skewed case and never changes results.
    assert report["skewed_merge"]["speedup"] > 3.0, report["skewed_merge"]
