"""Threads-backend scaling benchmark: wall-clock speedup over workers.

The simulated backend executes on virtual time, so its "parallelism" is
an accounting exercise; this benchmark measures the *real* one.  A
synthetic YouTube site is wrapped in a server that sleeps a fixed real
latency per request — the I/O-bound regime the thesis crawls in, and
the regime where Python threads genuinely overlap (the GIL is released
in ``time.sleep``; pure-CPU crawling would not scale).  The same
partition list is crawled with 1, 2 and 4 worker threads and the
speedup is asserted against a loose floor.

Also recorded: backend parity of the merged report across the sweep
(every worker count must produce the identical crawl), and the
work-stealing counters.  Results go to
``benchmarks/results/BENCH_parallel.json``.
"""

import json
import time
from pathlib import Path

from repro.clock import CostModel
from repro.parallel import MPAjaxCrawler, partition_urls
from repro.sites import SiteConfig, SyntheticYouTube

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_parallel.json"

NUM_VIDEOS = 20
PARTITION_SIZE = 1
#: Real seconds slept per server request (page or fragment).
REQUEST_SLEEP_S = 0.025
WORKER_SWEEP = (1, 2, 4)

#: Loose floor: 4 workers over an 8ms-per-request site must be at least
#: this much faster than 1 worker (recording machine: ~3x).
MIN_SPEEDUP_4 = 1.5


class SleepingServer:
    """Delegates to a simulated site, sleeping real time per request.

    ``time.sleep`` releases the GIL, so concurrent partition crawls
    overlap their waits exactly as real network fetches would.
    """

    def __init__(self, site, sleep_s: float) -> None:
        self._site = site
        self._sleep_s = sleep_s

    def handle(self, request):
        time.sleep(self._sleep_s)
        return self._site.handle(request)

    def __getattr__(self, name):
        return getattr(self._site, name)


def parallel_study() -> dict:
    site = SyntheticYouTube(SiteConfig(num_videos=NUM_VIDEOS, seed=7))
    server = SleepingServer(site, REQUEST_SLEEP_S)
    partitions = partition_urls(
        [site.video_url(i) for i in range(NUM_VIDEOS)], PARTITION_SIZE
    )

    # Warm-up crawl (not recorded): fills the global digest memo so the
    # sweep entries are hash-accounting-identical, and absorbs one-time
    # interpreter warm-up out of the 1-worker baseline.
    MPAjaxCrawler(
        site, num_proc_lines=1, cost_model=CostModel(network_jitter=0.0)
    ).run(partitions, backend="threads")

    sweep = []
    reports = []
    for workers in WORKER_SWEEP:
        controller = MPAjaxCrawler(
            server,
            num_proc_lines=workers,
            cost_model=CostModel(network_jitter=0.0),
        )
        started = time.perf_counter()
        run = controller.run(partitions, backend="threads")
        wall_s = time.perf_counter() - started
        reports.append(run.result.report.registry.snapshot())
        sweep.append(
            {
                "workers": workers,
                "wall_s": round(wall_s, 4),
                "pages": run.total_pages,
                "pages_per_s": round(run.total_pages / wall_s, 2),
                "partitions_stolen": run.partitions_stolen,
                "worker_busy_s": [round(ms / 1000.0, 4) for ms in run.worker_wall_ms],
            }
        )

    by_workers = {entry["workers"]: entry for entry in sweep}
    speedup_2 = by_workers[1]["wall_s"] / by_workers[2]["wall_s"]
    speedup_4 = by_workers[1]["wall_s"] / by_workers[4]["wall_s"]
    report = {
        "dataset": {
            "num_videos": NUM_VIDEOS,
            "partition_size": PARTITION_SIZE,
            "partitions": len(partitions),
            "request_sleep_ms": REQUEST_SLEEP_S * 1000.0,
        },
        "sweep": sweep,
        "speedup": {"2_workers": round(speedup_2, 3), "4_workers": round(speedup_4, 3)},
        "merged_reports_identical_across_sweep": all(
            snapshot == reports[0] for snapshot in reports
        ),
        "threshold": {"min_speedup_4_workers": MIN_SPEEDUP_4},
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_parallel_benchmark(benchmark):
    report = benchmark.pedantic(parallel_study, rounds=1, iterations=1)
    for entry in report["sweep"]:
        print(
            f"\n[parallel] {entry['workers']} worker(s): "
            f"{entry['wall_s']:.2f}s wall, {entry['pages_per_s']:.1f} pages/s, "
            f"{entry['partitions_stolen']} stolen"
        )
    print(
        f"[parallel] speedup: {report['speedup']['2_workers']:.2f}x at 2, "
        f"{report['speedup']['4_workers']:.2f}x at 4 workers"
    )
    assert report["merged_reports_identical_across_sweep"], (
        "worker count changed the merged crawl — parity broken"
    )
    for entry in report["sweep"]:
        assert entry["pages"] == NUM_VIDEOS
    assert report["speedup"]["4_workers"] >= MIN_SPEEDUP_4
    assert RESULT_PATH.exists()
