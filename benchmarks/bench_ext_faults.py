"""Extension bench — crawl throughput vs. injected server-fault rate.

The robustness experiment the thesis could not run: a deterministic
fault plan injects 5xx responses into the AJAX endpoints at increasing
rates while the four-line parallel crawler (with retries enabled)
crawls the same site.  The crawl must complete at every rate; the cost
of faults shows up as quarantined events, retry time and reduced state
throughput — never as an aborted partition.
"""

from repro.experiments.exp_faults import fault_study, format_fault_table
from repro.experiments.harness import emit


def test_fault_tolerance_throughput(benchmark):
    points = benchmark.pedantic(fault_study, rounds=1, iterations=1)
    emit("ext_faults", format_fault_table(points))
    clean, faulty = points[0], points[-1]
    # Every run completes every page crawl; failures never kill a partition.
    assert all(p.pages + p.failed_pages == clean.pages for p in points)
    # The zero-fault run is a true no-op for the retry layer.
    assert clean.injected_faults == 0
    assert clean.retries == 0 and clean.failed_requests == 0
    assert clean.quarantined_events == 0
    # Bookkeeping invariant: every injected fault is either retried or
    # exhausts a request — nothing vanishes.
    assert all(p.retries + p.failed_requests == p.injected_faults for p in points)
    # Faults cost real virtual time and real coverage.
    assert faulty.injected_faults > 0
    assert faulty.retry_time_ms > 0
    assert faulty.states_per_second < clean.states_per_second
