"""Extension bench — incremental recrawling (ch. 10 future work).

A second crawl session over an unchanged site skips the events the first
session proved to be no-ops, cutting event invocations and crawl time.
"""

from repro.clock import CostModel
from repro.crawler import IncrementalAjaxCrawler
from repro.experiments.harness import emit, format_table
from repro.sites import SiteConfig, SyntheticYouTube


def run_sessions(num_videos: int = 80):
    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7, decorative_events=True))
    urls = [site.video_url(i) for i in range(num_videos)]
    cost = CostModel(network_jitter=0.0)
    first = IncrementalAjaxCrawler(site, cost_model=cost)
    first_result = first.crawl(urls)
    second = IncrementalAjaxCrawler(site, history=first.history, cost_model=CostModel(network_jitter=0.0))
    second_result = second.crawl(urls)
    return first_result.report, second_result.report


def test_incremental_recrawl(benchmark):
    first, second = benchmark.pedantic(run_sessions, rounds=1, iterations=1)
    skipped = sum(p.events_skipped_from_history for p in second.pages)
    rows = [
        ("Events invoked", first.total_events, second.total_events),
        ("Events skipped (history)", 0, skipped),
        ("States", first.total_states, second.total_states),
        ("Crawl time (s)", first.total_time_ms / 1000, second.total_time_ms / 1000),
    ]
    emit(
        "ext_incremental",
        format_table(
            ["Metric", "Session 1", "Session 2"],
            rows,
            title="Extension: incremental recrawl of an unchanged site",
        ),
    )
    assert skipped > 0
    assert second.total_events < first.total_events
    assert second.total_time_ms < first.total_time_ms
    assert second.total_states == first.total_states  # same content crawled
