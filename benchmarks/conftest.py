"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the thesis'
evaluation (chapter 7).  Datasets are memoized inside
``repro.experiments.datasets``, so the corpus is crawled once per
process no matter how many benchmarks consume it.  Rendered outputs are
printed and persisted under ``benchmarks/results/``.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _announce_dataset_sizes():
    from repro.experiments import datasets

    print(
        f"\n[repro] dataset sizes: full={datasets.FULL_VIDEOS} videos, "
        f"query={datasets.QUERY_VIDEOS} videos, seed={datasets.DATASET_SEED}"
    )
    yield
