"""Figure 7.2 — number of states and events vs number of crawled videos.

Paper: both grow with the number of videos, events growing faster than
states (every state exposes several events).
"""

from repro.experiments.exp_dataset import figure_7_2, format_figure_7_2
from repro.experiments.harness import emit


def test_figure_7_2(benchmark):
    points = benchmark.pedantic(figure_7_2, rounds=1, iterations=1)
    emit("fig_7_2", format_figure_7_2(points))
    # Monotone growth in both series.
    states = [p.states for p in points]
    events = [p.events for p in points]
    assert states == sorted(states)
    assert events == sorted(events)
    # Events dominate states at every subset size.
    assert all(p.events > p.states for p in points if p.states > p.videos)
    # Events per state stay in the paper's regime (~4.5).
    last = points[-1]
    assert 3.0 < last.events / last.states < 7.0
