"""Near-duplicate collapse benchmark: crawl-cost reduction on noisy twins.

Crawls a cycle-rich noisy-twin corpus (every fragment carries a
per-request volatile region, the youtube-style failure mode of exact
state identity) twice under identical crawl limits — once with
``near_dup_threshold`` unset, once with the banded-LSH collapse layer
on — and enforces the PR's acceptance floors:

* **>= 2x fewer states** crawled and indexed with collapse on (the
  exact-identity crawl unrolls the transition graph to the 3x state
  cap; the collapsed crawl recovers exactly the logical states);
* **>= 1.5x fewer events fired** and hash passes run (collapsed states
  are never re-explored);
* **zero false merges**: every collapsed model is marker-verified to
  be a bijection onto its spec page's logical states;
* the collapsed index answers every marker query with exactly one
  state (no twin fragmentation), and is >= 2x smaller in postings.

Results are persisted as ``benchmarks/results/BENCH_dedup.json``.
"""

import json
import tempfile
from pathlib import Path

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.search import SearchEngine, SegmentedIndex
from repro.testgen.conformance import recover_graph
from repro.testgen.noisy import (
    NEAR_DUP_THRESHOLD,
    NoisyGeneratedSite,
    generate_noisy_site,
)

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_dedup.json"

#: Corpus: seeds disjoint from the conformance corpus (0..49), two
#: pages each, extra back/cross edges so the exact-identity unrolling
#: cycles into the state cap.
CORPUS_SEEDS = tuple(range(101, 109))
NUM_PAGES = 2
EXTRA_EDGES = 6
#: State cap per page, as a multiple of the largest logical page.
CAP_FACTOR = 3

#: Acceptance floors (corpus aggregate; measured ~2.4x states, ~2.3x
#: events on this pinned corpus — regressions show up well below).
MIN_STATES_RATIO = 2.0
MIN_INDEXED_RATIO = 2.0
MIN_EVENTS_RATIO = 1.5
MIN_HASH_PASS_RATIO = 1.5
MIN_POSTINGS_RATIO = 2.0


def _config(spec, threshold):
    max_page_states = max(page.num_states for page in spec.pages)
    return CrawlerConfig(
        max_additional_states=CAP_FACTOR * max_page_states - 1,
        use_hot_node=False,
        max_event_invocations=10_000,
        near_dup_threshold=threshold,
    )


def _crawl(spec, threshold):
    crawler = AjaxCrawler(
        NoisyGeneratedSite(spec),
        _config(spec, threshold),
        clock=SimClock(),
        cost_model=CostModel(network_jitter=0.0),
    )
    return crawler.crawl(spec.all_urls())


def _hash_passes(report):
    return sum(
        page.hash_full_passes + page.hash_incremental_passes
        for page in report.pages
    )


def dedup_study():
    specs = [
        generate_noisy_site(
            seed,
            num_pages=NUM_PAGES,
            extra_edges=EXTRA_EDGES,
            base_url=f"http://noisy{seed}.test",
        )
        for seed in CORPUS_SEEDS
    ]
    totals = {
        mode: {"states": 0, "events": 0, "ajax_calls": 0, "hash_passes": 0}
        for mode in ("off", "on")
    }
    models = {"off": [], "on": []}
    false_merges = 0
    missed_twins = 0
    collapses = 0
    logical_states = 0
    for spec in specs:
        for mode, threshold in (("off", None), ("on", NEAR_DUP_THRESHOLD)):
            crawl = _crawl(spec, threshold)
            report = crawl.report
            totals[mode]["states"] += report.total_states
            totals[mode]["events"] += report.total_events
            totals[mode]["ajax_calls"] += report.total_ajax_calls
            totals[mode]["hash_passes"] += _hash_passes(report)
            models[mode].extend(crawl.models)
            if mode == "on":
                collapses += report.total_states_collapsed
                for page, model in zip(spec.pages, crawl.models):
                    logical_states += page.num_states
                    recovered = recover_graph(page, model)
                    distinct = len(set(recovered.mapping.values()))
                    # Fewer distinct spec states than model states means
                    # two logical states shared a canonical: a false
                    # merge.  More logical states than model states
                    # means a twin escaped collapse.
                    false_merges += model.num_states - distinct
                    missed_twins += page.num_states - distinct

    # -- index both corpora: the canonical states are what gets indexed ----
    index_stats = {}
    marker_fragmentation = 0
    with tempfile.TemporaryDirectory(prefix="bench-dedup-") as scratch:
        for mode in ("off", "on"):
            index = SegmentedIndex(f"{scratch}/{mode}").build(models[mode])
            stats = index.stats()
            index_stats[mode] = {
                "states": len(index.states()),
                "postings": stats["num_postings"],
                "bytes": stats["num_bytes"],
            }
            index.close()
        engine = SearchEngine.build(models["on"])
        for spec in specs:
            for page in spec.pages:
                for marker in page.markers:
                    if engine.result_count(marker) != 1:
                        marker_fragmentation += 1

    def ratio(quantity):
        return totals["off"][quantity] / max(1, totals["on"][quantity])

    report = {
        "corpus": {
            "seeds": list(CORPUS_SEEDS),
            "num_pages": NUM_PAGES,
            "extra_edges": EXTRA_EDGES,
            "cap_factor": CAP_FACTOR,
            "logical_states": logical_states,
            "near_dup_threshold": NEAR_DUP_THRESHOLD,
        },
        "crawl": {
            "off": totals["off"],
            "on": totals["on"],
            "states_ratio": ratio("states"),
            "events_ratio": ratio("events"),
            "ajax_calls_ratio": ratio("ajax_calls"),
            "hash_passes_ratio": ratio("hash_passes"),
            "states_collapsed": collapses,
        },
        "index": {
            "off": index_stats["off"],
            "on": index_stats["on"],
            "states_ratio": index_stats["off"]["states"]
            / max(1, index_stats["on"]["states"]),
            "postings_ratio": index_stats["off"]["postings"]
            / max(1, index_stats["on"]["postings"]),
            "bytes_ratio": index_stats["off"]["bytes"]
            / max(1, index_stats["on"]["bytes"]),
        },
        "correctness": {
            "false_merges": false_merges,
            "missed_twins": missed_twins,
            "fragmented_markers": marker_fragmentation,
        },
        "thresholds": {
            "min_states_ratio": MIN_STATES_RATIO,
            "min_indexed_ratio": MIN_INDEXED_RATIO,
            "min_events_ratio": MIN_EVENTS_RATIO,
            "min_hash_pass_ratio": MIN_HASH_PASS_RATIO,
            "min_postings_ratio": MIN_POSTINGS_RATIO,
        },
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_dedup_benchmark(benchmark):
    report = benchmark.pedantic(dedup_study, rounds=1, iterations=1)
    crawl = report["crawl"]
    index = report["index"]
    correctness = report["correctness"]
    print(
        f"[dedup] states {crawl['off']['states']} -> {crawl['on']['states']} "
        f"({crawl['states_ratio']:.2f}x), events {crawl['off']['events']} -> "
        f"{crawl['on']['events']} ({crawl['events_ratio']:.2f}x), "
        f"{crawl['states_collapsed']} collapses"
    )
    print(
        f"[dedup] index {index['off']['states']} -> {index['on']['states']} "
        f"states ({index['states_ratio']:.2f}x), postings "
        f"{index['off']['postings']} -> {index['on']['postings']} "
        f"({index['postings_ratio']:.2f}x)"
    )
    # Floor 1: >= 2x reduction in states crawled and indexed.
    assert crawl["states_ratio"] >= MIN_STATES_RATIO, crawl
    assert index["states_ratio"] >= MIN_INDEXED_RATIO, index
    # Floor 2: the crawl itself gets cheaper, not just the model smaller.
    assert crawl["events_ratio"] >= MIN_EVENTS_RATIO, crawl
    assert crawl["hash_passes_ratio"] >= MIN_HASH_PASS_RATIO, crawl
    # Floor 3: the index shrinks with the model.
    assert index["postings_ratio"] >= MIN_POSTINGS_RATIO, index
    # Floor 4: zero distinct-state false merges, zero escaped twins,
    # and every marker query resolves to exactly one canonical state.
    assert correctness["false_merges"] == 0, correctness
    assert correctness["missed_twins"] == 0, correctness
    assert correctness["fragmented_markers"] == 0, correctness
    # The collapsed crawl recovered exactly the logical corpus.
    assert crawl["on"]["states"] == report["corpus"]["logical_states"], crawl
