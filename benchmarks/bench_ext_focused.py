"""Extension bench — focused AJAX crawling (§7.2.2 / ch. 10 future work).

A profile-guided crawl restricts the number of crawled states while
retaining most of the results relevant to the profile.
"""

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, FocusedAjaxCrawler, InterestProfile
from repro.experiments.harness import emit, format_table
from repro.search import SearchEngine
from repro.sites import SiteConfig, SyntheticYouTube

PROFILE_TERMS = ("wow", "dance", "funny")
CONTROL_TERMS = ("kiss", "fight", "low")


def run_comparison(num_videos: int = 120):
    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7))
    urls = [site.video_url(i) for i in range(num_videos)]
    cost = CostModel(network_jitter=0.0)
    full = AjaxCrawler(site, cost_model=cost).crawl(urls)
    focused = FocusedAjaxCrawler(
        site,
        InterestProfile(PROFILE_TERMS),
        min_relevance=0.0,
        cost_model=CostModel(network_jitter=0.0),
    ).crawl(urls)
    full_engine = SearchEngine.build(full.models)
    focused_engine = SearchEngine.build(focused.models)

    def retained(terms):
        kept = total = 0
        for term in terms:
            total += full_engine.result_count(term)
            kept += focused_engine.result_count(term)
        return kept / total if total else 1.0

    return {
        "full_states": full.report.total_states,
        "focused_states": focused.report.total_states,
        "full_time_s": full.report.total_time_ms / 1000,
        "focused_time_s": focused.report.total_time_ms / 1000,
        "profile_retained": retained(PROFILE_TERMS),
        "control_retained": retained(CONTROL_TERMS),
    }


def test_focused_crawl(benchmark):
    outcome = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        ("States crawled", outcome["full_states"], outcome["focused_states"]),
        ("Crawl time (s)", outcome["full_time_s"], outcome["focused_time_s"]),
        ("Profile-term results retained", "100%", f"{outcome['profile_retained']:.0%}"),
        ("Control-term results retained", "100%", f"{outcome['control_retained']:.0%}"),
    ]
    emit(
        "ext_focused",
        format_table(
            ["Metric", "Full crawl", "Focused crawl"],
            rows,
            title="Extension: focused crawling with profile "
            f"{PROFILE_TERMS}",
        ),
    )
    assert outcome["focused_states"] < outcome["full_states"]
    assert outcome["focused_time_s"] < outcome["full_time_s"]
    # The focused crawl keeps most of the profile's results.
    assert outcome["profile_retained"] > 0.6
