"""Table 7.1 — statistics of the crawled dataset.

Paper (YouTube10000): 10000 pages, 41572 states, 187980 events,
18.8 events/page, 37349 events leading to network (~80% reduction).
Shape to reproduce: ~4 states/page, ~4.5 events/state, hot nodes cut
network calls by roughly a factor of five.
"""

from repro.experiments.exp_dataset import format_table_7_1, table_7_1
from repro.experiments.harness import emit


def test_table_7_1(benchmark):
    stats = benchmark.pedantic(table_7_1, rounds=1, iterations=1)
    emit("table_7_1", format_table_7_1(stats))
    # Shape assertions against the paper.
    assert 2.0 < stats.total_states / stats.num_pages < 7.0
    assert 3.0 < stats.total_events / stats.total_states < 7.0
    assert stats.network_reduction > 0.6  # paper: ~80%
    assert stats.events_leading_to_network < stats.total_events
