"""Figure 7.5 — AJAX events resulting in network calls, with/without caching.

Paper: at 100 videos, 1790 calls without the hot-node policy vs 359 with
it — a factor of five.  Without caching, *every* invoked event costs a
network round trip.
"""

from repro.experiments.exp_caching import caching_study, format_figure_7_5
from repro.experiments.harness import emit


def test_figure_7_5(benchmark):
    points = benchmark.pedantic(caching_study, rounds=1, iterations=1)
    emit("fig_7_5", format_figure_7_5(points))
    largest = points[-1]
    assert largest.videos == 100
    # Caching cuts calls by a clear factor (paper: ~5x).
    assert largest.call_reduction_factor > 2.5
    # Both series grow with the number of videos.
    with_cache = [p.calls_with_cache for p in points]
    without = [p.calls_without_cache for p in points]
    assert with_cache == sorted(with_cache)
    assert without == sorted(without)
    assert all(p.calls_with_cache < p.calls_without_cache for p in points)
