"""Serving-tier load benchmark: latency percentiles, RPS, cache, 429s.

Boots a real :class:`~repro.serve.SearchServer` on an ephemeral port
over a 40-video synthetic YouTube crawl and drives the Table 7.4 paper
workload through closed-loop HTTP workers, three ways:

1. **throughput** — no limits, 8 workers: p50/p95/p99 latency, RPS and
   cache hit rate of the hot serving path;
2. **rate-limited** — a tight token bucket: verifies the 429 path under
   load and records the rejection count;
3. **soak** — 5 ms deterministic injected latency: verifies injection
   actually shapes the observed latency floor;
4. **telemetry overhead** — the same workload with live telemetry on vs
   off (best of two runs each): the windowed counters, sketches, SLO
   trackers and trace rings must cost under 10% of throughput
   (``MIN_TELEMETRY_RATIO`` asserted).

Results go to ``benchmarks/results/BENCH_serving.json``.  The asserted
floors are deliberately loose (an order of magnitude under the
recording machine) — they catch a serving-path complexity regression,
not machine noise.
"""

import json
from pathlib import Path

from repro.clock import CostModel
from repro.crawler import AjaxCrawler
from repro.net.latency import ConstantLatency
from repro.search import SearchEngine
from repro.serve import (
    LoadTestConfig,
    SearchServer,
    SearchService,
    ServeConfig,
    TelemetryConfig,
    run_loadtest,
)
from repro.sites import SiteConfig, SyntheticYouTube, paper_queries

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_serving.json"

NUM_VIDEOS = 40

#: Throughput floors (recording machine: >1000 req/s, sub-ms p50).
MIN_RPS = 50.0
MAX_P50_MS = 100.0
MAX_P99_MS = 1000.0
MIN_CACHE_HIT_RATE = 0.5
#: Live telemetry may cost at most 10% of telemetry-off throughput.
MIN_TELEMETRY_RATIO = 0.9

_CORPUS = None


def _corpus():
    """Crawl + index once; every serving pass shares the read-only engine."""
    global _CORPUS
    if _CORPUS is None:
        site = SyntheticYouTube(SiteConfig(num_videos=NUM_VIDEOS, seed=7))
        crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        crawled = crawler.crawl([site.video_url(i) for i in range(NUM_VIDEOS)])
        engine = SearchEngine.build(crawled.models)
        _CORPUS = (engine, crawled.models, site)
    return _CORPUS


def _build_service(config: ServeConfig) -> SearchService:
    engine, models, site = _corpus()
    return SearchService(engine, config, models=models, site=site)


def serving_study() -> dict:
    queries = [query.text for query in paper_queries()]

    with SearchServer(_build_service(ServeConfig())) as server:
        throughput = run_loadtest(
            server.url,
            queries,
            LoadTestConfig(workers=8, requests_per_worker=150),
        )
        states = server.service.engine.index.num_states

    limited_config = ServeConfig(rate_limit_rps=10.0, rate_limit_burst=5.0)
    with SearchServer(_build_service(limited_config)) as server:
        limited = run_loadtest(
            server.url,
            queries,
            # One shared client id so every worker drains the same bucket.
            LoadTestConfig(workers=4, requests_per_worker=50, client_prefix=None),
        )

    # Cache off: hits skip injection, and a 99%-hit workload would
    # otherwise hide the injected floor entirely.
    soak_config = ServeConfig(
        latency_ms=5.0,
        latency_distribution=ConstantLatency(1.0),
        cache_entries=0,
    )
    with SearchServer(_build_service(soak_config)) as server:
        soak = run_loadtest(
            server.url,
            queries,
            LoadTestConfig(workers=4, requests_per_worker=30),
        )

    # Telemetry on vs off, best of two runs each (closed-loop loopback
    # throughput is noisy; best-of damps scheduler jitter).
    overhead_load = LoadTestConfig(workers=8, requests_per_worker=100)
    modes = {}
    for name, enabled in (("on", True), ("off", False)):
        config = ServeConfig(telemetry=TelemetryConfig(enabled=enabled))
        best = None
        for _ in range(2):
            with SearchServer(_build_service(config)) as server:
                run = run_loadtest(server.url, queries, overhead_load)
            if best is None or run.rps > best.rps:
                best = run
        modes[name] = best
    telemetry_ratio = (
        modes["on"].rps / modes["off"].rps if modes["off"].rps else 0.0
    )

    report = {
        "dataset": {"num_videos": NUM_VIDEOS, "indexed_states": states},
        "workload": {"queries": len(queries), "source": "Table 7.4"},
        "throughput": throughput.to_dict(),
        "rate_limited": limited.to_dict(),
        "soak_latency_5ms": soak.to_dict(),
        "telemetry_overhead": {
            "on": modes["on"].to_dict(),
            "off": modes["off"].to_dict(),
            "ratio": telemetry_ratio,
            "min_ratio": MIN_TELEMETRY_RATIO,
        },
        "threshold": {
            "min_rps": MIN_RPS,
            "max_p50_ms": MAX_P50_MS,
            "max_p99_ms": MAX_P99_MS,
            "min_cache_hit_rate": MIN_CACHE_HIT_RATE,
            "min_telemetry_ratio": MIN_TELEMETRY_RATIO,
        },
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_serving_benchmark(benchmark):
    report = benchmark.pedantic(serving_study, rounds=1, iterations=1)
    throughput = report["throughput"]
    limited = report["rate_limited"]
    soak = report["soak_latency_5ms"]
    print(
        f"\n[serving] {throughput['requests']} requests at "
        f"{throughput['rps']:.0f} req/s, p50={throughput['p50_ms']:.2f}ms "
        f"p95={throughput['p95_ms']:.2f}ms p99={throughput['p99_ms']:.2f}ms, "
        f"cache hit rate {throughput['cache_hit_rate']:.0%}"
    )
    print(
        f"[serving] rate-limited pass: {limited['rate_limited']} of "
        f"{limited['requests']} rejected with 429"
    )
    print(
        f"[serving] soak pass (5ms injected): p50={soak['p50_ms']:.2f}ms"
    )
    overhead = report["telemetry_overhead"]
    print(
        f"[serving] telemetry overhead: {overhead['on']['rps']:.0f} req/s on "
        f"vs {overhead['off']['rps']:.0f} req/s off "
        f"(ratio {overhead['ratio']:.2f}, floor {MIN_TELEMETRY_RATIO})"
    )

    assert throughput["errors"] == 0
    assert throughput["rps"] >= MIN_RPS
    assert throughput["p50_ms"] <= MAX_P50_MS
    assert throughput["p99_ms"] <= MAX_P99_MS
    assert throughput["cache_hit_rate"] >= MIN_CACHE_HIT_RATE
    # The tight bucket must reject most of the closed-loop burst...
    assert limited["rate_limited"] > 0
    assert limited["status_counts"].get("429", 0) == limited["rate_limited"]
    # ...and injected latency must dominate the soak pass's floor.
    assert soak["p50_ms"] >= 4.0
    # Live telemetry must stay within 10% of telemetry-off throughput.
    assert overhead["on"]["errors"] == 0 and overhead["off"]["errors"] == 0
    assert overhead["ratio"] >= MIN_TELEMETRY_RATIO
    assert RESULT_PATH.exists()
