"""Figure 7.3 — distribution of per-page crawling times.

Paper: most pages crawl in under five seconds; only pages with many
states take longer than 20-30 seconds.
"""

from repro.experiments.exp_crawl import figure_7_3, format_figure_7_3
from repro.experiments.harness import emit


def test_figure_7_3(benchmark):
    histogram = benchmark.pedantic(figure_7_3, rounds=1, iterations=1)
    emit("fig_7_3", format_figure_7_3(histogram))
    total = sum(histogram.values())
    # The fastest bucket (single-comment-page videos) is the plurality.
    assert histogram["0-2s"] == max(histogram.values())
    # A majority of pages crawl quickly (paper: most below 5 s; with our
    # calibrated model-maintenance costs the knee sits slightly higher).
    fast = histogram["0-2s"] + histogram["2-5s"] + histogram["5-10s"]
    assert fast / total > 0.5
    # Only many-state pages take longer than 20-30 seconds.
    slow = histogram["20-30s"] + histogram[">30s"]
    assert slow / total < 0.3
