"""Figure 7.8 — effect of parallelization on mean crawl time per video.

Paper: four process lines on a dual-core machine reduce mean crawl time
by 27.5% (traditional) and 25.6% (AJAX) — far from 4x, because CPU work
contends for two cores and each process pays startup overhead.
"""

from repro.experiments.exp_parallel import figure_7_8, format_figure_7_8, process_line_sweep
from repro.experiments.harness import emit, format_table


def test_figure_7_8(benchmark):
    gains = benchmark.pedantic(figure_7_8, rounds=1, iterations=1)
    emit("fig_7_8", format_figure_7_8(gains))
    for gain in gains:
        # Parallel is faster, but the gain is modest (paper: ~26-28%),
        # nowhere near the 4x the line count would suggest.
        assert 0.10 < gain.reduction < 0.70
    by_mode = {gain.mode: gain for gain in gains}
    assert by_mode["AJAX"].parallel_ms_per_page < by_mode["AJAX"].serial_ms_per_page


def test_process_line_sweep(benchmark):
    """Extension: makespan vs number of process lines (1, 2, 4, 8)."""
    sweep = benchmark.pedantic(process_line_sweep, rounds=1, iterations=1)
    rows = [(lines, makespan / 1000.0) for lines, makespan in sweep]
    emit(
        "fig_7_8_sweep",
        format_table(
            ["Process lines", "Makespan (s)"],
            rows,
            title="Extension: AJAX crawl makespan vs process lines (dual-core)",
        ),
    )
    makespans = [makespan for _, makespan in sweep]
    # More lines help, with diminishing returns on two cores.
    assert makespans[1] < makespans[0]
    first_gain = makespans[0] - makespans[1]
    last_gain = makespans[-2] - makespans[-1]
    assert last_gain < first_gain
