"""Ablation — sensitivity of crawl-time results to network latency shape.

The thesis measured one live network.  This ablation re-runs the
Table 7.2 overhead measurement under three latency shapes (constant,
uniform jitter, heavy-tailed lognormal) and shows that the headline
overhead *ratios* are robust to the shape, while the per-page time
spread (Figure 7.3's histogram) is not.
"""

import statistics

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, TraditionalCrawler
from repro.experiments.harness import emit, format_table
from repro.net import ConstantLatency, LognormalLatency, UniformJitter
from repro.sites import SiteConfig, SyntheticYouTube

SHAPES = (
    ("constant", lambda: ConstantLatency(1.0)),
    ("uniform ±20%", lambda: UniformJitter(spread=0.2, seed=5)),
    ("lognormal σ=0.6", lambda: LognormalLatency(sigma=0.6, seed=5)),
)


def run_sweep(num_videos: int = 80):
    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7))
    urls = [site.video_url(i) for i in range(num_videos)]
    rows = []
    for label, make_distribution in SHAPES:
        ajax = AjaxCrawler(
            site, cost_model=CostModel(latency_distribution=make_distribution())
        ).crawl(urls)
        trad = TraditionalCrawler(
            site, cost_model=CostModel(latency_distribution=make_distribution())
        ).crawl(urls)
        # Judge latency spread on single-state pages, where the state
        # count cannot contribute variance.
        single_state_times = [
            p.crawl_time_ms for p in ajax.report.pages if p.states == 1
        ]
        rows.append(
            (
                label,
                ajax.report.mean_time_per_page_ms / trad.report.mean_time_per_page_ms,
                ajax.report.mean_time_per_state_ms / trad.report.mean_time_per_state_ms,
                statistics.pstdev(single_state_times)
                / statistics.mean(single_state_times),
            )
        )
    return rows


def test_ablation_latency_shape(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table_rows = [
        (label, f"x{page_ratio:.2f}", f"x{state_ratio:.2f}", f"{cv:.2f}")
        for label, page_ratio, state_ratio, cv in rows
    ]
    emit(
        "ablation_latency",
        format_table(
            ["Latency shape", "AJAX/Trad per page", "per state", "1-state time CV"],
            table_rows,
            title="Ablation: overhead ratios under different latency shapes",
        ),
    )
    page_ratios = [page_ratio for _, page_ratio, _, _ in rows]
    state_ratios = [state_ratio for _, _, state_ratio, _ in rows]
    # The headline ratios are latency-shape robust (within ~20%).
    assert max(page_ratios) / min(page_ratios) < 1.2
    assert max(state_ratios) / min(state_ratios) < 1.2
    # ...but the heavy tail visibly widens the per-page time spread.
    constant_cv = rows[0][3]
    lognormal_cv = rows[2][3]
    assert lognormal_cv > constant_cv
