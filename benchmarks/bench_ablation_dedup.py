"""Ablation (DESIGN.md §5.1) — hash-based duplicate elimination.

Disabling duplicate detection makes every DOM observation a new state:
next-then-prev pairs and jump links re-materialize known comment pages
until the per-page state cap is hit.  This regenerates the §3.2 argument
for content hashing.
"""

from repro.experiments import datasets
from repro.experiments.harness import emit, format_table


def run_ablation(num_videos: int = 60):
    with_dedup = datasets.crawl_ajax(num_videos)
    without = datasets.crawl_ajax(num_videos, max_additional_states=30)
    # Re-crawl with dedup disabled (not memoized: bespoke config).
    from repro.crawler import AjaxCrawler, CrawlerConfig

    site = datasets.get_site(max(num_videos, datasets.FULL_VIDEOS))
    crawler = AjaxCrawler(
        site,
        CrawlerConfig(deduplicate_states=False, max_additional_states=30),
        cost_model=datasets.experiment_cost_model(),
    )
    no_dedup = crawler.crawl([site.video_url(i) for i in range(num_videos)])
    return with_dedup.report, no_dedup.report


def test_ablation_dedup(benchmark):
    dedup_report, no_dedup_report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        ("States", dedup_report.total_states, no_dedup_report.total_states),
        ("Events invoked", dedup_report.total_events, no_dedup_report.total_events),
        ("Crawl time (s)", dedup_report.total_time_ms / 1000, no_dedup_report.total_time_ms / 1000),
    ]
    emit(
        "ablation_dedup",
        format_table(
            ["Metric", "With dedup", "Without dedup"],
            rows,
            title="Ablation: duplicate elimination disabled (state explosion)",
        ),
    )
    # Without dedup the model explodes towards the state cap.
    assert no_dedup_report.total_states > 1.5 * dedup_report.total_states
    assert no_dedup_report.total_time_ms > dedup_report.total_time_ms
