"""Figure 7.6 — network time with and without the hot-node policy.

Paper: the caching policy reduces network time to a factor of ~0.37 of
the uncached crawl.
"""

from repro.experiments.exp_caching import caching_study, format_figure_7_6
from repro.experiments.harness import emit


def test_figure_7_6(benchmark):
    points = benchmark.pedantic(caching_study, rounds=1, iterations=1)
    emit("fig_7_6", format_figure_7_6(points))
    largest = points[-1]
    # Cached network time is a small fraction of uncached (paper: 0.37).
    assert largest.network_time_ratio < 0.6
    assert all(p.network_ms_with_cache < p.network_ms_without_cache for p in points)
