"""Figure 7.9 — query throughput (results/second), traditional vs AJAX.

Paper: throughput varies a lot across queries; traditional search
generally offers better throughput, but over a much smaller result set.
"""

from repro.experiments.exp_query import format_figure_7_9, table_7_5
from repro.experiments.harness import emit


def test_figure_7_9(benchmark):
    rows = benchmark.pedantic(table_7_5, rounds=1, iterations=1)
    emit("fig_7_9", format_figure_7_9(rows))
    # AJAX search returns more results for (almost) every query.
    gains = [r for r in rows if r.ajax_results > r.traditional_results]
    assert len(gains) >= 8
    # Throughput varies across queries (paper: "varies much").  The
    # deterministic driver is the result-count spread; the wall-clock
    # throughput spread is asserted loosely to tolerate timing noise.
    counts = [r.ajax_results for r in rows if r.ajax_results]
    assert max(counts) > 3 * min(counts)
    throughputs = [r.ajax_throughput for r in rows if r.ajax_results]
    assert max(throughputs) > 1.2 * min(throughputs)
