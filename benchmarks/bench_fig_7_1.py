"""Figure 7.1 — distribution of videos per number of comment pages.

Paper: most videos have a single page of comments; a heavy tail of
videos has many more, which is what makes AJAX crawling worthwhile.
"""

from repro.experiments.exp_dataset import figure_7_1, format_figure_7_1
from repro.experiments.harness import emit


def test_figure_7_1(benchmark):
    histogram = benchmark.pedantic(figure_7_1, rounds=1, iterations=1)
    emit("fig_7_1", format_figure_7_1(histogram))
    total = sum(histogram.values())
    # Mode at one page, > 30% of all videos.
    assert max(histogram, key=histogram.get) == 1
    assert histogram[1] / total > 0.3
    # Heavy tail: some videos have ten or more pages.
    assert sum(count for pages, count in histogram.items() if pages >= 10) > 0
