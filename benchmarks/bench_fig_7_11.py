"""Figure 7.11 — 1 − RelRecall of traditional vs AJAX search.

Paper: the recall gain grows with the number of indexed states but with
a decreasing gradient — each extra state helps less.  A 0.7 threshold
suggests crawling ~4 states.
"""

from repro.experiments.exp_threshold import (
    format_figure_7_11,
    recall_threshold,
    threshold_study,
)
from repro.experiments.harness import emit


def test_figure_7_11(benchmark):
    points = benchmark.pedantic(threshold_study, rounds=1, iterations=1)
    emit("fig_7_11", format_figure_7_11(points))
    gains = [p.recall_gain for p in points]
    # k=1 is the traditional index itself: zero gain.
    assert gains[0] == 0.0
    # Gain increases with indexed states...
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 0.2
    # ...with a decreasing gradient (diminishing returns).
    first_half_gain = gains[5] - gains[0]
    second_half_gain = gains[-1] - gains[5]
    assert second_half_gain < first_half_gain
    # The 0.7 threshold rule lands on a small number of states (paper: 4).
    assert 2 <= recall_threshold(points, target=0.7) <= 8
