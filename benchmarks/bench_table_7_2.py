"""Table 7.2 — crawling times and overhead of AJAX crawling.

Paper: total/per-page overhead x9.43, per-state overhead x2.27.
Shape to reproduce: AJAX crawling costs several times more per page, but
only ~2-3x per *state* (the honest unit of crawled content).
"""

import pytest

from repro.experiments.exp_crawl import format_table_7_2, table_7_2
from repro.experiments.harness import emit


def test_table_7_2(benchmark):
    overhead = benchmark.pedantic(table_7_2, rounds=1, iterations=1)
    emit("table_7_2", format_table_7_2(overhead))
    # Per-page and total ratios are identical by construction.
    assert overhead.total.ratio > 3.0  # paper: 9.43
    assert overhead.total.ratio == pytest.approx(overhead.per_page.ratio)
    # Per-state overhead is far smaller (paper: 2.27).
    assert 1.0 < overhead.per_state.ratio < 4.0
    assert overhead.per_state.ratio < overhead.per_page.ratio
