"""Figure 7.4 — crawling time per video vs number of crawled states.

Paper: crawl time grows linearly with the number of states; the lower
curve (network time deducted) shows model maintenance as the main
processing cost.
"""

from repro.experiments.exp_crawl import figure_7_4, format_figure_7_4, linearity_correlation
from repro.experiments.harness import emit


def test_figure_7_4(benchmark):
    points = benchmark.pedantic(figure_7_4, rounds=1, iterations=1)
    emit("fig_7_4", format_figure_7_4(points))
    # Strong linearity of crawl time in the state count.
    assert linearity_correlation(points) > 0.97
    # Processing time (minus network) also grows and stays below total.
    assert all(p.mean_processing_time_ms < p.mean_crawl_time_ms for p in points)
    assert points[-1].mean_crawl_time_ms > points[0].mean_crawl_time_ms
