"""Ablation (DESIGN.md §5.4) — merge-time global idf in sharded search.

Confirms the §6.5.2 design: sharded query shipping with merge-time idf
recombination reproduces single-index scores *exactly*, for any shard
count; and shows what breaks when shards use their local idf instead.
"""

import math

import pytest

from repro.experiments import datasets
from repro.experiments.exp_query import workload_queries
from repro.experiments.harness import emit, format_table
from repro.parallel import ShardedSearchEngine
from repro.search import SearchEngine


def run_ablation(num_videos: int = 120, shard_counts=(1, 2, 4, 8)):
    crawled = datasets.crawl_ajax(num_videos)
    single = SearchEngine.build(crawled.models)
    queries = [q.text for q in workload_queries()[:20]]
    rows = []
    for shards in shard_counts:
        partitions = [crawled.models[i::shards] for i in range(shards)]
        partitions = [p for p in partitions if p]
        sharded = ShardedSearchEngine.build(partitions)
        max_score_error = 0.0
        order_mismatches = 0
        for query in queries:
            mine = sharded.search(query)
            reference = single.search(query)
            # Quantize scores before comparing order: near-equal scores
            # may legitimately tie-break differently across float
            # summation orders.
            key = lambda r: (-round(r.score, 6), r.uri, r.state_id)  # noqa: E731
            mine_order = [(r.uri, r.state_id) for r in sorted(mine, key=key)]
            ref_order = [(r.uri, r.state_id) for r in sorted(reference, key=key)]
            if mine_order != ref_order:
                order_mismatches += 1
            for a, b in zip(mine, reference):
                max_score_error = max(max_score_error, abs(a.score - b.score))
        # Local-idf variant: score each shard independently and merge
        # naively (what §6.5.2 warns against).
        local_idf_error = _local_idf_error(partitions, single, queries)
        rows.append((shards, max_score_error, order_mismatches, local_idf_error))
    return rows


def _local_idf_error(partitions, single, queries):
    engines = [SearchEngine.build(p) for p in partitions]
    worst = 0.0
    for query in queries:
        reference = {
            (r.uri, r.state_id): r.score for r in single.search(query)
        }
        for engine in engines:
            for result in engine.search(query):
                expected = reference.get((result.uri, result.state_id))
                if expected is not None:
                    worst = max(worst, abs(result.score - expected))
    return worst


def test_ablation_sharding(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table_rows = [
        (shards, f"{err:.2e}", mismatches, f"{local_err:.2e}")
        for shards, err, mismatches, local_err in rows
    ]
    emit(
        "ablation_sharding",
        format_table(
            ["Shards", "Max score error (global idf)", "Order mismatches", "Max error (local idf)"],
            table_rows,
            title="Ablation: merge-time global idf vs local idf",
        ),
    )
    for shards, err, mismatches, local_err in rows:
        assert err < 1e-9, f"{shards} shards: global-idf merge must be exact"
        assert mismatches == 0
    # With more than one shard, local idf diverges from the true ranking.
    multi_shard = [r for r in rows if r[0] > 1]
    assert any(local_err > 1e-6 for _, _, _, local_err in multi_shard)
