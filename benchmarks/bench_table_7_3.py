"""Table 7.3 — parallel crawling times for traditional and AJAX crawling.

Paper: with four process lines, AJAX/traditional overhead is x8.80 per
page and x2.11 per state — slightly lower than the serial ratios.
"""

from repro.experiments.exp_parallel import format_table_7_3, table_7_3
from repro.experiments.harness import emit


def test_table_7_3(benchmark):
    overhead = benchmark.pedantic(table_7_3, rounds=1, iterations=1)
    emit("table_7_3", format_table_7_3(overhead))
    assert overhead.per_page.ratio > 3.0  # paper: 8.80
    assert 1.0 < overhead.per_state.ratio < 4.0  # paper: 2.11
    assert overhead.per_state.ratio < overhead.per_page.ratio
