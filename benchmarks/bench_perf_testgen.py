"""Generator-harness throughput baseline over the pinned smoke corpus.

Runs the full conformance harness (generate -> crawl five variants ->
compare against ground truth) over the same 50 seeds `make check` pins,
plus the 2000-case fuzz corpus, and records throughput as
``benchmarks/results/BENCH_testgen.json``.  Later perf PRs diff against
this file to catch harness slowdowns (a slower gate gets skipped; a
skipped gate catches nothing).

The asserted floors are deliberately loose (about 10x headroom on the
recording machine): they catch a complexity regression — a harness that
suddenly re-crawls quadratically, a fuzzer stuck in the shrinker — not
machine noise.
"""

import json
import time
from pathlib import Path

from repro.testgen import fuzz_corpus, run_corpus

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_testgen.json"

SMOKE_SEEDS = 50
FUZZ_CASES = 2000

#: Conformance throughput floor: ground-truth states verified per
#: second across all five checks (recording machine does ~95/s).
MIN_STATES_PER_SEC = 10.0

#: Fuzz throughput floor (recording machine does ~1200 cases/s).
MIN_FUZZ_CASES_PER_SEC = 100.0


def corpus_study():
    start = time.perf_counter()
    reports = run_corpus(range(SMOKE_SEEDS))
    conformance_s = time.perf_counter() - start
    failures = [failure for report in reports for failure in report.failures]
    states = sum(report.spec.total_states for report in reports)
    transitions = sum(report.spec.total_transitions for report in reports)

    start = time.perf_counter()
    fuzz = fuzz_corpus(range(FUZZ_CASES))
    fuzz_s = time.perf_counter() - start

    report = {
        "conformance": {
            "seeds": SMOKE_SEEDS,
            "ground_truth_states": states,
            "ground_truth_transitions": transitions,
            "failures": failures,
            "wall_s": conformance_s,
            "states_per_sec": states / conformance_s,
            "seeds_per_sec": SMOKE_SEEDS / conformance_s,
        },
        "fuzz": {
            "cases": fuzz.cases_run,
            "crashes": [crash.describe() for crash in fuzz.crashes],
            "rejections": dict(sorted(fuzz.rejections.items())),
            "wall_s": fuzz_s,
            "cases_per_sec": fuzz.cases_run / fuzz_s,
        },
        "threshold": {
            "min_states_per_sec": MIN_STATES_PER_SEC,
            "min_fuzz_cases_per_sec": MIN_FUZZ_CASES_PER_SEC,
        },
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_testgen_benchmark(benchmark):
    report = benchmark.pedantic(corpus_study, rounds=1, iterations=1)
    conformance = report["conformance"]
    fuzz = report["fuzz"]
    print(
        f"[conformance] {conformance['seeds']} seeds, "
        f"{conformance['ground_truth_states']} states in "
        f"{conformance['wall_s']:.2f}s ({conformance['states_per_sec']:.0f} states/s)"
    )
    print(
        f"[fuzz] {fuzz['cases']} cases in {fuzz['wall_s']:.2f}s "
        f"({fuzz['cases_per_sec']:.0f} cases/s)"
    )
    # The corpus itself must be green before its timing means anything.
    assert conformance["failures"] == []
    assert fuzz["crashes"] == []
    assert conformance["states_per_sec"] >= MIN_STATES_PER_SEC
    assert fuzz["cases_per_sec"] >= MIN_FUZZ_CASES_PER_SEC
