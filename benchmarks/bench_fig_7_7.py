"""Figure 7.7 — state throughput per second with and without the
hot-node policy.

Paper: overall crawl throughput improves by a factor of ~1.6 when the
hot-node cache is active.
"""

from repro.experiments.exp_caching import caching_study, format_figure_7_7
from repro.experiments.harness import emit


def test_figure_7_7(benchmark):
    points = benchmark.pedantic(caching_study, rounds=1, iterations=1)
    emit("fig_7_7", format_figure_7_7(points))
    largest = points[-1]
    # Paper: ~1.6x throughput gain.
    assert largest.throughput_gain > 1.15
    assert all(p.throughput_with_cache > p.throughput_without_cache for p in points)
