"""Segmented-index benchmark: size, build rate, skipping, latency.

Mints a deterministic 100k-state testgen corpus (no crawling — see
``repro.testgen.corpus``), indexes it with both backends, and enforces
the PR's acceptance floors:

* the on-disk segment format is **>= 5x smaller** than the JSON
  serialization of the in-memory inverted file;
* on skewed conjunctions (one ubiquitous term, one rare marker) the
  block-max skip table decodes **fewer postings** than the full
  galloping merge touches, and skips whole blocks without decoding;
* the 100k-state build and the cold/warm query suite complete within
  asserted budgets, and the block cache demonstrably serves repeats.

Results are persisted as ``benchmarks/results/BENCH_index.json``.
``REPRO_BENCH_INDEX_STATES`` scales the corpus (default 100000) — the
corpus is a pure function of the scale knob, so any two machines
benchmark the same site.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.search import InvertedFile, SearchEngine, SegmentedIndex
from repro.search.segments import MergeStats
from repro.testgen import corpus_models, corpus_spec

RESULT_PATH = Path(__file__).resolve().parent / "results" / "BENCH_index.json"

NUM_STATES = int(os.environ.get("REPRO_BENCH_INDEX_STATES", "100000"))

#: Acceptance floors (generous: CI boxes vary, regressions are 10x+).
MIN_SIZE_RATIO = 5.0          # JSON bytes / segment bytes
MAX_DECODE_FRACTION = 0.5     # postings decoded / postings a full merge reads
BUILD_BUDGET_S = 180.0        # 100k-state segmented build
COLD_QUERY_BUDGET_MS = 500.0  # first query on a freshly opened index
WARM_QUERY_BUDGET_MS = 250.0  # same query again, block cache hot


def _mint_corpus():
    start = time.perf_counter()
    spec = corpus_spec(NUM_STATES, seed=0)
    models = corpus_models(spec)
    mint_s = time.perf_counter() - start
    return spec, models, mint_s


def _skewed_queries(spec):
    """One ubiquitous term ("area" is in every state) joined with rare
    markers (df == 1) sampled across the corpus."""
    markers = [
        spec.pages[index].markers[0]
        for index in range(0, len(spec.pages), max(1, len(spec.pages) // 8))
    ]
    return [f"area {marker}" for marker in markers]


def index_study():
    spec, models, mint_s = _mint_corpus()
    scratch = Path(tempfile.mkdtemp(prefix="bench-index-"))
    try:
        # -- build both backends -----------------------------------------------
        start = time.perf_counter()
        memory = InvertedFile().build(models)
        memory_build_s = time.perf_counter() - start
        json_path = scratch / "index.json"
        memory.save(json_path)
        json_bytes = json_path.stat().st_size

        start = time.perf_counter()
        disk = SegmentedIndex(scratch / "segments").build(models)
        disk_build_s = time.perf_counter() - start
        disk_stats = disk.stats()
        segment_bytes = disk_stats["num_bytes"]
        size_ratio = json_bytes / segment_bytes

        # -- skewed conjunctions: block skipping vs full galloping -------------
        skewed = _skewed_queries(spec)
        skip_stats = MergeStats()
        matches = 0
        for query in skewed:
            before = disk.merge_stats.to_dict()
            groups = disk.conjunction(query.split())
            matches += len(groups)
            after = disk.merge_stats.to_dict()
            for key in before:
                setattr(
                    skip_stats, key, getattr(skip_stats, key) + after[key] - before[key]
                )
        decode_fraction = skip_stats.postings_decoded / max(1, skip_stats.postings_total)

        # -- parity spot-check at scale ----------------------------------------
        memory_engine = SearchEngine(memory)
        disk_engine = SearchEngine(disk)
        for query in skewed[:3]:
            assert memory_engine.search(query) == disk_engine.search(query), query

        # -- cold vs warm latency on a fresh reader ----------------------------
        disk.close()
        cold = SegmentedIndex.open(scratch / "segments")
        cold_engine = SearchEngine(cold)
        probe = skewed[len(skewed) // 2]
        start = time.perf_counter()
        cold_results = cold_engine.search(probe)
        cold_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        warm_results = cold_engine.search(probe)
        warm_ms = (time.perf_counter() - start) * 1000.0
        assert cold_results == warm_results
        cache = cold.stats()["cache"]
        cold.close()

        report = {
            "num_states": NUM_STATES,
            "num_pages": len(spec.pages),
            "num_postings": disk_stats["num_postings"],
            "vocabulary": disk_stats["vocabulary"],
            "mint_s": mint_s,
            "build": {
                "memory_build_s": memory_build_s,
                "segmented_build_s": disk_build_s,
                "states_per_s": NUM_STATES / max(disk_build_s, 1e-9),
                "num_segments": disk_stats["num_segments"],
            },
            "size": {
                "json_bytes": json_bytes,
                "segment_bytes": segment_bytes,
                "ratio": size_ratio,
                "bytes_per_posting": segment_bytes / disk_stats["num_postings"],
            },
            "skewed_conjunctions": {
                "queries": skewed,
                "matches": matches,
                **skip_stats.to_dict(),
                "decode_fraction": decode_fraction,
            },
            "latency": {
                "probe": probe,
                "cold_ms": cold_ms,
                "warm_ms": warm_ms,
                "cache_hits": cache["hits"],
                "cache_misses": cache["misses"],
            },
            "thresholds": {
                "min_size_ratio": MIN_SIZE_RATIO,
                "max_decode_fraction": MAX_DECODE_FRACTION,
                "build_budget_s": BUILD_BUDGET_S,
                "cold_query_budget_ms": COLD_QUERY_BUDGET_MS,
                "warm_query_budget_ms": WARM_QUERY_BUDGET_MS,
            },
        }
        RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        return report
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def test_index_benchmark(benchmark):
    report = benchmark.pedantic(index_study, rounds=1, iterations=1)
    size = report["size"]
    print(
        f"[index] {report['num_states']} states: json {size['json_bytes']} B, "
        f"segments {size['segment_bytes']} B ({size['ratio']:.1f}x smaller, "
        f"{size['bytes_per_posting']:.1f} B/posting)"
    )
    skew = report["skewed_conjunctions"]
    print(
        f"[index] skewed conjunctions: decoded {skew['postings_decoded']} of "
        f"{skew['postings_total']} postings "
        f"({skew['decode_fraction']:.3%}), skipped {skew['blocks_skipped']} blocks"
    )
    latency = report["latency"]
    print(
        f"[index] cold {latency['cold_ms']:.1f} ms, warm {latency['warm_ms']:.1f} ms "
        f"(cache {latency['cache_hits']} hits / {latency['cache_misses']} misses)"
    )
    # Floor 1: the segment format beats JSON by >= 5x on disk.
    assert size["ratio"] >= MIN_SIZE_RATIO, size
    # Floor 2: block skipping decodes (far) fewer postings than the full
    # galloping merge materializes, and skips whole blocks undecoded.
    assert skew["postings_decoded"] < skew["postings_total"], skew
    assert skew["decode_fraction"] <= MAX_DECODE_FRACTION, skew
    assert skew["blocks_skipped"] > 0, skew
    # Every skewed query found exactly its marker's state.
    assert skew["matches"] == len(skew["queries"]), skew
    # Floor 3: build + query budgets at the 100k scale.
    assert report["build"]["segmented_build_s"] <= BUILD_BUDGET_S, report["build"]
    assert latency["cold_ms"] <= COLD_QUERY_BUDGET_MS, latency
    assert latency["warm_ms"] <= WARM_QUERY_BUDGET_MS, latency
    # The warm query was actually served from the block cache.
    assert latency["cache_hits"] > 0, latency
