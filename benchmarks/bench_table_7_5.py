"""Table 7.5 — query processing times, traditional vs AJAX index.

Paper: query times on the AJAX index are clearly larger than on the
traditional one (more states, more postings), with strong variation
across queries.
"""

from repro.experiments.exp_query import format_table_7_5, table_7_5
from repro.experiments.harness import emit


def test_table_7_5(benchmark):
    rows = benchmark.pedantic(table_7_5, rounds=1, iterations=1)
    emit("table_7_5", format_table_7_5(rows))
    assert len(rows) == 11
    total_trad = sum(row.traditional_ms for row in rows)
    total_ajax = sum(row.ajax_ms for row in rows)
    # AJAX query processing costs more in aggregate.
    assert total_ajax > total_trad
    # ...because it returns many more results.
    assert sum(r.ajax_results for r in rows) > sum(r.traditional_results for r in rows)
