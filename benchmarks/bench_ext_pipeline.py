"""Extension bench — end-to-end pipeline phase breakdown (Figure 6.1).

Times every phase of the parallel search-engine pipeline on virtual
time: precrawling, parallel crawling and indexing, then verifies the
engine answers the workload.
"""

from repro.clock import CostModel
from repro.experiments.harness import emit, format_table
from repro.parallel import SearchPipeline
from repro.sites import SiteConfig, SyntheticYouTube, paper_queries


def run_pipeline(num_videos: int = 120):
    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7))
    pipeline = SearchPipeline(
        site,
        num_proc_lines=4,
        partition_size=20,
        cost_model=CostModel(network_jitter=0.0),
    )
    outcome = pipeline.run(site.video_url(0), max_pages=num_videos)
    answered = sum(
        1 for q in paper_queries() if outcome.engine.result_count(q.text) > 0
    )
    return outcome, answered


def test_pipeline_phases(benchmark):
    outcome, answered = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    timings = outcome.timings
    rows = [
        ("Precrawling", timings.precrawl_ms / 1000,
         f"{timings.precrawl_ms / timings.total_ms:.1%}"),
        ("Parallel crawling (makespan)", timings.crawl_makespan_ms / 1000,
         f"{timings.crawl_makespan_ms / timings.total_ms:.1%}"),
        ("Indexing (largest shard)", timings.indexing_ms / 1000,
         f"{timings.indexing_ms / timings.total_ms:.1%}"),
        ("Total", timings.total_ms / 1000, "100%"),
    ]
    emit(
        "ext_pipeline",
        format_table(
            ["Phase", "Virtual seconds", "Share"],
            rows,
            title="Extension: end-to-end pipeline phase breakdown (4 process lines)",
        ),
    )
    # Crawling dominates the pipeline, as chapter 6 argues.
    assert timings.crawl_makespan_ms > timings.precrawl_ms
    assert timings.crawl_makespan_ms > timings.indexing_ms
    # The produced engine is functional on the paper workload.
    assert answered >= 9
    assert outcome.num_shards == 6  # 120 urls / 20 per partition
