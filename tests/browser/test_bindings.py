"""Unit tests for the document/element/window host bindings."""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.errors import JsTypeError
from repro.net import Response, RoutedServer


def make_browser(body, script=""):
    server = RoutedServer()

    @server.route(r"/page")
    def page(request, match):
        return Response(
            body=f"<html><body>{body}<script>{script}</script></body></html>"
        )

    return Browser(server, cost_model=CostModel(network_jitter=0.0))


def load(body, script=""):
    return make_browser(body, script).load("http://b.test/page")


class TestDocumentHost:
    def test_get_element_by_id(self):
        page = load('<div id="x">hi</div>')
        assert page.execute_js("document.getElementById('x').textContent;") == "hi"

    def test_missing_element_is_null(self):
        page = load("<div></div>")
        assert page.execute_js("document.getElementById('nope');") is None

    def test_title(self):
        server = RoutedServer()

        @server.route(r"/page")
        def handler(request, match):
            return Response(
                body="<html><head><title>T</title></head><body></body></html>"
            )

        browser = Browser(server, cost_model=CostModel(network_jitter=0.0))
        page = browser.load("http://b.test/page")
        assert page.execute_js("document.title;") == "T"

    def test_body_accessor(self):
        page = load("<p>x</p>")
        assert page.execute_js("document.body.tagName;") == "BODY"

    def test_create_element_and_append(self):
        page = load('<div id="root"></div>')
        page.execute_js(
            """
            var el = document.createElement('span');
            el.textContent = 'added';
            document.getElementById('root').appendChild(el);
            """
        )
        assert "added" in page.text

    def test_get_elements_by_tag_name(self):
        page = load("<p>a</p><p>b</p>")
        assert page.execute_js("document.getElementsByTagName('p').length;") == 2.0

    def test_document_url(self):
        page = load("<div></div>")
        assert page.execute_js("document.URL;") == "http://b.test/page"

    def test_document_not_writable(self):
        page = load("<div></div>")
        from repro.errors import JavascriptError

        with pytest.raises(JavascriptError):
            page.interpreter.run("document.title = 'nope';")


class TestElementHost:
    def test_inner_html_get(self):
        page = load('<div id="x"><b>bold</b></div>')
        assert page.execute_js("document.getElementById('x').innerHTML;") == "<b>bold</b>"

    def test_inner_html_set_marks_dirty(self):
        page = load('<div id="x">old</div>')
        page._dirty = False
        page.execute_js("document.getElementById('x').innerHTML = '<i>new</i>';")
        assert page.dom_changed
        assert "new" in page.text

    def test_get_set_attribute(self):
        page = load('<a id="l" href="/x">link</a>')
        assert page.execute_js("document.getElementById('l').getAttribute('href');") == "/x"
        page.execute_js("document.getElementById('l').setAttribute('href', '/y');")
        assert page.document.get_element_by_id("l").get_attribute("href") == "/y"

    def test_missing_attribute_is_null(self):
        page = load('<div id="x"></div>')
        assert page.execute_js("document.getElementById('x').getAttribute('nope');") is None

    def test_id_and_tag_name(self):
        page = load('<div id="x"></div>')
        assert page.execute_js("document.getElementById('x').id;") == "x"
        assert page.execute_js("document.getElementById('x').tagName;") == "DIV"

    def test_parent_node(self):
        page = load('<div id="outer"><span id="inner"></span></div>')
        assert (
            page.execute_js("document.getElementById('inner').parentNode.id;")
            == "outer"
        )

    def test_value_round_trip(self):
        page = load('<input id="q" type="text">')
        page.execute_js("document.getElementById('q').value = 'typed';")
        assert page.execute_js("document.getElementById('q').value;") == "typed"
        # The value lives in the attribute: snapshots capture it.
        assert page.document.get_element_by_id("q").get_attribute("value") == "typed"

    def test_style_writes_ignored_for_state(self):
        page = load('<div id="x">text</div>')
        page._dirty = False
        page.execute_js("document.getElementById('x').style.color = 'red';")
        assert page.dom_changed is False

    def test_text_content_set(self):
        page = load('<div id="x"><b>old</b></div>')
        page.execute_js("document.getElementById('x').textContent = 'plain';")
        assert page.document.get_element_by_id("x").text_content == "plain"
        assert page.document.get_element_by_id("x").get_elements_by_tag("b") == []

    def test_unknown_property_set_raises(self):
        page = load('<div id="x"></div>')
        from repro.errors import JavascriptError

        with pytest.raises(JavascriptError):
            page.interpreter.run("document.getElementById('x').bogus = 1;")

    def test_element_wrapper_cached(self):
        page = load('<div id="x"></div>')
        element = page.document.get_element_by_id("x")
        assert page.wrap_element(element) is page.wrap_element(element)


class TestWindowHost:
    def test_window_document(self):
        page = load('<div id="x">w</div>')
        assert page.execute_js("window.document.getElementById('x').textContent;") == "w"

    def test_location(self):
        page = load("<div></div>")
        assert page.execute_js("window.location;") == "http://b.test/page"

    def test_alert_is_noop(self):
        page = load("<div></div>")
        page.execute_js("window.alert('hello');")  # must not raise

    def test_set_timeout_runs_immediately(self):
        page = load('<div id="x">old</div>')
        page.execute_js(
            """
            window.setTimeout(function () {
                document.getElementById('x').innerHTML = 'timed';
            }, 1000);
            """
        )
        assert "timed" in page.text

    def test_window_not_writable(self):
        page = load("<div></div>")
        from repro.errors import JavascriptError

        with pytest.raises(JavascriptError):
            page.interpreter.run("window.location = 'elsewhere';")
