"""Integration tests: browser + page + JS + XHR against a mini AJAX site."""

import pytest

from repro.browser import Browser, JS_ACCOUNT, PARSE_ACCOUNT
from repro.clock import CostModel, SimClock
from repro.errors import BrowserError
from repro.net import NETWORK_ACCOUNT, Request, Response, RoutedServer

PAGE_URL = "http://yt.test/watch?v=vid1"

PAGE_HTML = """<html>
<head><title>Video vid1</title></head>
<body onload="init()">
  <h1 id="title">Enjoy the Ride</h1>
  <div id="recent_comments">loading...</div>
  <div id="nav">
    <a id="next" onclick="nextPage()">next</a>
    <a id="prev" onclick="prevPage()">prev</a>
    <a id="jump2" onclick="jumpToPage(2)">2</a>
  </div>
  <script>
  var currentPage = 0;
  function getUrl(url, async) {
      var req = new XMLHttpRequest();
      req.open("GET", url, async);
      req.send(null);
      return req.responseText;
  }
  function getUrlXMLResponseAndFillDiv(url, div_id) {
      var response = getUrl(url, true);
      document.getElementById(div_id).innerHTML = response;
  }
  function showPage(p) {
      if (p < 1) { p = 1; }
      if (p > 3) { p = 3; }
      currentPage = p;
      getUrlXMLResponseAndFillDiv('/comments?v=vid1&p=' + p, 'recent_comments');
  }
  function init() { showPage(1); }
  function nextPage() { showPage(currentPage + 1); }
  function prevPage() { showPage(currentPage - 1); }
  function jumpToPage(p) { showPage(p); }
  </script>
</body>
</html>"""


def make_server():
    server = RoutedServer()

    @server.route(r"/watch")
    def watch(request, match):
        return Response(body=PAGE_HTML)

    @server.route(r"/comments")
    def comments(request, match):
        page = request.query.get("p", "1")
        return Response(body=f"<p>comment page {page}</p>")

    return server


@pytest.fixture
def browser():
    return Browser(make_server(), cost_model=CostModel(network_jitter=0.0))


class TestPageLoad:
    def test_onload_populates_comments(self, browser):
        page = browser.load(PAGE_URL)
        assert "comment page 1" in page.text

    def test_scripts_define_functions(self, browser):
        page = browser.load(PAGE_URL, run_onload=False)
        assert page.interpreter.global_env.is_declared("nextPage")

    def test_onload_suppressible(self, browser):
        page = browser.load(PAGE_URL, run_onload=False)
        assert "loading..." in page.text

    def test_javascript_disabled_browser(self):
        browser = Browser(make_server(), javascript_enabled=False)
        page = browser.load(PAGE_URL)
        assert "loading..." in page.text  # onload never ran
        assert browser.stats.ajax_calls == 0

    def test_load_404_raises(self, browser):
        with pytest.raises(BrowserError):
            browser.load("http://yt.test/missing")

    def test_clock_accounts_for_load(self, browser):
        page = browser.load(PAGE_URL)
        clock = page.clock
        assert clock.spent_on(NETWORK_ACCOUNT) > 0
        assert clock.spent_on(PARSE_ACCOUNT) > 0
        assert clock.spent_on(JS_ACCOUNT) > 0


class TestEventDispatch:
    def test_next_changes_dom(self, browser):
        page = browser.load(PAGE_URL)
        (next_event,) = [b for b in page.events() if b.handler == "nextPage()"]
        changed = page.dispatch(next_event)
        assert changed is True
        assert "comment page 2" in page.text

    def test_noop_event_reports_unchanged(self, browser):
        page = browser.load(PAGE_URL)
        (prev_event,) = [b for b in page.events() if b.handler == "prevPage()"]
        # On page 1, prev clamps to page 1: same content re-filled.
        changed = page.dispatch(prev_event)
        # innerHTML was assigned (mutation happened), so DOM counts as touched;
        # identity must be judged by content hash instead.
        assert "comment page 1" in page.text

    def test_hash_identity_across_duplicate_states(self, browser):
        page = browser.load(PAGE_URL)
        initial_hash = page.content_hash()
        events = {b.handler: b for b in page.events()}
        page.dispatch(events["nextPage()"])
        hash_page2 = page.content_hash()
        page.dispatch(events["prevPage()"])
        assert page.content_hash() == initial_hash
        page.dispatch(events["jumpToPage(2)"])
        assert page.content_hash() == hash_page2

    def test_dispatch_unknown_element_raises(self, browser):
        page = browser.load(PAGE_URL)
        (next_event,) = [b for b in page.events() if b.handler == "nextPage()"]
        page.document.get_element_by_id("next").detach()
        stale = next_event
        with pytest.raises(BrowserError):
            page.dispatch(stale)

    def test_failing_handler_does_not_crash(self, browser):
        page = browser.load(PAGE_URL)
        page.document.get_element_by_id("next").set_attribute(
            "onclick", "totallyMissing()"
        )
        (bad_event,) = [b for b in page.events() if b.handler == "totallyMissing()"]
        assert page.dispatch(bad_event) is False


class TestSnapshotRestore:
    def test_restore_brings_back_dom(self, browser):
        page = browser.load(PAGE_URL)
        snapshot = page.snapshot()
        events = {b.handler: b for b in page.events()}
        page.dispatch(events["nextPage()"])
        assert "comment page 2" in page.text
        page.restore(snapshot)
        assert "comment page 1" in page.text
        assert page.content_hash() == snapshot.hash

    def test_restore_brings_back_js_variables(self, browser):
        page = browser.load(PAGE_URL)
        snapshot = page.snapshot()
        events = {b.handler: b for b in page.events()}
        page.dispatch(events["nextPage()"])
        assert page.interpreter.global_env.get("currentPage") == 2.0
        page.restore(snapshot)
        assert page.interpreter.global_env.get("currentPage") == 1.0
        # After restore the page behaves as if the event never happened.
        page.dispatch(events["nextPage()"])
        assert "comment page 2" in page.text

    def test_restore_charges_parse_time(self, browser):
        page = browser.load(PAGE_URL)
        snapshot = page.snapshot()
        before = page.clock.spent_on(PARSE_ACCOUNT)
        page.restore(snapshot)
        assert page.clock.spent_on(PARSE_ACCOUNT) > before


class TestXhrIntegration:
    def test_each_new_page_costs_a_network_call(self, browser):
        page = browser.load(PAGE_URL)
        events = {b.handler: b for b in page.events()}
        calls_before = browser.stats.ajax_calls
        page.dispatch(events["nextPage()"])  # p=2
        page.dispatch(events["nextPage()"])  # p=3
        assert browser.stats.ajax_calls == calls_before + 2

    def test_without_policy_duplicates_also_hit_network(self, browser):
        page = browser.load(PAGE_URL)
        events = {b.handler: b for b in page.events()}
        page.dispatch(events["nextPage()"])  # p=2 (fetch)
        page.dispatch(events["prevPage()"])  # p=1 (fetch again!)
        page.dispatch(events["jumpToPage(2)"])  # p=2 (fetch again!)
        assert browser.stats.cached_hits == 0
        assert browser.stats.ajax_calls >= 4
