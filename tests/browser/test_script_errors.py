"""Pages with broken scripts must still load and be crawlable."""

from repro.browser import Browser
from repro.clock import CostModel
from repro.crawler import AjaxCrawler
from repro.net import Response, RoutedServer


def make_browser(body):
    server = RoutedServer()

    @server.route(r"/page")
    def page(request, match):
        return Response(body=body)

    return Browser(server, cost_model=CostModel(network_jitter=0.0)), server


BROKEN_THEN_GOOD = """<html><body onload="init()">
<div id="out">initial</div>
<script>this is { not javascript</script>
<script>
function init() { document.getElementById('out').innerHTML = 'loaded'; }
</script>
</body></html>"""


class TestScriptErrorTolerance:
    def test_later_scripts_still_run(self):
        browser, _ = make_browser(BROKEN_THEN_GOOD)
        page = browser.load("http://t.test/page")
        assert "loaded" in page.text
        assert len(page.script_errors) == 1

    def test_runtime_error_in_script_recorded(self):
        browser, _ = make_browser(
            "<html><body><script>callSomethingMissing();</script>"
            "<script>var ok = 1;</script></body></html>"
        )
        page = browser.load("http://t.test/page")
        assert len(page.script_errors) == 1
        assert page.interpreter.global_env.get("ok") == 1.0

    def test_failing_onload_recorded(self):
        browser, _ = make_browser(
            '<html><body onload="nonexistent()"><p>content</p></body></html>'
        )
        page = browser.load("http://t.test/page")
        assert len(page.script_errors) == 1
        assert "content" in page.text

    def test_crawler_survives_broken_page(self):
        browser, server = make_browser(BROKEN_THEN_GOOD)
        crawler = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0))
        result = crawler.crawl(["http://t.test/page"])
        assert result.failed_urls == []
        assert result.report.num_pages == 1

    def test_clean_page_has_no_errors(self):
        browser, _ = make_browser(
            "<html><body><script>var x = 1;</script></body></html>"
        )
        page = browser.load("http://t.test/page")
        assert page.script_errors == []
