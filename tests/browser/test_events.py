"""Unit tests for event enumeration and element locators."""

from repro.browser import enumerate_events, locate, onload_handler
from repro.browser.events import ElementLocator
from repro.dom import parse_document, serialize


PAGE = """
<html>
<body onload="init()">
  <div id="top" onclick="a()">A</div>
  <div>
    <span onclick="b()">B</span>
    <span onmouseover="c()">C</span>
    <span ondblclick="d()">D</span>
    <span onmousedown="e()">E</span>
    <span onkeypress="ignored()">F</span>
  </div>
</body>
</html>
"""


class TestEnumerateEvents:
    def test_finds_default_event_types(self):
        doc = parse_document(PAGE)
        handlers = {binding.handler for binding in enumerate_events(doc)}
        assert handlers == {"a()", "b()", "c()", "d()", "e()"}

    def test_onload_is_not_enumerated(self):
        doc = parse_document(PAGE)
        assert all(b.event_type != "onload" for b in enumerate_events(doc))

    def test_unsupported_event_types_skipped(self):
        doc = parse_document(PAGE)
        assert "ignored()" not in {b.handler for b in enumerate_events(doc)}

    def test_custom_event_type_selection(self):
        doc = parse_document(PAGE)
        only_clicks = enumerate_events(doc, event_types=("onclick",))
        assert {b.handler for b in only_clicks} == {"a()", "b()"}

    def test_document_order(self):
        doc = parse_document(PAGE)
        handlers = [b.handler for b in enumerate_events(doc, event_types=("onclick",))]
        assert handlers == ["a()", "b()"]

    def test_empty_handler_ignored(self):
        doc = parse_document('<html><body><a onclick="">x</a></body></html>')
        assert enumerate_events(doc) == []

    def test_onload_handler_extraction(self):
        assert onload_handler(parse_document(PAGE)) == "init()"
        assert onload_handler(parse_document("<html><body></body></html>")) is None


class TestElementLocator:
    def test_locator_prefers_id(self):
        doc = parse_document(PAGE)
        element = doc.get_element_by_id("top")
        locator = locate(element, doc)
        assert locator.element_id == "top"
        assert locator.resolve(doc) is element

    def test_path_locator_without_id(self):
        doc = parse_document(PAGE)
        span = doc.root.get_elements_by_tag("span")[1]
        locator = locate(span, doc)
        assert locator.element_id is None
        assert locator.resolve(doc) is span

    def test_locator_survives_reparse(self):
        doc = parse_document(PAGE)
        span = doc.root.get_elements_by_tag("span")[2]
        locator = locate(span, doc)
        reparsed = parse_document(serialize(doc))
        resolved = locator.resolve(reparsed)
        assert resolved is not None
        assert resolved.get_attribute("ondblclick") == "d()"

    def test_stale_path_returns_none(self):
        doc = parse_document("<html><body><div><p>x</p></div></body></html>")
        p = doc.root.get_elements_by_tag("p")[0]
        locator = locate(p, doc)
        smaller = parse_document("<html><body></body></html>")
        assert locator.resolve(smaller) is None

    def test_missing_id_falls_back_to_path(self):
        doc = parse_document(PAGE)
        element = doc.get_element_by_id("top")
        locator = locate(element, doc)
        # Remove the id: resolution falls back to the structural path.
        element.remove_attribute("id")
        assert locator.resolve(doc) is element

    def test_describe(self):
        assert ElementLocator("x", ()).describe() == "#x"
        assert ElementLocator(None, (0, 2)).describe() == "/0/2"

    def test_event_key_identity(self):
        doc = parse_document(PAGE)
        one = enumerate_events(doc)
        two = enumerate_events(parse_document(PAGE))
        assert [b.key for b in one] == [b.key for b in two]
