"""Oracle tests for the galloping conjunction merge (§5.3.2).

The oracle is the historical linear merge, re-implemented verbatim in
this file: the galloping/rarest-first implementation must produce the
exact same groups on every input, including duplicate (uri, state)
keys and empty lists.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.search.postings import Posting, merge_conjunction, sort_postings


# -- the historical linear merge, as the oracle --------------------------------


def naive_merge(lists):
    if not lists:
        return []
    if any(not postings for postings in lists):
        return []
    cursors = [0] * len(lists)
    results = []
    while all(cursors[i] < len(lists[i]) for i in range(len(lists))):
        keys = [lists[i][cursors[i]].sort_key for i in range(len(lists))]
        largest = max(keys)
        if all(key == largest for key in keys):
            results.append([lists[i][cursors[i]] for i in range(len(lists))])
            for i in range(len(lists)):
                cursors[i] += 1
            continue
        for i in range(len(lists)):
            if keys[i] < largest:
                cursors[i] += 1
    return results


# -- randomized inputs ---------------------------------------------------------

postings = st.builds(
    Posting,
    uri=st.sampled_from(("http://a/1", "http://a/2", "http://b/1")),
    state_id=st.integers(min_value=0, max_value=25).map(lambda n: f"s{n}"),
    positions=st.lists(st.integers(min_value=0, max_value=99), max_size=3).map(tuple),
)
#: Sorted posting lists, duplicates included (sampling with replacement).
posting_list = st.lists(postings, max_size=40).map(sort_postings)


@pytest.mark.slow
@given(st.lists(posting_list, max_size=5))
@settings(max_examples=150, deadline=None)
def test_galloping_equals_naive_merge(lists):
    assert merge_conjunction(lists) == naive_merge(lists)


@given(st.lists(posting_list, min_size=2, max_size=3))
@settings(max_examples=50, deadline=None)
def test_result_invariants(lists):
    groups = merge_conjunction(lists)
    for group in groups:
        assert len(group) == len(lists)
        # Every group aligns on one (uri, state) key.
        assert len({p.sort_key for p in group}) == 1
    # Groups come out in ascending key order.
    keys = [group[0].sort_key for group in groups]
    assert keys == sorted(keys)


# -- deterministic edge cases --------------------------------------------------


def p(uri, state, *positions):
    return Posting(uri=uri, state_id=state, positions=tuple(positions))


class TestEdgeCases:
    def test_no_lists(self):
        assert merge_conjunction([]) == []

    def test_any_empty_list_kills_the_conjunction(self):
        assert merge_conjunction([[p("u", "s1", 0)], []]) == []
        assert merge_conjunction([[], [p("u", "s1", 0)]]) == []

    def test_single_list_passes_through_as_groups(self):
        lst = [p("u", "s1", 0), p("u", "s2", 1)]
        assert merge_conjunction([lst]) == [[lst[0]], [lst[1]]]

    def test_duplicate_keys_pair_by_multiplicity(self):
        """The i-th duplicate in one list pairs with the i-th in the
        other; the surplus occurrence drops — same as the linear merge."""
        a = [p("u", "s1", 0), p("u", "s1", 1), p("u", "s1", 2)]
        b = [p("u", "s1", 7), p("u", "s1", 8)]
        result = merge_conjunction([a, b])
        assert result == [[a[0], b[0]], [a[1], b[1]]]
        assert result == naive_merge([a, b])

    def test_disjoint_lists_yield_nothing(self):
        a = [p("u", "s1", 0), p("u", "s3", 0)]
        b = [p("u", "s2", 0), p("u", "s4", 0)]
        assert merge_conjunction([a, b]) == []

    def test_skewed_lists_gallop_to_the_rare_key(self):
        long = [p("u", f"s{i}", 0) for i in range(500)]
        rare = [p("u", "s250", 1), p("u", "s499", 2)]
        result = merge_conjunction([long, rare])
        assert result == [[long[250], rare[0]], [long[499], rare[1]]]

    def test_double_digit_state_ids_order_numerically(self):
        lst = sort_postings([p("u", "s10", 0), p("u", "s9", 0), p("u", "s2", 0)])
        assert [q.state_id for q in lst] == ["s2", "s9", "s10"]


class TestSortKeyCaching:
    def test_sort_key_is_computed_once(self):
        posting = p("u", "s7", 1)
        first = posting.sort_key
        assert first == ("u", 7)
        assert posting.sort_key is first  # cached, not re-parsed

    def test_posting_stays_frozen_and_hashable(self):
        posting = p("u", "s7", 1)
        _ = posting.sort_key
        with pytest.raises(dataclasses.FrozenInstanceError):
            posting.uri = "other"
        assert hash(posting) == hash(p("u", "s7", 1))
        assert posting == p("u", "s7", 1)
