"""Crash-recovery tests for the segmented index directory.

The durability contract under test: the atomic ``MANIFEST.json`` swap is
the *only* commit point.  Segment files are written before it and
unlinked after it, so a process death anywhere in a mutation leaves the
directory in exactly one of two observable generations — never a
manifest naming a missing file, never a query answer mixing old and new
states.  Files stranded outside the manifest by a crash (fresh segments
never adopted, dropped victims never unlinked, half-written tmp files)
are garbage-collected on the next open.

Crashes are simulated by snapshotting directory bytes around the commit
point and restoring them — equivalent to the kernel losing the writes
that followed — plus one fault-injection test that makes the manifest
save itself fail mid-``remove_urls``.
"""

import pytest

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.obs import MetricsRegistry
from repro.search import InvertedFile, SearchEngine, SegmentedIndex
from repro.search.segmented import MANIFEST_NAME


def make_model(url, state_texts):
    model = ApplicationModel(url)
    for offset, text in enumerate(state_texts):
        model.add_state(f"{url}-h{offset}", text, depth=offset)
    return model


def corpus(pages=4, states=3):
    return [
        make_model(
            f"http://site.test/p{page}",
            [
                f"shared page{page} state{state} marker{page}x{state}"
                for state in range(states)
            ],
        )
        for page in range(pages)
    ]


def assert_parity(memory, disk):
    assert disk.states() == memory.states()
    assert disk.terms() == memory.terms()
    for term in sorted(memory.terms()):
        assert disk.postings(term) == memory.postings(term), term
        assert disk.idf(term) == memory.idf(term), term


def seg_files(path):
    return sorted(p.name for p in path.glob("seg-*.seg"))


class TestCrashBetweenSegmentWriteAndManifestSwap:
    def test_reopen_serves_old_generation_and_collects_orphan(self, tmp_path):
        idx = tmp_path / "idx"
        old_models = corpus(pages=3)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(
            old_models
        )
        disk.close()
        old_manifest = (idx / MANIFEST_NAME).read_bytes()
        old_segments = seg_files(idx)

        disk = SegmentedIndex.open(idx, compact_fanin=100)
        disk.add_model(make_model("http://site.test/new", ["fresh unseen terms"]))
        disk.finalize()
        disk.close()
        assert len(seg_files(idx)) == len(old_segments) + 1
        # Crash: the new segment hit disk, the manifest swap did not.
        (idx / MANIFEST_NAME).write_bytes(old_manifest)

        reopened = SegmentedIndex.open(idx, compact_fanin=100)
        assert reopened.orphans_collected == 1
        assert seg_files(idx) == old_segments
        assert_parity(InvertedFile().build(old_models), reopened)
        assert reopened.postings("unseen") == []
        reopened.close()

    def test_new_generation_visible_when_swap_landed(self, tmp_path):
        idx = tmp_path / "idx"
        models = corpus(pages=3)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(models)
        disk.close()
        reopened = SegmentedIndex.open(idx)
        assert reopened.orphans_collected == 0
        assert_parity(InvertedFile().build(models), reopened)
        reopened.close()


class TestCrashMidCompaction:
    def test_victims_surviving_past_manifest_swap_are_collected(self, tmp_path):
        idx = tmp_path / "idx"
        models = corpus(pages=4)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(models)
        victims = {
            reader.path: reader.path.read_bytes() for reader in disk._readers
        }
        assert disk.compact_all() == 1
        disk.close()
        # Crash after the manifest adopted the merged segment but before
        # the victims were unlinked: resurrect their bytes.
        for path, data in victims.items():
            path.write_bytes(data)

        metrics = MetricsRegistry()
        reopened = SegmentedIndex.open(idx, metrics=metrics)
        assert reopened.orphans_collected == len(victims)
        assert metrics.snapshot()["counters"]["index.orphans_collected"] == len(
            victims
        )
        assert reopened.num_segments == 1
        assert_parity(InvertedFile().build(models), reopened)
        reopened.close()


class TestCrashDuringRemoveUrls:
    def test_manifest_failure_leaves_old_generation_intact(
        self, tmp_path, monkeypatch
    ):
        idx = tmp_path / "idx"
        models = corpus(pages=3)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(models)
        disk.close()
        old_manifest = (idx / MANIFEST_NAME).read_bytes()
        old_segments = seg_files(idx)

        disk = SegmentedIndex.open(idx, compact_fanin=100)

        def torn_save():
            raise RuntimeError("simulated crash during manifest swap")

        monkeypatch.setattr(disk, "_save_manifest", torn_save)
        with pytest.raises(RuntimeError):
            disk.remove_url(models[0].url)
        # The commit never happened, so every file of the old generation
        # must still be on disk (victims are unlinked only *after* the
        # manifest stops naming them).
        assert (idx / MANIFEST_NAME).read_bytes() == old_manifest
        assert set(old_segments) <= set(seg_files(idx))

        reopened = SegmentedIndex.open(idx, compact_fanin=100)
        assert_parity(InvertedFile().build(models), reopened)
        assert SearchEngine(reopened).result_count("marker0x0") == 1
        reopened.close()

    def test_committed_removal_survives_reopen(self, tmp_path):
        idx = tmp_path / "idx"
        models = corpus(pages=3)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(models)
        assert disk.remove_url(models[0].url) == 3
        disk.close()
        reopened = SegmentedIndex.open(idx)
        assert reopened.orphans_collected == 0
        assert_parity(InvertedFile().build(models[1:]), reopened)
        reopened.close()


class TestStrayFiles:
    def test_stale_tmp_and_unknown_segment_collected(self, tmp_path):
        idx = tmp_path / "idx"
        models = corpus(pages=2)
        disk = SegmentedIndex(idx, flush_threshold=1, compact_fanin=100).build(models)
        disk.close()
        (idx / "MANIFEST.json.tmp").write_text("{torn", encoding="utf-8")
        (idx / "seg-99999999.seg").write_bytes(b"\x00garbage")

        reopened = SegmentedIndex.open(idx)
        assert reopened.orphans_collected == 2
        assert not (idx / "MANIFEST.json.tmp").exists()
        assert not (idx / "seg-99999999.seg").exists()
        assert_parity(InvertedFile().build(models), reopened)
        reopened.close()

    def test_missing_manifest_still_refuses_open(self, tmp_path):
        with pytest.raises(SearchError):
            SegmentedIndex.open(tmp_path / "nothing-here")
