"""Tests for the varint/delta posting-block codec.

Two families: property-based round trips (every valid block decodes
back to itself, including the empty/single-posting edges), and
corruption handling (truncated or damaged bytes must surface as
``SearchError``, never as a raw ``IndexError``/``struct.error`` from
inside a query).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchError
from repro.search.codec import (
    MAX_VARINT_BYTES,
    decode_block,
    encode_block,
    read_bytes,
    read_uvarint,
    write_bytes,
    write_uvarint,
)


# -- varint primitives -------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_uvarint_round_trip(value):
    out = bytearray()
    write_uvarint(out, value)
    decoded, offset = read_uvarint(out, 0)
    assert decoded == value
    assert offset == len(out)
    assert len(out) <= MAX_VARINT_BYTES


def test_uvarint_rejects_negative():
    with pytest.raises(SearchError):
        write_uvarint(bytearray(), -1)


def test_uvarint_truncated():
    out = bytearray()
    write_uvarint(out, 1 << 40)
    with pytest.raises(SearchError, match="truncated"):
        read_uvarint(out[:-1], 0)


def test_uvarint_over_long_is_corruption():
    with pytest.raises(SearchError, match="over-long"):
        read_uvarint(b"\xff" * (MAX_VARINT_BYTES + 1), 0)


@given(st.binary(max_size=64))
def test_bytes_round_trip(payload):
    out = bytearray()
    write_bytes(out, payload)
    decoded, offset = read_bytes(out, 0)
    assert decoded == payload
    assert offset == len(out)


def test_bytes_truncated():
    out = bytearray()
    write_bytes(out, b"hello")
    with pytest.raises(SearchError, match="truncated"):
        read_bytes(out[:-2], 0)


# -- posting-block round trip ------------------------------------------------------

positions_lists = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=8, unique=True
).map(lambda values: tuple(sorted(values)))


@st.composite
def posting_blocks(draw):
    """(ordinals, positions) pairs every valid block is made of."""
    ordinals = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=100_000),
                min_size=0,
                max_size=40,
                unique=True,
            )
        )
    )
    positions = [draw(positions_lists) for _ in ordinals]
    return ordinals, positions


@given(posting_blocks())
@settings(max_examples=100)
def test_block_round_trip(block):
    ordinals, positions = block
    assert decode_block(encode_block(ordinals, positions)) == (ordinals, positions)


def test_empty_block_round_trip():
    assert decode_block(encode_block([], [])) == ([], [])


def test_single_posting_round_trip():
    assert decode_block(encode_block([7], [(0, 3, 9)])) == ([7], [(0, 3, 9)])


def test_duplicate_ordinals_rejected():
    with pytest.raises(SearchError, match="strictly increasing"):
        encode_block([3, 3], [(0,), (1,)])


def test_duplicate_positions_rejected():
    with pytest.raises(SearchError, match="strictly increasing"):
        encode_block([1], [(4, 4)])


def test_empty_positions_rejected():
    with pytest.raises(SearchError, match="at least one position"):
        encode_block([1], [()])


def test_arity_mismatch_rejected():
    with pytest.raises(SearchError, match="arity"):
        encode_block([1, 2], [(0,)])


# -- corruption handling -----------------------------------------------------------


def test_truncated_block():
    payload = encode_block([1, 200, 4000], [(0, 5), (2,), (7, 8, 9)])
    for cut in range(len(payload)):
        with pytest.raises(SearchError):
            decode_block(payload[:cut])


def test_trailing_bytes_rejected():
    payload = encode_block([1], [(0,)])
    with pytest.raises(SearchError, match="trailing"):
        decode_block(payload + b"\x00")


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=200)
def test_arbitrary_bytes_never_raise_raw_errors(data):
    """Fuzz: any byte string either decodes or raises SearchError."""
    try:
        ordinals, positions = decode_block(data)
    except SearchError:
        return
    # A successful decode yields a well-formed block that round-trips
    # through the canonical encoding.
    assert len(ordinals) == len(positions)
    assert ordinals == sorted(set(ordinals))
    assert all(occurrence for occurrence in positions)
    assert decode_block(encode_block(ordinals, positions)) == (ordinals, positions)
