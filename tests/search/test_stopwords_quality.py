"""Stopword handling and ranking quality on the motivating example."""

import pytest

from repro.model import ApplicationModel, EventAnnotation
from repro.search import (
    ENGLISH_STOPWORDS,
    InvertedFile,
    RankingWeights,
    SearchEngine,
    query_terms,
    tokenize_with_positions,
)


def pagination_model(url, page_texts):
    model = ApplicationModel(url)
    states = []
    for offset, text in enumerate(page_texts):
        state, _ = model.add_state(f"{url}-h{offset}", text, depth=offset)
        states.append(state)
    for offset in range(len(states) - 1):
        model.add_transition(
            states[offset], states[offset + 1],
            EventAnnotation("#next", "onclick", "nextPage()"),
        )
        model.add_transition(
            states[offset + 1], states[offset],
            EventAnnotation("#prev", "onclick", "prevPage()"),
        )
    return model


class TestStopwordTokenization:
    def test_positions_preserved(self):
        pairs = tokenize_with_positions("the quick fox", stopwords=ENGLISH_STOPWORDS)
        assert pairs == [("quick", 1), ("fox", 2)]

    def test_no_stopwords_by_default(self):
        assert tokenize_with_positions("the fox") == [("the", 0), ("fox", 1)]

    def test_query_terms_filtered(self):
        assert query_terms("the mysterious video", stopwords=ENGLISH_STOPWORDS) == [
            "mysterious",
            "video",
        ]

    def test_all_stopword_query_falls_back(self):
        assert query_terms("to be or", stopwords=ENGLISH_STOPWORDS) == ["to", "be", "or"]


class TestStopwordIndex:
    def test_stopwords_not_indexed(self):
        model = pagination_model("u", ["the enjoy the ride"])
        index = InvertedFile(stopwords=ENGLISH_STOPWORDS).build([model])
        assert index.postings("the") == []
        assert index.postings("enjoy")

    def test_engine_consistent_with_stopword_index(self):
        model = pagination_model("u", ["the enjoy the ride", "a mysterious video"])
        index = InvertedFile(stopwords=ENGLISH_STOPWORDS).build([model])
        engine = SearchEngine(index)
        # "enjoy the ride" evaluates as enjoy AND ride.
        results = engine.search("enjoy the ride")
        assert [(r.uri, r.state_id) for r in results] == [("u", "s0")]

    def test_stopwords_survive_save_load(self, tmp_path):
        model = pagination_model("u", ["the enjoy the ride"])
        index = InvertedFile(stopwords=ENGLISH_STOPWORDS).build([model])
        path = tmp_path / "idx.json"
        index.save(path)
        loaded = InvertedFile.load(path)
        assert loaded.stopwords == ENGLISH_STOPWORDS
        assert loaded.postings("the") == []

    def test_proximity_honest_across_dropped_stopwords(self):
        """'enjoy the ride': enjoy..ride are 2 apart, not adjacent."""
        from repro.search import term_proximity

        pairs = tokenize_with_positions("enjoy the ride", stopwords=ENGLISH_STOPWORDS)
        positions = [((p,)) for _, p in pairs]
        groups = [tuple([p]) for _, p in pairs]
        assert term_proximity(groups) == pytest.approx(2 / 3)


class TestRankingQuality:
    """The §1.1 scenario must rank the intended state first."""

    @pytest.fixture
    def engine(self):
        video1 = pagination_model(
            "url1",
            [
                "Morcheeba Enjoy the Ride official video mysterious video",
                "the new morcheeba singer is amazing",
                "unrelated chatter about other things",
            ],
        )
        video2 = pagination_model(
            "url2", ["morcheeba concert", "someone mentions a singer once morcheeba"]
        )
        return SearchEngine.build(
            [video1, video2], pageranks={"url1": 0.5, "url2": 0.5}
        )

    def test_q3_ranks_the_singer_comment_page_first(self, engine):
        results = engine.search("morcheeba singer")
        assert (results[0].uri, results[0].state_id) == ("url1", "s1")

    def test_q2_ranks_first_page_first(self, engine):
        results = engine.search("morcheeba mysterious video")
        assert (results[0].uri, results[0].state_id) == ("url1", "s0")

    def test_verbatim_phrase_beats_scattered(self, engine):
        results = engine.search("enjoy the ride")
        assert results[0].components["proximity"] == pytest.approx(1.0)

    def test_zero_weights_all_tie(self):
        model = pagination_model("u", ["apple one", "apple two"])
        engine = SearchEngine.build(
            [model], weights=RankingWeights(0, 0, 0, 0)
        )
        results = engine.search("apple")
        assert all(r.score == 0.0 for r in results)
