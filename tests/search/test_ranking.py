"""Unit and property tests for the ranking coefficients."""

import pytest
from hypothesis import given, strategies as st

from repro.model import ApplicationModel, EventAnnotation
from repro.search import ajaxrank, pagerank, term_proximity


class TestPageRank:
    def test_empty_graph(self):
        assert pagerank({}) == {}

    def test_single_node(self):
        ranks = pagerank({"a": []})
        assert ranks == {"a": pytest.approx(1.0)}

    def test_sums_to_one(self):
        graph = {"a": ["b", "c"], "b": ["c"], "c": ["a"], "d": ["a"]}
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_sink_heavy_node_ranks_higher(self):
        graph = {"a": ["hub"], "b": ["hub"], "c": ["hub"], "hub": ["a"]}
        ranks = pagerank(graph)
        assert ranks["hub"] > ranks["b"]

    def test_symmetric_cycle_uniform(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        ranks = pagerank(graph)
        assert ranks["a"] == pytest.approx(ranks["b"])
        assert ranks["b"] == pytest.approx(ranks["c"])

    def test_nodes_only_as_targets_included(self):
        ranks = pagerank({"a": ["b"]})
        assert set(ranks) == {"a", "b"}

    def test_dangling_mass_redistributed(self):
        ranks = pagerank({"a": ["b"], "b": []})
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)


class TestAjaxRank:
    def make_pagination_model(self, pages=3):
        model = ApplicationModel("u")
        states = []
        for page in range(pages):
            state, _ = model.add_state(f"h{page}", f"page {page}")
            states.append(state)
        click = lambda h: EventAnnotation("#nav", "onclick", h)  # noqa: E731
        for page in range(pages - 1):
            model.add_transition(states[page], states[page + 1], click("nextPage()"))
            model.add_transition(states[page + 1], states[page], click("prevPage()"))
        # Jump links towards page 1 from everywhere.
        for page in range(1, pages):
            model.add_transition(states[page], states[0], click("jumpToPage(1)"))
        return model

    def test_rank_per_state(self):
        model = self.make_pagination_model()
        ranks = ajaxrank(model)
        assert set(ranks) == {"s0", "s1", "s2"}
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_heavily_linked_state_beats_the_tail(self):
        """Page 1 receives prev/jump edges from everywhere; the deepest
        page receives only one edge, so it must rank below page 1."""
        ranks = ajaxrank(self.make_pagination_model(pages=4))
        assert ranks["s0"] > ranks["s3"]
        assert ranks["s0"] > ranks["s2"]

    def test_single_state_model(self):
        model = ApplicationModel("u")
        model.add_state("h", "text")
        assert ajaxrank(model) == {"s0": pytest.approx(1.0)}


class TestTermProximity:
    def test_single_term_is_one(self):
        assert term_proximity([(5,)]) == 1.0

    def test_adjacent_in_order_is_one(self):
        # "our song" appearing verbatim.
        assert term_proximity([(3,), (4,)]) == pytest.approx(1.0)

    def test_gap_reduces_score(self):
        adjacent = term_proximity([(3,), (4,)])
        spread = term_proximity([(3,), (9,)])
        assert spread < adjacent

    def test_reordered_scores_less_than_ordered(self):
        ordered = term_proximity([(3,), (4,)])
        reordered = term_proximity([(4,), (3,)])
        assert 0 < reordered < ordered

    def test_missing_term_is_zero(self):
        assert term_proximity([(1,), ()]) == 0.0
        assert term_proximity([]) == 0.0

    def test_three_terms_verbatim(self):
        assert term_proximity([(7,), (8,), (9,)]) == pytest.approx(1.0)

    def test_best_occurrence_chosen(self):
        # Second occurrence of term1 is adjacent to term2.
        assert term_proximity([(0, 10), (11,)]) == pytest.approx(1.0)


@given(
    st.lists(
        st.lists(st.integers(0, 50), min_size=1, max_size=4).map(
            lambda xs: tuple(sorted(set(xs)))
        ),
        min_size=1,
        max_size=4,
    )
)
def test_proximity_bounded(groups):
    value = term_proximity(groups)
    assert 0.0 <= value <= 1.0


@given(st.integers(0, 40), st.integers(1, 10))
def test_proximity_monotone_in_gap(start, gap):
    closer = term_proximity([(start,), (start + gap,)])
    farther = term_proximity([(start,), (start + gap + 3,)])
    assert farther <= closer
