"""Tests for query evaluation and the search-engine facade."""

import pytest

from repro.errors import SearchError
from repro.model import ApplicationModel, EventAnnotation
from repro.search import InvertedFile, RankingWeights, SearchEngine, evaluate


def pagination_model(url, page_texts):
    """A linear next/prev pagination model with given state texts."""
    model = ApplicationModel(url)
    states = []
    for offset, text in enumerate(page_texts):
        state, _ = model.add_state(f"{url}-h{offset}", text, depth=offset)
        states.append(state)
    click = lambda h, s: EventAnnotation(s, "onclick", h)  # noqa: E731
    for offset in range(len(states) - 1):
        model.add_transition(states[offset], states[offset + 1], click("nextPage()", "#next"))
        model.add_transition(states[offset + 1], states[offset], click("prevPage()", "#prev"))
    return model


@pytest.fixture
def models():
    """The motivating example of §1.1."""
    video1 = pagination_model(
        "url1",
        [
            "Morcheeba Enjoy the Ride official video this mysterious video is great",
            "the new morcheeba singer is amazing really",
        ],
    )
    video2 = pagination_model("url2", ["morcheeba live concert morcheeba fans"])
    return [video1, video2]


@pytest.fixture
def engine(models):
    return SearchEngine.build(models, pageranks={"url1": 0.6, "url2": 0.4})


class TestEvaluate:
    def test_simple_keyword(self, models):
        index = InvertedFile().build(models)
        matches = evaluate(index, "morcheeba")
        assert {(m.uri, m.state_id) for m in matches} == {
            ("url1", "s0"),
            ("url1", "s1"),
            ("url2", "s0"),
        }

    def test_conjunction_q3(self, models):
        """Q3 'morcheeba singer' must hit only the second comment page."""
        index = InvertedFile().build(models)
        matches = evaluate(index, "morcheeba singer")
        assert [(m.uri, m.state_id) for m in matches] == [("url1", "s1")]

    def test_conjunction_q2(self, models):
        """Q2 'morcheeba mysterious video' hits the first state of url1."""
        index = InvertedFile().build(models)
        matches = evaluate(index, "morcheeba mysterious video")
        assert [(m.uri, m.state_id) for m in matches] == [("url1", "s0")]

    def test_no_results(self, models):
        index = InvertedFile().build(models)
        assert evaluate(index, "nonexistent") == []

    def test_empty_query_raises(self, models):
        index = InvertedFile().build(models)
        with pytest.raises(SearchError):
            evaluate(index, "   !!! ")

    def test_case_insensitive(self, models):
        index = InvertedFile().build(models)
        assert evaluate(index, "MORCHEEBA Singer")


class TestSearchEngine:
    def test_results_sorted_by_score(self, engine):
        results = engine.search("morcheeba")
        assert len(results) == 3
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, engine):
        assert len(engine.search("morcheeba", limit=2)) == 2

    def test_score_components_present(self, engine):
        (top, *_) = engine.search("morcheeba")
        assert set(top.components) == {"pagerank", "ajaxrank", "tfidf", "proximity"}

    def test_higher_tf_ranks_higher_all_else_equal(self):
        dense = pagination_model("dense", ["apple apple pie"])
        sparse = pagination_model("sparse", ["apple and lots of other words here"])
        without = pagination_model("nothing", ["bananas only in this one"])
        engine = SearchEngine.build(
            [dense, sparse, without],
            weights=RankingWeights(pagerank=0, ajaxrank=0, tfidf=1, proximity=0),
        )
        results = engine.search("apple")
        assert [(r.uri) for r in results] == ["dense", "sparse"]
        assert results[0].score > results[1].score

    def test_pagerank_weight_shifts_ranking(self, models):
        pageranks = {"url1": 0.1, "url2": 10.0}
        engine = SearchEngine.build(
            models,
            pageranks=pageranks,
            weights=RankingWeights(pagerank=1, ajaxrank=0, tfidf=0, proximity=0),
        )
        results = engine.search("morcheeba")
        assert results[0].uri == "url2"

    def test_proximity_rewards_verbatim_phrase(self, models):
        engine = SearchEngine.build(
            models, weights=RankingWeights(pagerank=0, ajaxrank=0, tfidf=0, proximity=1)
        )
        (only,) = engine.search("enjoy the ride")
        assert only.components["proximity"] == pytest.approx(1.0)

    def test_result_count(self, engine):
        assert engine.result_count("morcheeba") == 3
        assert engine.result_count("singer") == 1
        assert engine.result_count("nonexistent") == 0

    def test_traditional_vs_ajax_recall(self, models):
        """The paper's headline: AJAX search finds states traditional
        search cannot."""
        ajax_engine = SearchEngine.build(models)
        traditional = SearchEngine.build(models, max_state_index=1)
        assert traditional.result_count("singer") == 0
        assert ajax_engine.result_count("singer") == 1
        assert traditional.result_count("morcheeba") == 2
        assert ajax_engine.result_count("morcheeba") == 3

    def test_deterministic_tie_break(self, models):
        engine = SearchEngine.build(
            models, weights=RankingWeights(pagerank=0, ajaxrank=0, tfidf=0, proximity=0)
        )
        one = [(r.uri, r.state_id) for r in engine.search("morcheeba")]
        two = [(r.uri, r.state_id) for r in engine.search("morcheeba")]
        assert one == two


class TestDuplicateTermScoring:
    """Regression: duplicate query terms must not double-count tf·idf."""

    def test_repeated_term_scores_like_single(self, engine):
        single = engine.search("morcheeba")
        doubled = engine.search("morcheeba morcheeba")
        assert [(r.uri, r.state_id) for r in doubled] == [
            (r.uri, r.state_id) for r in single
        ]
        for one, two in zip(single, doubled):
            assert two.score == pytest.approx(one.score)
            assert two.components["tfidf"] == pytest.approx(one.components["tfidf"])

    def test_repeated_conjunction_term_scores_like_deduped(self, engine):
        deduped = engine.search("morcheeba singer")
        repeated = engine.search("morcheeba singer morcheeba")
        assert len(repeated) == len(deduped) == 1
        assert repeated[0].score == pytest.approx(deduped[0].score)

    def test_match_postings_parallel_to_deduped_terms(self, models):
        from repro.search import query_terms

        index = InvertedFile().build(models)
        terms = query_terms("morcheeba morcheeba singer")
        assert terms == ["morcheeba", "singer"]
        (match,) = evaluate(index, "morcheeba morcheeba singer")
        assert len(match.postings) == len(terms)

    def test_query_terms_dedupe_preserves_order(self):
        from repro.search import query_terms

        assert query_terms("b a b c a") == ["b", "a", "c"]

    def test_stopword_fallback_also_dedupes(self):
        from repro.search import ENGLISH_STOPWORDS, query_terms

        assert query_terms("the the", stopwords=ENGLISH_STOPWORDS) == ["the"]
