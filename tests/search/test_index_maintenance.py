"""Tests for incremental index maintenance (remove_url / update_model)."""

import pytest

from repro.model import ApplicationModel
from repro.search import InvertedFile


def make_model(url, state_texts):
    model = ApplicationModel(url)
    for offset, text in enumerate(state_texts):
        model.add_state(f"{url}-h{offset}", text, depth=offset)
    return model


@pytest.fixture
def index():
    return InvertedFile().build(
        [
            make_model("u1", ["alpha beta", "beta gamma"]),
            make_model("u2", ["alpha delta"]),
        ]
    )


class TestRemoveUrl:
    def test_removes_all_states_of_url(self, index):
        removed = index.remove_url("u1")
        assert removed == 2
        assert index.num_states == 1
        assert index.states() == [("u2", "s0")]

    def test_postings_purged(self, index):
        index.remove_url("u1")
        assert [p.uri for p in index.postings("alpha")] == ["u2"]
        assert index.postings("gamma") == []

    def test_vocabulary_shrinks(self, index):
        before = index.vocabulary_size
        index.remove_url("u1")
        assert index.vocabulary_size < before

    def test_unknown_url_noop(self, index):
        assert index.remove_url("nope") == 0
        assert index.num_states == 3

    def test_idf_reflects_removal(self, index):
        import math

        index.remove_url("u1")
        # alpha now in 1 of 1 states.
        assert index.idf("alpha") == pytest.approx(math.log(1))


class TestUpdateModel:
    def test_replaces_states(self, index):
        index.update_model(make_model("u1", ["epsilon zeta"]))
        assert index.num_states == 2
        assert index.postings("epsilon")
        assert index.postings("beta") == []

    def test_equivalent_to_fresh_build(self, index):
        updated_model = make_model("u1", ["omega psi", "psi chi"])
        index.update_model(updated_model)
        fresh = InvertedFile().build(
            [updated_model, make_model("u2", ["alpha delta"])]
        )
        for term in ("omega", "psi", "chi", "alpha", "delta"):
            assert index.postings(term) == fresh.postings(term), term
        assert index.num_states == fresh.num_states

    def test_update_after_load(self, index, tmp_path):
        """A deserialized index supports incremental maintenance too."""
        path = tmp_path / "idx.json"
        index.save(path)
        loaded = InvertedFile.load(path)
        loaded.update_model(make_model("u1", ["fresh content"]))
        assert loaded.postings("fresh")
        assert loaded.postings("beta") == []

    def test_search_engine_sees_update(self, index):
        from repro.search import SearchEngine

        engine = SearchEngine(index)
        assert engine.result_count("beta") == 2
        index.update_model(make_model("u1", ["replaced text"]))
        assert engine.result_count("beta") == 0
        assert engine.result_count("replaced") == 1


class TestRemoveUrlsBatch:
    """Regression for per-removal posting-list rebuilds: removing k URIs
    must filter each touched term once and report exact counts."""

    def test_batch_equals_sequential(self):
        models = [
            make_model(f"u{i}", [f"shared only{i} text", f"shared more{i}"])
            for i in range(5)
        ]
        batch = InvertedFile().build(models)
        sequential = InvertedFile().build(models)
        assert batch.remove_urls(["u1", "u3"]) == 4
        assert sequential.remove_url("u1") + sequential.remove_url("u3") == 4
        assert batch.states() == sequential.states()
        for term in sorted(batch.terms() | sequential.terms()):
            assert batch.postings(term) == sequential.postings(term), term

    def test_batch_matches_fresh_build(self):
        models = [make_model(f"u{i}", ["shared", f"only{i}"]) for i in range(4)]
        index = InvertedFile().build(models)
        assert index.remove_urls(["u0", "u2", "nope"]) == 4
        fresh = InvertedFile().build([models[1], models[3]])
        assert index.states() == fresh.states()
        assert index.terms() == fresh.terms()
        for term in fresh.terms():
            assert index.postings(term) == fresh.postings(term), term

    def test_empty_batch_noop(self, index):
        assert index.remove_urls([]) == 0
        assert index.num_states == 3
