"""Tests for the immutable segment file format and its readers.

Covers the write/read round trip over every table, the shared decoded-
block LRU cache, the block-max skipping merge (result parity with the
materialized galloping merge, plus proof that whole blocks are hopped
without decode), and corruption handling on damaged files.
"""

import pytest

from repro.errors import SearchError
from repro.search.postings import Posting, merge_conjunction, sort_postings
from repro.search.segments import (
    BlockCache,
    MergeStats,
    SegmentReader,
    write_segment,
)
from repro.search.segments import merge_conjunction_blocks


def make_postings(entries):
    """entries: (uri, state_id, positions) triples, any order."""
    return sort_postings(
        [Posting(uri=uri, state_id=state_id, positions=tuple(positions))
         for uri, state_id, positions in entries]
    )


@pytest.fixture
def segment(tmp_path):
    """A small two-URI segment with a multi-block term (block_size=2)."""
    states = [
        ("u1", "s0", 3, 0, 0),
        ("u1", "s1", 2, 1, 1),
        ("u2", "s0", 4, 0, 2),
        ("u2", "s1", 1, 1, 3),
        ("u2", "s2", 2, 2, 4),
    ]
    postings = {
        "common": make_postings([
            ("u1", "s0", (0,)),
            ("u1", "s1", (1,)),
            ("u2", "s0", (0, 2)),
            ("u2", "s1", (0,)),
            ("u2", "s2", (1,)),
        ]),
        "rare": make_postings([("u2", "s2", (0,))]),
        "pair": make_postings([("u1", "s0", (2,)), ("u2", "s0", (3,))]),
    }
    path = tmp_path / "seg-0.seg"
    stats = write_segment(path, states, sorted(postings.items()), block_size=2)
    reader = SegmentReader(path)
    yield reader, states, postings, stats
    reader.close()


class TestRoundTrip:
    def test_stats(self, segment):
        _, states, postings, stats = segment
        assert stats.num_states == len(states)
        assert stats.num_terms == len(postings)
        assert stats.num_postings == sum(len(p) for p in postings.values())
        assert stats.num_bytes == stats.path.stat().st_size

    def test_state_table(self, segment):
        reader, states, _, _ = segment
        assert reader.num_states == len(states)
        assert reader.uris == ("u1", "u2")
        assert reader.state_rows() == states
        for ordinal, (uri, state_id, length, depth, seq) in enumerate(states):
            assert reader.ordinal(uri, state_id) == ordinal
            assert reader.state_key(ordinal) == (uri, state_id)
            assert reader.sort_key(ordinal) == (uri, int(state_id[1:]))
            assert reader.state_length(ordinal) == length
            assert reader.state_depth(ordinal) == depth
            assert reader.state_seq(ordinal) == seq
        assert reader.ordinal("u1", "s9") is None
        assert reader.has_uri("u1") and not reader.has_uri("u3")

    def test_term_table_and_materialize(self, segment):
        reader, _, postings, _ = segment
        assert sorted(reader.terms()) == sorted(postings)
        for term, expected in postings.items():
            assert reader.df(term) == len(expected)
            assert reader.materialize(term) == expected
        assert reader.df("absent") == 0
        assert reader.materialize("absent") == []
        assert reader.view("absent") is None

    def test_meta(self, segment):
        reader, _, postings, _ = segment
        assert reader.num_postings == sum(len(p) for p in postings.values())
        assert reader.block_size == 2

    def test_multi_block_skip_table(self, segment):
        reader, _, postings, _ = segment
        view = reader.view("common")
        assert view.df == 5
        assert view.num_blocks == 3  # 5 postings at block_size=2
        # Per-block maxima are the skip entries: strictly increasing and
        # the last one is the final posting's ordinal.
        maxima = [view.block_max(b) for b in range(view.num_blocks)]
        assert maxima == sorted(maxima)
        assert maxima[-1] == reader.ordinal("u2", "s2")
        assert [view.block_count(b) for b in range(view.num_blocks)] == [2, 2, 1]
        assert [view.block_start(b) for b in range(view.num_blocks)] == [0, 2, 4]

    def test_count_at_decodes_one_block(self, segment):
        reader, _, _, _ = segment
        view = reader.view("common")
        ordinal = reader.ordinal("u2", "s0")
        before = reader.cache.misses
        assert view.count_at(ordinal) == 2
        assert reader.cache.misses == before + 1
        assert view.count_at(reader.num_states + 5) == 0

    def test_unknown_posting_state_rejected(self, tmp_path):
        orphan = make_postings([("nowhere", "s0", (0,))])
        with pytest.raises(SearchError, match="unknown state"):
            write_segment(
                tmp_path / "bad.seg", [("u", "s0", 1, 0, 0)], [("t", orphan)]
            )

    def test_zero_block_size_rejected(self, tmp_path):
        with pytest.raises(SearchError, match="block size"):
            write_segment(tmp_path / "bad.seg", [], [], block_size=0)


class TestBlockCache:
    def test_hit_miss_accounting(self):
        cache = BlockCache(capacity=4)
        loads = []
        value = cache.get("a", lambda: loads.append("a") or 1)
        assert value == 1
        assert cache.get("a", lambda: loads.append("a") or 1) == 1
        assert loads == ["a"]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = BlockCache(capacity=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("a", lambda: 1)  # refresh a -> b is now LRU
        cache.get("c", lambda: 3)  # evicts b
        assert cache.evictions == 1
        reloaded = []
        cache.get("b", lambda: reloaded.append("b") or 2)
        assert reloaded == ["b"]
        assert len(cache) == 2

    def test_clear(self):
        cache = BlockCache(capacity=2)
        cache.get("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0

    def test_shared_across_readers(self, segment, tmp_path):
        reader, states, postings, _ = segment
        other = SegmentReader(reader.path, cache=reader.cache)
        try:
            reader.materialize("common")
            before = reader.cache.misses
            other.materialize("common")
            # Same path + same cache: the second reader's blocks hit.
            assert reader.cache.misses == before
        finally:
            other.close()


class TestBlockSkippingMerge:
    def _views(self, reader, terms):
        return [reader.view(term) for term in terms]

    def _as_groups(self, reader, merged):
        return [
            [reader.posting(ordinal, positions) for positions in occurrences]
            for ordinal, occurrences in merged
        ]

    def test_parity_with_materialized_merge(self, segment):
        reader, _, postings, _ = segment
        for terms in (["common"], ["common", "rare"], ["common", "pair"],
                      ["pair", "rare"], ["common", "pair", "rare"]):
            merged = merge_conjunction_blocks(self._views(reader, terms))
            expected = merge_conjunction([postings[t] for t in terms])
            assert self._as_groups(reader, merged) == expected, terms

    def test_blocks_skipped_without_decode(self, tmp_path):
        # 400 states; "every" is everywhere, "needle" only in the last
        # state — the merge must hop the ubiquitous list's blocks.
        states = [("u", f"s{i}", 2, 0, i) for i in range(400)]
        every = make_postings([("u", f"s{i}", (0,)) for i in range(400)])
        needle = make_postings([("u", "s399", (1,))])
        path = tmp_path / "skew.seg"
        write_segment(path, states, [("every", every), ("needle", needle)],
                      block_size=16)
        reader = SegmentReader(path)
        try:
            stats = MergeStats()
            merged = merge_conjunction_blocks(
                [reader.view("every"), reader.view("needle")], stats
            )
            assert [ordinal for ordinal, _ in merged] == [399]
            assert stats.postings_total == 401
            # "every" has 25 blocks; the merge decodes its first (the
            # initial probe) and its last (the hit) and hops the 23 in
            # between without decoding them.
            assert stats.blocks_skipped == 23
            assert stats.blocks_decoded == 3
            assert stats.postings_decoded == 33
        finally:
            reader.close()

    def test_empty_inputs(self, segment):
        reader, _, _, _ = segment
        assert merge_conjunction_blocks([]) == []
        stats = MergeStats()
        other = MergeStats()
        other.blocks_decoded = 3
        stats.merge(other)
        assert stats.to_dict()["blocks_decoded"] == 3


class TestCorruption:
    def _write_valid(self, tmp_path):
        states = [("u", "s0", 2, 0, 0), ("u", "s1", 2, 1, 1)]
        postings = make_postings([("u", "s0", (0,)), ("u", "s1", (1,))])
        path = tmp_path / "seg.seg"
        write_segment(path, states, [("term", postings)])
        return path

    def test_not_a_segment(self, tmp_path):
        path = tmp_path / "nope.seg"
        path.write_bytes(b"definitely not a segment file, long enough padding")
        with pytest.raises(SearchError, match="not a segment"):
            SegmentReader(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.seg"
        path.write_bytes(b"AJXSEG01")
        with pytest.raises(SearchError, match="not a segment"):
            SegmentReader(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seg"
        path.write_bytes(b"")
        with pytest.raises(SearchError, match="cannot map|not a segment"):
            SegmentReader(path)

    def test_truncated_footer(self, tmp_path):
        path = self._write_valid(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(SearchError):
            SegmentReader(path)

    def test_bad_footer_magic(self, tmp_path):
        path = self._write_valid(tmp_path)
        data = bytearray(path.read_bytes())
        data[-8:] = b"XXXXXXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(SearchError, match="footer"):
            SegmentReader(path)

    def test_corrupt_section_offsets(self, tmp_path):
        path = self._write_valid(tmp_path)
        data = bytearray(path.read_bytes())
        # First footer field (uri table offset) -> far past EOF.
        data[-40:-32] = (1 << 60).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(SearchError, match="section offsets"):
            SegmentReader(path)

    def test_corrupt_block_region_surfaces_as_search_error(self, tmp_path):
        path = self._write_valid(tmp_path)
        data = bytearray(path.read_bytes())
        # Stomp the posting region (starts right after the 8-byte magic)
        # with over-long varint bytes; the tables still parse, so the
        # damage must surface at decode time as a SearchError.
        data[8:12] = b"\xff\xff\xff\xff"
        path.write_bytes(bytes(data))
        reader = SegmentReader(path)
        try:
            with pytest.raises(SearchError):
                reader.materialize("term")
        finally:
            reader.close()

    def test_block_count_cross_check(self, tmp_path):
        path = self._write_valid(tmp_path)
        data = bytearray(path.read_bytes())
        # The first byte after the magic is the first block's posting
        # count varint (2 postings) — rewriting it to 1 keeps the block
        # decodable as a shorter list, which the skip-table cross-check
        # must reject.
        assert data[8] == 2
        data[8] = 1
        path.write_bytes(bytes(data))
        reader = SegmentReader(path)
        try:
            with pytest.raises(SearchError):
                reader.materialize("term")
        finally:
            reader.close()
