"""Tests for the LSM segmented index behind the InvertedFile API.

The contract under test is *exact parity*: whatever the in-memory
:class:`InvertedFile` answers — postings, tf, idf, state order, search
results — the :class:`SegmentedIndex` must answer identically, through
any interleaving of flushes, compactions, removals and reopens.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.obs import COMPACTION, MetricsRegistry, Recorder, SEGMENT_FLUSH
from repro.search import InvertedFile, SearchEngine, SegmentedIndex
from repro.search.segmented import MANIFEST_NAME, _tier


def make_model(url, state_texts):
    model = ApplicationModel(url)
    for offset, text in enumerate(state_texts):
        model.add_state(f"{url}-h{offset}", text, depth=offset)
    return model


def corpus_texts(pages=6, states=4):
    """Deterministic multi-model corpus with shared and unique terms."""
    models = []
    for page in range(pages):
        texts = [
            f"shared page{page} state{state} marker{page}x{state} filler words"
            for state in range(states)
        ]
        models.append(make_model(f"http://site.test/p{page}", texts))
    return models


def assert_parity(memory, disk):
    """Every InvertedFile query answer, compared field by field."""
    assert disk.num_states == memory.num_states
    assert disk.states() == memory.states()
    assert disk.terms() == memory.terms()
    assert disk.vocabulary_size == memory.vocabulary_size
    for term in sorted(memory.terms()) + ["absent-term"]:
        assert disk.postings(term) == memory.postings(term), term
        assert disk.document_frequency(term) == memory.document_frequency(term)
        assert disk.idf(term) == memory.idf(term), term  # bit-identical
    for uri, state_id in memory.states():
        assert disk.state_length(uri, state_id) == memory.state_length(uri, state_id)
        assert disk.state_depth(uri, state_id) == memory.state_depth(uri, state_id)
        for term in ("shared", "absent-term"):
            assert disk.tf(term, uri, state_id) == memory.tf(term, uri, state_id)


class TestParity:
    def test_multi_segment_build_matches_memory(self, tmp_path):
        models = corpus_texts()
        memory = InvertedFile().build(models)
        disk = SegmentedIndex(
            tmp_path / "idx", flush_threshold=20, block_size=4
        ).build(models)
        assert disk.num_segments > 1
        assert_parity(memory, disk)
        disk.close()

    def test_search_engine_results_identical(self, tmp_path):
        models = corpus_texts()
        memory_engine = SearchEngine(InvertedFile().build(models))
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=20).build(models)
        disk_engine = SearchEngine(disk)
        for query in ("shared", "marker2x1", "shared page3", "shared absent"):
            assert disk_engine.search(query) == memory_engine.search(query), query
        disk.close()

    def test_max_state_index_respected(self, tmp_path):
        models = corpus_texts(pages=2, states=4)
        memory = InvertedFile(max_state_index=2).build(models)
        disk = SegmentedIndex(tmp_path / "idx", max_state_index=2).build(models)
        assert_parity(memory, disk)
        assert disk.postings("state3") == []
        disk.close()

    def test_conjunction_skipping_accounted(self, tmp_path):
        models = corpus_texts(pages=8, states=5)
        disk = SegmentedIndex(tmp_path / "idx", block_size=4).build(models)
        groups = disk.conjunction(["shared", "marker7x4"])
        assert len(groups) == 1
        assert groups[0][0].uri == "http://site.test/p7"
        stats = disk.merge_stats
        assert stats.blocks_skipped > 0
        assert stats.postings_decoded < stats.postings_total
        assert disk.conjunction([]) == []
        disk.close()


class TestFlushAndCompaction:
    def test_flush_threshold_bounds_memtable(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=1, compact_fanin=100)
        for model in corpus_texts(pages=3, states=2):
            disk.add_model(model)
        # Every model crosses the one-posting threshold -> one segment each.
        assert disk.num_segments == 3
        assert disk._memtable.num_postings == 0
        disk.close()

    def test_tiered_compaction_keeps_segment_count_low(self, tmp_path):
        disk = SegmentedIndex(
            tmp_path / "idx", flush_threshold=1, compact_fanin=2
        ).build(corpus_texts(pages=8, states=2))
        # 8 flushed segments, fanin 2 -> repeatedly merged.
        assert disk.num_segments < 8
        assert_parity(InvertedFile().build(corpus_texts(pages=8, states=2)), disk)
        disk.close()

    def test_compact_all_single_segment(self, tmp_path):
        models = corpus_texts()
        disk = SegmentedIndex(
            tmp_path / "idx", flush_threshold=20, compact_fanin=100
        ).build(models)
        assert disk.num_segments > 1
        assert disk.compact_all() == 1
        assert disk.num_segments == 1
        # Merged segment re-derives exact global df -> idf bit-identical.
        assert_parity(InvertedFile().build(models), disk)
        # Old segment files are gone from disk.
        live = {reader.name for reader in disk._readers}
        on_disk = {p.name for p in (tmp_path / "idx").glob("*.seg")}
        assert on_disk == live
        disk.close()

    def test_compact_all_noop_on_single_segment(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx").build(corpus_texts(pages=1))
        assert disk.compact_all() == 0
        disk.close()

    def test_tier_function(self):
        assert _tier(0) == 0
        assert _tier(3) == 0
        assert _tier(4) == 1
        assert _tier(64) == 3

    def test_flush_and_compaction_observability(self, tmp_path):
        recorder = Recorder()
        metrics = MetricsRegistry()
        disk = SegmentedIndex(
            tmp_path / "idx",
            recorder=recorder,
            metrics=metrics,
            flush_threshold=1,
            compact_fanin=2,
        ).build(corpus_texts(pages=4, states=2))
        kinds = [event.kind for event in recorder.events]
        assert SEGMENT_FLUSH in kinds
        assert COMPACTION in kinds
        flush = next(e for e in recorder.events if e.kind == SEGMENT_FLUSH)
        assert flush.fields["num_states"] == 2
        assert metrics.counter("index.segment_flushes") == 4
        assert metrics.counter("index.compactions") >= 1
        disk.conjunction(["shared"])
        assert metrics.counter("index.blocks_decoded") > 0
        disk.close()


class TestMaintenance:
    def test_remove_url_exact_counts_and_idf(self, tmp_path):
        models = corpus_texts(pages=4, states=3)
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=10).build(models)
        assert disk.remove_url("http://site.test/p1") == 3
        assert disk.remove_url("http://site.test/nope") == 0
        fresh = InvertedFile().build(
            [m for m in models if m.url != "http://site.test/p1"]
        )
        assert_parity(fresh, disk)
        disk.close()

    def test_remove_urls_batch(self, tmp_path):
        models = corpus_texts(pages=4, states=3)
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=10).build(models)
        removed = disk.remove_urls(
            ["http://site.test/p0", "http://site.test/p2"]
        )
        assert removed == 6
        assert_parity(
            InvertedFile().build([models[1], models[3]]), disk
        )
        disk.close()

    def test_remove_last_url_drops_segment(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx").build(corpus_texts(pages=1))
        assert disk.num_segments == 1
        disk.remove_url("http://site.test/p0")
        assert disk.num_segments == 0
        assert disk.num_states == 0
        assert disk.postings("shared") == []
        disk.close()

    def test_remove_from_memtable_before_flush(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx")
        disk.add_model(make_model("u1", ["alpha beta"]))
        assert disk.remove_url("u1") == 1
        assert disk.num_states == 0
        disk.close()

    def test_update_model_moves_states_to_end(self, tmp_path):
        models = corpus_texts(pages=3, states=2)
        memory = InvertedFile().build([m for m in models])
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=4).build(models)
        replacement = make_model("http://site.test/p0", ["replacement text here"])
        memory.update_model(replacement)
        disk.update_model(replacement)
        # Insertion order parity: p0's states re-enter at the end.
        assert disk.states() == memory.states()
        assert disk.states()[-1] == ("http://site.test/p0", "s0")
        assert_parity(memory, disk)
        disk.close()

    def test_duplicate_state_rejected_across_segments(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx")
        model = make_model("u1", ["alpha beta"])
        disk.add_model(model)
        disk.finalize()  # frozen into a segment
        with pytest.raises(SearchError, match="indexed twice"):
            disk.add_model(make_model("u1", ["gamma"]))
        disk.close()

    def test_duplicate_state_rejected_in_memtable(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx")
        disk.add_model(make_model("u1", ["alpha beta"]))
        with pytest.raises(SearchError, match="indexed twice"):
            disk.add_model(make_model("u1", ["gamma"]))
        disk.close()


class TestPersistence:
    def test_reopen_answers_identically(self, tmp_path):
        models = corpus_texts()
        memory = InvertedFile().build(models)
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=20).build(models)
        disk.close()
        reopened = SegmentedIndex.open(tmp_path / "idx")
        assert_parity(memory, reopened)
        reopened.close()

    def test_reopen_preserves_settings_and_sequences(self, tmp_path):
        disk = SegmentedIndex(
            tmp_path / "idx",
            max_state_index=3,
            stopwords=frozenset({"the"}),
            block_size=7,
        ).build(corpus_texts(pages=2))
        next_seq = disk._next_seq
        disk.close()
        reopened = SegmentedIndex.open(tmp_path / "idx")
        assert reopened.max_state_index == 3
        assert reopened.stopwords == frozenset({"the"})
        assert reopened.block_size == 7
        assert reopened._next_seq == next_seq
        # New states continue the global sequence, keeping order stable.
        reopened.add_model(make_model("late", ["late arrival"]))
        reopened.finalize()
        assert reopened.states()[-1] == ("late", "s0")
        reopened.close()

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(SearchError, match="not a segmented index"):
            SegmentedIndex.open(tmp_path / "missing")

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "idx"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(SearchError, match="corrupt index manifest"):
            SegmentedIndex(root)

    def test_unsupported_manifest_version_rejected(self, tmp_path):
        root = tmp_path / "idx"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"version": 99}), encoding="utf-8"
        )
        with pytest.raises(SearchError, match="version"):
            SegmentedIndex(root)

    def test_stats_inventory(self, tmp_path):
        disk = SegmentedIndex(tmp_path / "idx", flush_threshold=20).build(
            corpus_texts()
        )
        stats = disk.stats()
        assert stats["num_segments"] == disk.num_segments == len(stats["segments"])
        assert stats["num_states"] == disk.num_states
        assert stats["num_bytes"] == sum(s["num_bytes"] for s in stats["segments"])
        assert stats["cache"]["capacity"] == disk.cache.capacity
        disk.close()


# -- update_model == fresh rebuild (property) --------------------------------------

words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)
texts = st.lists(
    st.lists(words, min_size=1, max_size=5).map(" ".join), min_size=1, max_size=4
)


@given(initial=texts, replacement=texts, other=texts)
@settings(max_examples=25, deadline=None)
def test_update_model_equals_fresh_rebuild_property(
    tmp_path_factory, initial, replacement, other
):
    """update_model(m) leaves any index equal to a fresh build with m.

    Checked for both backends against the same fresh InvertedFile:
    postings, df, idf, lengths, depths and global state order.
    """
    updated = [make_model("u1", replacement), make_model("u2", other)]
    fresh = InvertedFile().build(updated)

    memory = InvertedFile().build(
        [make_model("u1", initial), make_model("u2", other)]
    )
    memory.update_model(make_model("u1", replacement))

    scratch = tmp_path_factory.mktemp("segmented")
    disk = SegmentedIndex(scratch / "idx", flush_threshold=3, block_size=2).build(
        [make_model("u1", initial), make_model("u2", other)]
    )
    disk.update_model(make_model("u1", replacement))

    for index in (memory, disk):
        assert index.num_states == fresh.num_states
        assert index.terms() == fresh.terms()
        for term in fresh.terms():
            assert index.postings(term) == fresh.postings(term), term
            assert index.document_frequency(term) == fresh.document_frequency(term)
            assert index.idf(term) == fresh.idf(term), term
        for uri, state_id in fresh.states():
            assert index.state_length(uri, state_id) == fresh.state_length(
                uri, state_id
            )
            assert index.state_depth(uri, state_id) == fresh.state_depth(
                uri, state_id
            )
    # Order differs from a fresh build only in u1 moving to the end —
    # both backends must agree on the exact resulting order.
    assert disk.states() == memory.states()
    disk.close()
