"""Tests for result aggregation: state reconstruction by event replay (§5.4)."""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.crawler import AjaxCrawler
from repro.errors import SearchError
from repro.search import ResultAggregator, SearchEngine
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=25, seed=13))


@pytest.fixture(scope="module")
def crawled(site):
    crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
    index = next(
        i for i in range(site.config.num_videos) if 3 <= site.comment_pages_of(i) <= 8
    )
    return index, crawler.crawl_page(site.video_url(index)).model


class TestReconstruction:
    def test_initial_state_reconstructs(self, site, crawled):
        _, model = crawled
        aggregator = ResultAggregator(Browser(site, cost_model=CostModel(network_jitter=0.0)))
        page = aggregator.reconstruct(model, model.initial_state_id)
        assert page.content_hash() == model.initial_state.content_hash

    def test_deep_state_reconstructs(self, site, crawled):
        index, model = crawled
        deep = max(model.states(), key=lambda state: state.depth)
        assert deep.depth >= 1
        aggregator = ResultAggregator(Browser(site, cost_model=CostModel(network_jitter=0.0)))
        page = aggregator.reconstruct(model, deep.state_id)
        assert page.content_hash() == deep.content_hash

    def test_reconstructed_page_is_live(self, site, crawled):
        """'The browser can continue processing the page' — events still work."""
        index, model = crawled
        state_page2 = next(s for s in model.states() if s.depth == 1)
        aggregator = ResultAggregator(Browser(site, cost_model=CostModel(network_jitter=0.0)))
        page = aggregator.reconstruct(model, state_page2.state_id)
        prev_events = [b for b in page.events() if b.handler == "prevPage()"]
        assert prev_events
        page.dispatch(prev_events[0])
        assert page.content_hash() == model.initial_state.content_hash

    def test_replay_detects_changed_site(self, site, crawled):
        index, model = crawled
        deep = max(model.states(), key=lambda state: state.depth)
        # Tamper with the recorded hash to simulate a drifted site.
        deep.content_hash = "0" * 64
        aggregator = ResultAggregator(Browser(site, cost_model=CostModel(network_jitter=0.0)))
        with pytest.raises(SearchError):
            aggregator.reconstruct(model, deep.state_id)
        # Restore for other tests (module-scoped fixture).
        page = aggregator.browser.load(model.url)


class TestEndToEnd:
    def test_search_then_reconstruct(self, site):
        """Full pipeline: crawl -> index -> query -> reconstruct result."""
        crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        urls = [site.video_url(i) for i in range(6)]
        result = crawler.crawl(urls)
        engine = SearchEngine.build(result.models)
        # Find a word that exists on a deep comment page.
        target_video = next(
            i for i in range(6) if site.comment_pages_of(i) >= 2
        )
        deep_comment = site.comment_text(target_video, 2, 0)
        rare_word = max(deep_comment.split(), key=len)
        hits = engine.search(rare_word)
        assert hits, f"no hits for {rare_word!r}"
        hit = next(h for h in hits if h.uri == site.video_url(target_video))
        model = next(m for m in result.models if m.url == hit.uri)
        aggregator = ResultAggregator(Browser(site, cost_model=CostModel(network_jitter=0.0)))
        page = aggregator.reconstruct(model, hit.state_id)
        assert rare_word in page.text

    def test_missing_event_binding_raises_search_error(self, site, crawled):
        """Regression: a transition whose event no longer exists on the
        page used to leak CrawlerError through reconstruct()."""
        import dataclasses

        index, model = crawled
        deep = max(model.states(), key=lambda state: state.depth)
        transition = model.event_path_to(deep.state_id)[-1]
        # Tamper with the recorded annotation: the handler name no
        # longer matches anything the live page binds.
        original = transition.event
        tampered = dataclasses.replace(original, handler="vanished()")
        object.__setattr__(transition, "event", tampered)
        aggregator = ResultAggregator(
            Browser(site, cost_model=CostModel(network_jitter=0.0))
        )
        try:
            with pytest.raises(SearchError, match="replay .* failed"):
                aggregator.reconstruct(model, deep.state_id)
        finally:
            object.__setattr__(transition, "event", original)

    def test_both_failure_modes_are_search_errors(self, site, crawled):
        """The server maps reconstruction failures to one error class:
        drift detection and replay failure both raise SearchError."""
        from repro.errors import ReproError

        index, model = crawled
        deep = max(model.states(), key=lambda state: state.depth)
        original = deep.content_hash
        deep.content_hash = "f" * 64
        aggregator = ResultAggregator(
            Browser(site, cost_model=CostModel(network_jitter=0.0))
        )
        try:
            with pytest.raises(SearchError):
                aggregator.reconstruct(model, deep.state_id)
        except ReproError:  # pragma: no cover - would mean a leak
            pytest.fail("reconstruct leaked a non-SearchError ReproError")
        finally:
            deep.content_hash = original
