"""Unit tests for the state-granular inverted file."""

import math

import pytest

from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.search import InvertedFile


def make_model(url, state_texts):
    model = ApplicationModel(url)
    for offset, text in enumerate(state_texts):
        model.add_state(f"hash-{url}-{offset}", text, depth=offset)
    return model


@pytest.fixture
def index():
    """The Table 5.1 scenario: two Morcheeba videos."""
    video1 = make_model("url1", ["morcheeba mysterious video", "morcheeba singer here"])
    video2 = make_model("url2", ["morcheeba morcheeba great"])
    return InvertedFile().build([video1, video2])


class TestBuild:
    def test_num_states(self, index):
        assert index.num_states == 3

    def test_vocabulary(self, index):
        # morcheeba, mysterious, video, singer, here, great.
        assert index.vocabulary_size == 6

    def test_postings_sorted_and_counted(self, index):
        postings = index.postings("morcheeba")
        assert [(p.uri, p.state_id, p.count) for p in postings] == [
            ("url1", "s0", 1),
            ("url1", "s1", 1),
            ("url2", "s0", 2),
        ]

    def test_missing_term_empty(self, index):
        assert index.postings("absent") == []

    def test_positions_recorded(self, index):
        (posting,) = [p for p in index.postings("singer")]
        assert posting.positions == (1,)

    def test_double_index_rejected(self, index):
        model = make_model("url1", ["again"])
        with pytest.raises(SearchError):
            index.add_model(model)

    def test_state_depth_kept(self, index):
        assert index.state_depth("url1", "s1") == 1


class TestMaxStateIndex:
    def test_traditional_index_has_first_states_only(self):
        video = make_model("u", ["first page", "second page", "third page"])
        traditional = InvertedFile(max_state_index=1).build([video])
        assert traditional.num_states == 1
        assert traditional.postings("second") == []
        assert len(traditional.postings("first")) == 1

    def test_k_state_index(self):
        video = make_model("u", ["one", "two", "three", "four"])
        two_states = InvertedFile(max_state_index=2).build([video])
        assert two_states.num_states == 2
        assert two_states.postings("two")
        assert not two_states.postings("three")


class TestStatistics:
    def test_tf(self, index):
        # "morcheeba morcheeba great": 2 of 3 tokens.
        assert index.tf("morcheeba", "url2", "s0") == pytest.approx(2 / 3)
        assert index.tf("great", "url2", "s0") == pytest.approx(1 / 3)
        assert index.tf("absent", "url2", "s0") == 0.0
        assert index.tf("morcheeba", "nope", "s0") == 0.0

    def test_idf(self, index):
        # morcheeba is in all 3 states -> idf = log(3/3) = 0.
        assert index.idf("morcheeba") == pytest.approx(0.0)
        # singer in 1 of 3 states.
        assert index.idf("singer") == pytest.approx(math.log(3))
        assert index.idf("absent") == 0.0

    def test_worked_example_from_section_652(self):
        """idf = log((10+13)/(4+6)) = log(2.3) — eq. in §6.5.2."""
        states_a = [f"filler{i}" for i in range(10)]
        for i in range(4):
            states_a[i] = f"keyword filler{i}"
        states_b = [f"other{i}" for i in range(13)]
        for i in range(6):
            states_b[i] = f"keyword other{i}"
        index = InvertedFile().build(
            [make_model("a", states_a), make_model("b", states_b)]
        )
        assert index.idf("keyword") == pytest.approx(math.log(23 / 10))

    def test_state_length(self, index):
        assert index.state_length("url1", "s0") == 3
        assert index.state_length("nope", "s0") == 0


class TestSerialization:
    def test_round_trip(self, index, tmp_path):
        path = tmp_path / "index.json"
        index.save(path)
        loaded = InvertedFile.load(path)
        assert loaded.num_states == index.num_states
        assert loaded.postings("morcheeba") == index.postings("morcheeba")
        assert loaded.idf("singer") == pytest.approx(index.idf("singer"))
        assert loaded.state_depth("url1", "s1") == 1
        assert loaded.max_state_index == index.max_state_index

    def test_round_trip_preserves_max_state_index(self, tmp_path):
        video = make_model("u", ["one", "two"])
        index = InvertedFile(max_state_index=1).build([video])
        path = tmp_path / "index.json"
        index.save(path)
        assert InvertedFile.load(path).max_state_index == 1


class TestFinalizeThreadSafety:
    """Regression: the first queries of a fresh index used to race on
    the lazy sort in finalize()."""

    def test_concurrent_first_postings_calls_are_safe(self):
        import threading

        texts = [f"shared term{i} filler words here" for i in range(40)]
        index = InvertedFile()
        index.add_model(make_model("u", texts))
        assert not index._sorted
        expected = InvertedFile().build([make_model("u", texts)]).postings("shared")
        barrier = threading.Barrier(8)
        results: list[list] = [None] * 8
        errors: list[BaseException] = []

        def query(slot: int) -> None:
            try:
                barrier.wait()
                results[slot] = index.postings("shared")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=query, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert index._sorted
        for result in results:
            assert result == expected

    def test_engine_construction_finalizes_eagerly(self):
        from repro.search import SearchEngine

        index = InvertedFile()
        index.add_model(make_model("u", ["hello world"]))
        assert not index._sorted
        SearchEngine(index)
        assert index._sorted


class TestTfBisect:
    """Regression for the O(df) scan in tf(): the binary-search probe
    must return exactly what a full scan of the posting list returns,
    for every state and for misses on either side of the list."""

    def _naive_tf(self, index, term, uri, state_id):
        length = index.state_length(uri, state_id)
        if length == 0:
            return 0.0
        for posting in index.postings(term):
            if posting.uri == uri and posting.state_id == state_id:
                return posting.count / length
        return 0.0

    def test_probe_matches_scan_everywhere(self):
        models = [
            make_model(
                f"url{page:02d}",
                [f"common unique{page}x{state} extra" for state in range(5)],
            )
            for page in range(10)
        ]
        index = InvertedFile().build(models)
        assert index.document_frequency("common") == 50
        for uri, state_id in index.states():
            for term in ("common", f"unique{uri[3:]}x0", "absent"):
                assert index.tf(term, uri, state_id) == self._naive_tf(
                    index, term, uri, state_id
                ), (term, uri, state_id)

    def test_probe_misses_between_postings(self):
        # "gap" is in url0 and url2 only; a url1 probe must land between
        # the two postings and return 0 without a false match.
        index = InvertedFile().build(
            [
                make_model("url0", ["gap word"]),
                make_model("url1", ["other word"]),
                make_model("url2", ["gap word"]),
            ]
        )
        assert index.tf("gap", "url1", "s0") == 0.0
        assert index.tf("gap", "url0", "s0") == pytest.approx(0.5)
        assert index.tf("gap", "url2", "s0") == pytest.approx(0.5)

    def test_probe_beyond_last_posting(self):
        index = InvertedFile().build(
            [make_model("a", ["solo term"]), make_model("z", ["filler only"])]
        )
        # "solo" sorts entirely before ("z", 0): bisect lands past the end.
        assert index.tf("solo", "z", "s0") == 0.0

    def test_probe_on_unfinalized_index(self):
        # tf() must finalize (sort) before bisecting a fresh index.
        index = InvertedFile()
        index.add_model(make_model("b", ["term here"]))
        index.add_model(make_model("a", ["term there"]))
        assert not index._sorted
        assert index.tf("term", "a", "s0") == pytest.approx(0.5)
