"""Unit and property tests for tokenization and posting-list merging."""

from hypothesis import given, strategies as st

from repro.search import merge_conjunction, sort_postings, tokenize, tokenize_with_positions
from repro.search.postings import Posting


class TestTokenizer:
    def test_lowercases(self):
        assert tokenize("Morcheeba ROCKS") == ["morcheeba", "rocks"]

    def test_strips_punctuation(self):
        assert tokenize("wow!! this, is... great?") == ["wow", "this", "is", "great"]

    def test_numbers_kept(self):
        assert tokenize("page 2 of 10") == ["page", "2", "of", "10"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! ???") == []

    def test_positions(self):
        assert tokenize_with_positions("a b a") == [("a", 0), ("b", 1), ("a", 2)]


def posting(uri, state, *positions):
    return Posting(uri=uri, state_id=state, positions=tuple(positions))


class TestSortPostings:
    def test_sorts_by_uri_then_state_index(self):
        postings = [
            posting("b", "s0", 1),
            posting("a", "s10", 1),
            posting("a", "s2", 1),
        ]
        ordered = sort_postings(postings)
        assert [(p.uri, p.state_id) for p in ordered] == [
            ("a", "s2"),
            ("a", "s10"),  # numeric, not lexicographic: s2 < s10
            ("b", "s0"),
        ]


class TestMergeConjunction:
    def test_empty_input(self):
        assert merge_conjunction([]) == []

    def test_single_list_passes_through(self):
        lists = [[posting("a", "s0", 1), posting("b", "s1", 2)]]
        groups = merge_conjunction(lists)
        assert [(g[0].uri, g[0].state_id) for g in groups] == [("a", "s0"), ("b", "s1")]

    def test_intersection_on_uri_and_state(self):
        """The Figure 5.2 example: morcheeba AND singer -> (URL1, s2)."""
        morcheeba = [
            posting("url1", "s1", 0),
            posting("url1", "s2", 3),
            posting("url2", "s1", 5),
        ]
        singer = [posting("url1", "s2", 9), posting("url3", "s0", 1)]
        groups = merge_conjunction([morcheeba, singer])
        assert len(groups) == 1
        assert (groups[0][0].uri, groups[0][0].state_id) == ("url1", "s2")
        # Per-term postings preserved for proximity scoring.
        assert groups[0][0].positions == (3,)
        assert groups[0][1].positions == (9,)

    def test_same_uri_different_states_not_matched(self):
        one = [posting("u", "s1", 0)]
        two = [posting("u", "s2", 0)]
        assert merge_conjunction([one, two]) == []

    def test_any_empty_list_empties_result(self):
        assert merge_conjunction([[posting("u", "s0", 1)], []]) == []

    def test_three_way_conjunction(self):
        a = [posting("u", "s0", 0), posting("u", "s1", 0), posting("v", "s0", 0)]
        b = [posting("u", "s1", 1), posting("v", "s0", 1)]
        c = [posting("u", "s1", 2), posting("w", "s0", 2)]
        groups = merge_conjunction([a, b, c])
        assert [(g[0].uri, g[0].state_id) for g in groups] == [("u", "s1")]


# -- property-based: merge == brute-force set intersection ---------------------

keys = st.tuples(
    st.sampled_from(["u1", "u2", "u3"]),
    st.integers(min_value=0, max_value=6),
)


def build_list(pairs):
    return sort_postings(
        [posting(uri, f"s{idx}", 0) for uri, idx in set(pairs)]
    )


@given(st.lists(keys, max_size=15), st.lists(keys, max_size=15))
def test_merge_matches_set_intersection(pairs_a, pairs_b):
    list_a, list_b = build_list(pairs_a), build_list(pairs_b)
    groups = merge_conjunction([list_a, list_b])
    merged = {(g[0].uri, g[0].state_id) for g in groups}
    expected = {(p.uri, p.state_id) for p in list_a} & {
        (p.uri, p.state_id) for p in list_b
    }
    assert merged == expected


@given(st.lists(keys, min_size=1, max_size=12))
def test_merge_with_self_is_identity(pairs):
    plist = build_list(pairs)
    groups = merge_conjunction([plist, plist])
    assert [(g[0].uri, g[0].state_id) for g in groups] == [
        (p.uri, p.state_id) for p in plist
    ]
