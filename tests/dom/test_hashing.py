"""Unit and property tests for state hashing (duplicate detection, §3.2)."""

from hypothesis import given, strategies as st

from repro.dom import Element, Text, parse_document, parse_fragment, state_hash, text_hash


def doc_with_comment(comment: str):
    return parse_document(
        f"<html><body><div id='recent_comments'>{comment}</div></body></html>"
    )


class TestStateHash:
    def test_identical_documents_hash_equal(self):
        assert state_hash(doc_with_comment("hi")) == state_hash(doc_with_comment("hi"))

    def test_different_text_hashes_differ(self):
        assert state_hash(doc_with_comment("page one")) != state_hash(
            doc_with_comment("page two")
        )

    def test_attribute_change_hashes_differ(self):
        one = parse_fragment('<div class="a"></div>')[0]
        two = parse_fragment('<div class="b"></div>')[0]
        assert state_hash(one) != state_hash(two)

    def test_attribute_order_irrelevant(self):
        one = parse_fragment('<div a="1" b="2"></div>')[0]
        two = parse_fragment('<div b="2" a="1"></div>')[0]
        assert state_hash(one) == state_hash(two)

    def test_structure_matters(self):
        flat = parse_fragment("<div><p>x</p><p>y</p></div>")[0]
        nested = parse_fragment("<div><p>x<p>y</p></p></div>")[0]
        assert state_hash(flat) != state_hash(nested)

    def test_exclude_subtree(self):
        one = doc_with_comment("same")
        two = doc_with_comment("same")
        tracker = Element("img", {"id": "tracker", "src": "a.gif"})
        two.body.append_child(tracker)
        exclude = lambda e: e.id == "tracker"  # noqa: E731
        assert state_hash(one, exclude=exclude) == state_hash(two, exclude=exclude)
        assert state_hash(one) != state_hash(two)

    def test_hash_is_hex_sha256(self):
        digest = state_hash(doc_with_comment("x"))
        assert len(digest) == 64
        int(digest, 16)  # must be valid hex


class TestTextHash:
    def test_markup_insensitive(self):
        one = parse_fragment("<div><b>hello</b> world</div>")[0]
        two = parse_fragment("<div>hello <i>world</i></div>")[0]
        assert text_hash(one) == text_hash(two)

    def test_whitespace_normalized(self):
        one = parse_fragment("<p>a  b</p>")[0]
        two = parse_fragment("<p>a\n\tb</p>")[0]
        assert text_hash(one) == text_hash(two)

    def test_plain_text_node(self):
        assert text_hash(Text("abc")) == text_hash(Text(" abc "))


# -- property-based --------------------------------------------------------

simple_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=20,
)


@given(simple_text)
def test_hash_deterministic_for_any_text(payload):
    assert state_hash(doc_with_comment(payload)) == state_hash(doc_with_comment(payload))


@given(simple_text, simple_text)
def test_hash_separates_different_payloads(a, b):
    if a == b:
        return
    assert state_hash(doc_with_comment(a)) != state_hash(doc_with_comment(b))


@given(st.lists(simple_text, min_size=1, max_size=5))
def test_roundtrip_preserves_hash(payloads):
    """Serializing and reparsing a document must not change its identity."""
    from repro.dom import serialize

    html = "".join(f"<p>{p}</p>" for p in payloads)
    doc = parse_document(f"<html><body>{html}</body></html>")
    reparsed = parse_document(serialize(doc))
    assert state_hash(doc) == state_hash(reparsed)
