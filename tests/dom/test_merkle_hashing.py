"""Property tests for the Merkle DOM hasher (incremental hashing).

The hard constraint of the incremental-hashing change is that digests
stay byte-identical to the historical full-rewalk implementation.  The
oracle here is implemented independently in this file (straight
recursion over the canonical hash-stream format), so a shared bug in
``repro.dom.hashing`` cannot hide itself.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.dom import (
    Document,
    Element,
    Text,
    clear_digest_memo,
    hash_tree,
    parse_document,
    reference_region_hashes,
    reference_state_hash,
    state_hash,
)
from repro.dom.hashing import HashStats
from repro.dom.serialize import escape_attribute, escape_text


# -- independent oracle --------------------------------------------------------


def oracle_bytes(node) -> bytes:
    if isinstance(node, Text):
        return escape_text(node.data).encode("utf-8")
    attrs = "".join(
        f' {name}="{escape_attribute(node.attrs[name])}"' for name in sorted(node.attrs)
    )
    inner = b"".join(oracle_bytes(child) for child in node.children)
    return (
        f"<{node.tag}{attrs}>".encode("utf-8")
        + inner
        + f"</{node.tag}>".encode("utf-8")
    )


def oracle_state(root) -> str:
    return hashlib.sha256(oracle_bytes(root)).hexdigest()


def oracle_regions(root) -> dict:
    regions = {}

    def walk(node):
        if not isinstance(node, Element):
            return
        if node.attrs.get("id"):
            regions[node.attrs["id"]] = hashlib.sha256(oracle_bytes(node)).hexdigest()
        for child in node.children:
            walk(child)

    walk(root)
    return regions


# -- random trees and mutations ------------------------------------------------

TAGS = ("div", "span", "p", "ul", "li")
#: Small id pool on purpose: duplicate ids exercise last-wins semantics.
IDS = (None, None, "main", "nav", "box", "box")
WORDS = st.text(alphabet='abc<&" \n', min_size=0, max_size=8)

leaf_spec = WORDS.map(lambda t: ("text", t))
node_spec = st.recursive(
    leaf_spec,
    lambda children: st.tuples(
        st.sampled_from(TAGS), st.sampled_from(IDS), st.lists(children, max_size=3)
    ).map(lambda t: ("elem", *t)),
    max_leaves=12,
)
root_spec = st.tuples(
    st.sampled_from(TAGS), st.sampled_from(IDS), st.lists(node_spec, max_size=4)
).map(lambda t: ("elem", *t))


def build(spec):
    if spec[0] == "text":
        return Text(spec[1])
    _, tag, ident, children = spec
    attrs = {"id": ident} if ident else {}
    element = Element(tag, attrs)
    for child in children:
        element.append_child(build(child))
    return element


def all_nodes(root):
    out = [root]
    if isinstance(root, Element):
        for child in root.children:
            out.extend(all_nodes(child))
    return out


MUTATIONS = ("set_attr", "del_attr", "append", "insert", "remove", "text")


def mutate(root, data):
    """Apply one random structural/attribute/text mutation through the
    public DOM mutators (the dirty-propagation entry points)."""
    op = data.draw(st.sampled_from(MUTATIONS))
    elements = [n for n in all_nodes(root) if isinstance(n, Element)]
    target = data.draw(st.sampled_from(elements))
    if op == "set_attr":
        name = data.draw(st.sampled_from(("id", "class", "data-x")))
        target.set_attribute(name, data.draw(WORDS))
    elif op == "del_attr":
        name = data.draw(st.sampled_from(("id", "class", "data-x")))
        target.remove_attribute(name)
    elif op == "append":
        target.append_child(build(data.draw(node_spec)))
    elif op == "insert":
        reference = (
            data.draw(st.sampled_from(target.children)) if target.children else None
        )
        target.insert_before(build(data.draw(node_spec)), reference)
    elif op == "remove":
        if target.children:
            target.remove_child(data.draw(st.sampled_from(target.children)))
    elif op == "text":
        texts = [n for n in all_nodes(root) if isinstance(n, Text)]
        if texts:
            data.draw(st.sampled_from(texts)).data = data.draw(WORDS)


# -- the central property ------------------------------------------------------


@given(root_spec, st.data())
@settings(max_examples=80, deadline=None)
def test_merkle_matches_oracle_under_mutation_sequences(spec, data):
    """After any mutation sequence, the cached-pass hash and region map
    equal the independent full-rewalk oracle — i.e. the dirty bit never
    serves a stale digest."""
    root = build(spec)
    document = Document(root)
    stats = HashStats()
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        result = hash_tree(document, stats=stats)
        assert result.state == oracle_state(root)
        assert result.regions == oracle_regions(root)
        mutate(root, data)
    final = hash_tree(document, stats=stats)
    assert final.state == oracle_state(root)
    assert final.regions == oracle_regions(root)


@given(root_spec, st.data())
@settings(max_examples=40, deadline=None)
def test_merkle_matches_reference_walk(spec, data):
    """The shipped reference implementations agree with the Merkle pass
    on the same (already cached, then mutated) tree."""
    root = build(spec)
    document = Document(root)
    hash_tree(document)  # warm caches so the reference runs against them
    mutate(root, data)
    result = hash_tree(document)
    assert result.state == reference_state_hash(document)
    assert result.regions == reference_region_hashes(document)
    assert result.state == state_hash(document)


# -- unit checks on the cache machinery ---------------------------------------

SAMPLES = [
    "<html><body><p>plain</p></body></html>",
    "<html><body><div id='a'><div id='a'>dup ids</div></div></body></html>",
    "<html><body>text &amp; <b>entities</b> &lt;kept&gt;</body></html>",
    "<html><body><br><img src='x.gif'><hr></body></html>",
    "<html><head><script>var a = 1;</script></head><body>s</body></html>",
]


def test_merkle_equals_reference_on_corpus():
    for html in SAMPLES:
        fresh = parse_document(html)
        assert hash_tree(fresh).state == reference_state_hash(parse_document(html))
        assert hash_tree(fresh).regions == reference_region_hashes(parse_document(html))


def test_second_pass_is_pure_cache_read():
    document = parse_document(SAMPLES[1])
    stats = HashStats()
    first = hash_tree(document, stats=stats)
    second = hash_tree(document, stats=stats)
    assert second.state == first.state
    assert second.nodes_hashed == 0
    assert second.bytes_hashed == 0
    assert second.incremental
    assert stats.full_passes == 1 and stats.incremental_passes == 1


def test_leaf_mutation_rehashes_only_the_spine():
    document = parse_document(
        "<html><body>"
        + "".join(f"<div id='s{i}'><p>sect {i}</p></div>" for i in range(20))
        + "<div id='hot'><p>old</p></div></body></html>"
    )
    stats = HashStats()
    hash_tree(document, stats=stats)
    total = stats.nodes_hashed
    hot = next(
        n
        for n in all_nodes(document.root)
        if isinstance(n, Element) and n.attrs.get("id") == "hot"
    )
    hot.children[0].children[0].data = "new"
    result = hash_tree(document, stats=stats)
    assert result.incremental
    assert result.nodes_skipped > 0
    # Only the changed text, its <p>, the region div, and the ancestor
    # spine (body/html) rebuild — a small fraction of the tree.
    assert result.nodes_hashed < total / 4
    assert result.state == oracle_state(document.root)


def test_clone_preserves_caches_and_isolates_mutations():
    document = parse_document(SAMPLES[1])
    original = hash_tree(document)
    twin = document.clone()
    stats = HashStats()
    cloned = hash_tree(twin, stats=stats)
    assert cloned.state == original.state
    assert cloned.regions == original.regions
    assert stats.nodes_hashed == 0  # the clone arrived warm
    # Mutating the clone must not leak into the master.
    twin.root.set_attribute("class", "mutated")
    assert hash_tree(twin).state != original.state
    assert hash_tree(document).state == original.state


def test_toggle_back_to_seen_state_costs_no_hash_bytes():
    clear_digest_memo()
    document = parse_document(SAMPLES[0])
    stats = HashStats()
    hash_tree(document, stats=stats)
    body = document.body
    body.set_attribute("class", "on")
    hash_tree(document, stats=stats)
    body.remove_attribute("class")
    before = stats.bytes_hashed
    third = hash_tree(document, stats=stats)
    assert third.state == oracle_state(document.root)
    assert stats.bytes_hashed == before  # every digest came from the memo


def test_exclude_takes_the_reference_path():
    document = parse_document(SAMPLES[1])
    hash_tree(document)
    exclude = lambda e: e.attrs.get("id") == "a"  # noqa: E731
    stats = HashStats()
    digest = state_hash(document, exclude=exclude, stats=stats)
    assert stats.full_passes == 1
    fresh = parse_document(SAMPLES[1])
    assert digest == reference_state_hash(fresh, exclude=exclude)
