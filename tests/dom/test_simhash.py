"""Unit tests for simhash fingerprints over per-region DOM features."""

import pytest

from repro.dom import parse_document
from repro.dom.simhash import (
    FINGERPRINT_BITS,
    band_keys,
    bands_for_threshold,
    hamming,
    simhash64,
    state_features,
)


def features_of(html):
    return state_features(parse_document(html))


class TestStateFeatures:
    def test_tokens_qualified_by_innermost_region(self):
        features = features_of(
            '<div id="outer">alpha<div id="inner">alpha</div></div>'
        )
        assert "outer!alpha" in features
        assert "inner!alpha" in features
        assert "r!outer" in features and "r!inner" in features

    def test_text_outside_any_region_gets_empty_qualifier(self):
        assert "!loose" in features_of("<p>loose</p>")

    def test_same_word_in_two_regions_is_two_features(self):
        features = features_of('<div id="a">word</div><div id="b">word</div>')
        assert {"a!word", "b!word"} <= features

    def test_script_and_style_bodies_excluded(self):
        features = features_of(
            '<div id="c">visible</div>'
            "<script>var hidden = 1;</script><style>.x{color:red}</style>"
        )
        assert "c!visible" in features
        assert not any("hidden" in f or "color" in f for f in features)

    def test_intra_run_bigrams_emitted(self):
        features = features_of('<div id="c">alpha beta gamma</div>')
        assert {"c!alpha_beta", "c!beta_gamma"} <= features
        assert "c!alpha_gamma" not in features

    def test_bigrams_do_not_cross_element_boundaries(self):
        features = features_of('<div id="c"><b>alpha</b><b>beta</b></div>')
        assert "c!alpha" in features and "c!beta" in features
        assert "c!alpha_beta" not in features

    def test_set_semantics_repeated_word_is_one_feature(self):
        once = features_of('<div id="c">echo stop</div>')
        thrice = features_of('<div id="c">echo echo echo stop</div>')
        assert "c!echo" in once
        # Repetition only adds the echo_echo bigram, not weight.
        assert thrice - once == {"c!echo_echo"}

    def test_empty_document(self):
        assert features_of("") == frozenset()


class TestSimhash64:
    def test_deterministic_and_in_range(self):
        fp = simhash64({"a!x", "b!y"})
        assert fp == simhash64({"b!y", "a!x"})
        assert 0 <= fp < (1 << FINGERPRINT_BITS)

    def test_one_changed_token_moves_few_bits(self):
        base = {f"c!w{i}" for i in range(40)}
        near = (base - {"c!w0"}) | {"c!zz9"}
        far = {f"d!v{i}" for i in range(40)}
        assert hamming(simhash64(base), simhash64(near)) < 15
        assert hamming(simhash64(base), simhash64(far)) > 15


class TestBandMath:
    @pytest.mark.parametrize(
        "threshold,bands",
        [(0, 1), (1, 2), (3, 4), (7, 8), (14, 16), (15, 16), (31, 32), (63, 64)],
    )
    def test_smallest_covering_band_count(self, threshold, bands):
        assert bands_for_threshold(threshold) == bands

    @pytest.mark.parametrize("threshold", [-1, 64, 100])
    def test_threshold_out_of_range_rejected(self, threshold):
        with pytest.raises(ValueError):
            bands_for_threshold(threshold)

    def test_band_keys_reassemble_fingerprint(self):
        fp = 0x0123456789ABCDEF
        for bands in (1, 2, 4, 8, 16, 32, 64):
            keys = band_keys(fp, bands)
            rows = FINGERPRINT_BITS // bands
            assert len(keys) == bands
            assert sum(key << (band * rows) for band, key in enumerate(keys)) == fp

    def test_band_count_must_divide_width(self):
        with pytest.raises(ValueError):
            band_keys(0, 3)


class TestHamming:
    def test_examples(self):
        assert hamming(0, 0) == 0
        assert hamming(0b1010, 0b0101) == 4
        assert hamming(0, (1 << FINGERPRINT_BITS) - 1) == FINGERPRINT_BITS
