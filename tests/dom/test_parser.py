"""Unit tests for the HTML tokenizer/parser."""

import pytest

from repro.dom import Element, HtmlParser, Text, parse_document, parse_fragment, unescape
from repro.errors import HtmlParseError


class TestBasicParsing:
    def test_single_element(self):
        (node,) = parse_fragment("<div></div>")
        assert isinstance(node, Element)
        assert node.tag == "div"

    def test_nested_elements(self):
        (outer,) = parse_fragment("<div><span><b>x</b></span></div>")
        span = outer.children[0]
        bold = span.children[0]
        assert (outer.tag, span.tag, bold.tag) == ("div", "span", "b")
        assert bold.text_content == "x"

    def test_text_between_elements(self):
        nodes = parse_fragment("a<b>c</b>d")
        kinds = [type(node).__name__ for node in nodes]
        assert kinds == ["Text", "Element", "Text"]

    def test_attributes_double_quoted(self):
        (node,) = parse_fragment('<a href="http://x/" id="l1">x</a>')
        assert node.get_attribute("href") == "http://x/"
        assert node.id == "l1"

    def test_attributes_single_quoted(self):
        (node,) = parse_fragment("<a href='y'>x</a>")
        assert node.get_attribute("href") == "y"

    def test_attributes_unquoted(self):
        (node,) = parse_fragment("<input type=text name=q>")
        assert node.get_attribute("type") == "text"
        assert node.get_attribute("name") == "q"

    def test_boolean_attribute(self):
        (node,) = parse_fragment("<input disabled>")
        assert node.has_attribute("disabled")
        assert node.get_attribute("disabled") == ""

    def test_attribute_names_lowercased(self):
        (node,) = parse_fragment('<div onClick="f()"></div>')
        assert node.get_attribute("onclick") == "f()"

    def test_void_elements_have_no_children(self):
        nodes = parse_fragment("<br><img src=x><hr>")
        assert [n.tag for n in nodes] == ["br", "img", "hr"]
        assert all(not n.children for n in nodes)

    def test_self_closing_syntax(self):
        (node,) = parse_fragment("<div/>")
        assert node.tag == "div"
        assert node.children == []

    def test_comment_skipped(self):
        nodes = parse_fragment("a<!-- hidden -->b")
        assert "".join(n.data for n in nodes if isinstance(n, Text)) == "ab"

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE html><html><body>x</body></html>")
        assert doc.body is not None
        assert doc.body.text_content == "x"

    def test_entities_in_text(self):
        (node,) = parse_fragment("<p>a &amp; b &lt;c&gt; &#39;q&#39; &#x41;</p>")
        assert node.text_content == "a & b <c> 'q' A"

    def test_entities_in_attributes(self):
        (node,) = parse_fragment('<div title="a &quot;b&quot;"></div>')
        assert node.get_attribute("title") == 'a "b"'

    def test_unknown_entity_left_alone(self):
        assert unescape("&bogus;") == "&bogus;"

    def test_bare_less_than_is_text(self):
        nodes = parse_fragment("1 < 2")
        text = "".join(n.data for n in nodes if isinstance(n, Text))
        assert text == "1 < 2"


class TestScriptElements:
    def test_script_body_is_raw(self):
        (node,) = parse_fragment("<script>if (a < b) { go(); }</script>")
        assert node.tag == "script"
        assert node.children[0].data == "if (a < b) { go(); }"

    def test_script_with_markup_like_content(self):
        (node,) = parse_fragment('<script>x = "<div>not an element</div>";</script>')
        assert "<div>" in node.children[0].data
        assert node.get_elements_by_tag("div") == []

    def test_style_is_raw(self):
        (node,) = parse_fragment("<style>a > b { color: red; }</style>")
        assert node.children[0].data == "a > b { color: red; }"


class TestLenientRecovery:
    def test_unclosed_element_tolerated(self):
        (node,) = parse_fragment("<div><span>x")
        assert node.tag == "div"
        assert node.children[0].tag == "span"

    def test_stray_close_ignored(self):
        nodes = parse_fragment("a</div>b")
        text = "".join(n.data for n in nodes if isinstance(n, Text))
        assert text == "ab"

    def test_mismatched_close_pops_to_ancestor(self):
        (outer,) = parse_fragment("<div><span>x</div>")
        assert outer.tag == "div"

    def test_document_without_html_gets_synthesized_root(self):
        doc = parse_document("<p>hello</p>")
        assert doc.root.tag == "html"
        assert doc.body is not None
        assert doc.body.text_content == "hello"


class TestStrictMode:
    def test_unclosed_element_raises(self):
        with pytest.raises(HtmlParseError):
            HtmlParser(strict=True).parse_fragment("<div>")

    def test_stray_close_raises(self):
        with pytest.raises(HtmlParseError):
            HtmlParser(strict=True).parse_fragment("</div>")

    def test_unterminated_comment_raises(self):
        with pytest.raises(HtmlParseError):
            HtmlParser(strict=True).parse_fragment("<!-- never ends")

    def test_unterminated_script_raises(self):
        with pytest.raises(HtmlParseError):
            HtmlParser(strict=True).parse_fragment("<script>var x;")

    def test_well_formed_passes(self):
        nodes = HtmlParser(strict=True).parse_fragment("<div><p>ok</p></div>")
        assert len(nodes) == 1


class TestRealisticPage:
    PAGE = """<!DOCTYPE html>
    <html>
    <head><title>Video</title></head>
    <body onload="init()">
      <h1 id="title">Enjoy the Ride</h1>
      <div id="recent_comments"><p>First comment</p></div>
      <div id="nav">
        <a id="prev" onclick="prevPage()">prev</a>
        <a id="next" onclick="nextPage()">next</a>
      </div>
      <script type="text/javascript">var currentPage = 1;</script>
    </body>
    </html>"""

    def test_structure(self):
        doc = parse_document(self.PAGE, url="http://yt.test/watch?v=1")
        assert doc.url == "http://yt.test/watch?v=1"
        assert doc.body.get_attribute("onload") == "init()"
        assert doc.get_element_by_id("title").text_content == "Enjoy the Ride"
        assert doc.get_element_by_id("next").get_attribute("onclick") == "nextPage()"

    def test_script_preserved(self):
        doc = parse_document(self.PAGE)
        (script,) = doc.root.get_elements_by_tag("script")
        assert "currentPage = 1" in script.children[0].data
