"""Unit tests for DOM serialization and the parse/serialize round trip."""

from repro.dom import (
    Element,
    Text,
    escape_attribute,
    escape_text,
    inner_html,
    parse_document,
    parse_fragment,
    serialize,
)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"


class TestSerialize:
    def test_element_with_text(self):
        element = Element("p")
        element.append_child(Text("hello"))
        assert serialize(element) == "<p>hello</p>"

    def test_attributes_sorted(self):
        element = Element("div", {"id": "x", "class": "y"})
        assert serialize(element) == '<div class="y" id="x"></div>'

    def test_void_element(self):
        assert serialize(Element("br")) == "<br/>"

    def test_text_escaped(self):
        element = Element("p")
        element.append_child(Text("1 < 2 & 3"))
        assert serialize(element) == "<p>1 &lt; 2 &amp; 3</p>"

    def test_script_raw(self):
        element = Element("script")
        element.append_child(Text("if (a < b) {}"))
        assert serialize(element) == "<script>if (a < b) {}</script>"

    def test_inner_html_excludes_wrapper(self):
        element = Element("div")
        child = element.append_child(Element("em"))
        child.append_child(Text("x"))
        assert inner_html(element) == "<em>x</em>"

    def test_document_serialization(self):
        doc = parse_document("<html><body><p>x</p></body></html>")
        assert serialize(doc) == "<html><body><p>x</p></body></html>"


class TestRoundTrip:
    CASES = [
        "<div><span>a</span><span>b</span></div>",
        '<a href="http://x/?a=1&amp;b=2">link</a>',
        "<ul><li>1</li><li>2</li><li>3</li></ul>",
        "<p>caf&#233; ol&#233;</p>",
        "<script>var x = 1 < 2;</script>",
    ]

    def test_serialize_parse_serialize_is_stable(self):
        for case in self.CASES:
            first = "".join(serialize(node) for node in parse_fragment(case))
            second = "".join(serialize(node) for node in parse_fragment(first))
            assert first == second, case
