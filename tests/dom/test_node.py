"""Unit tests for the DOM tree model."""

import pytest

from repro.dom import Document, Element, Text
from repro.errors import DomError


def make_doc():
    root = Element("html")
    body = Element("body")
    root.append_child(body)
    return Document(root, url="http://example.test/"), body


class TestTreeManipulation:
    def test_append_child_sets_parent(self):
        parent = Element("div")
        child = Element("span")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_moves_from_old_parent(self):
        old = Element("div")
        new = Element("div")
        child = Element("span")
        old.append_child(child)
        new.append_child(child)
        assert old.children == []
        assert new.children == [child]
        assert child.parent is new

    def test_self_append_rejected(self):
        element = Element("div")
        with pytest.raises(DomError):
            element.append_child(element)

    def test_remove_child(self):
        parent = Element("div")
        child = parent.append_child(Element("span"))
        parent.remove_child(child)
        assert parent.children == []
        assert child.parent is None

    def test_remove_non_child_raises(self):
        with pytest.raises(DomError):
            Element("div").remove_child(Element("span"))

    def test_insert_before(self):
        parent = Element("div")
        second = parent.append_child(Element("b"))
        first = parent.insert_before(Element("a"), second)
        assert parent.children == [first, second]

    def test_insert_before_none_appends(self):
        parent = Element("div")
        first = parent.append_child(Element("a"))
        last = parent.insert_before(Element("b"), None)
        assert parent.children == [first, last]

    def test_insert_before_foreign_reference_raises(self):
        with pytest.raises(DomError):
            Element("div").insert_before(Element("a"), Element("x"))

    def test_replace_children(self):
        parent = Element("div")
        parent.append_child(Text("old"))
        fresh = [Text("new"), Element("em")]
        parent.replace_children(fresh)
        assert parent.children == fresh
        assert all(child.parent is parent for child in fresh)

    def test_detach(self):
        parent = Element("div")
        child = parent.append_child(Element("span"))
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_detach_without_parent_is_noop(self):
        Element("div").detach()  # must not raise


class TestAttributes:
    def test_get_set(self):
        element = Element("div")
        element.set_attribute("Class", "header")
        assert element.get_attribute("class") == "header"
        assert element.get_attribute("CLASS") == "header"

    def test_missing_attribute_is_none(self):
        assert Element("div").get_attribute("id") is None

    def test_has_and_remove(self):
        element = Element("div", {"id": "x"})
        assert element.has_attribute("ID")
        element.remove_attribute("id")
        assert not element.has_attribute("id")

    def test_id_property(self):
        assert Element("div", {"id": "main"}).id == "main"
        assert Element("div").id is None

    def test_tag_is_lowercased(self):
        assert Element("DIV").tag == "div"


class TestTraversal:
    def test_iter_descendants_preorder(self):
        root = Element("div")
        a = root.append_child(Element("a"))
        a_text = a.append_child(Text("link"))
        b = root.append_child(Element("b"))
        assert list(root.iter_descendants()) == [a, a_text, b]

    def test_get_element_by_id_finds_self(self):
        element = Element("div", {"id": "me"})
        assert element.get_element_by_id("me") is element

    def test_get_element_by_id_finds_descendant(self):
        root = Element("div")
        inner = Element("span", {"id": "deep"})
        middle = root.append_child(Element("p"))
        middle.append_child(inner)
        assert root.get_element_by_id("deep") is inner

    def test_get_element_by_id_missing(self):
        assert Element("div").get_element_by_id("nope") is None

    def test_get_elements_by_tag(self):
        root = Element("div")
        root.append_child(Element("span"))
        nested = root.append_child(Element("p"))
        nested.append_child(Element("span"))
        assert len(root.get_elements_by_tag("SPAN")) == 2

    def test_find_all_with_predicate(self):
        root = Element("ul")
        for index in range(3):
            root.append_child(Element("li", {"data-i": str(index)}))
        odd = root.find_all(lambda e: e.get_attribute("data-i") == "1")
        assert len(odd) == 1


class TestTextContent:
    def test_concatenates_descendant_text(self):
        root = Element("div")
        root.append_child(Text("hello "))
        child = root.append_child(Element("b"))
        child.append_child(Text("world"))
        assert root.text_content == "hello world"

    def test_script_content_excluded(self):
        root = Element("div")
        script = root.append_child(Element("script"))
        script.append_child(Text("var x = 1;"))
        root.append_child(Text("visible"))
        assert root.text_content == "visible"


class TestDocument:
    def test_body_and_head(self):
        root = Element("html")
        head = root.append_child(Element("head"))
        body = root.append_child(Element("body"))
        doc = Document(root)
        assert doc.body is body
        assert doc.head is head

    def test_body_missing(self):
        assert Document(Element("html")).body is None

    def test_get_element_by_id(self):
        doc, body = make_doc()
        target = body.append_child(Element("div", {"id": "t"}))
        assert doc.get_element_by_id("t") is target

    def test_owner_document(self):
        doc, body = make_doc()
        child = body.append_child(Element("div"))
        assert child.owner_document is doc

    def test_create_element_is_detached(self):
        doc, _ = make_doc()
        element = doc.create_element("div", {"id": "x"})
        assert element.parent is None
        assert element.id == "x"

    def test_get_elements_by_tag_includes_root(self):
        doc, _ = make_doc()
        assert doc.get_elements_by_tag("html") == [doc.root]
