"""Property-based tests of cross-cutting invariants (hypothesis)."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dom import Element, Text, parse_document, parse_fragment, serialize, state_hash
from repro.js import Interpreter, to_string
from repro.model import ApplicationModel
from repro.search import InvertedFile, pagerank, tokenize
from repro.search.postings import Posting, merge_conjunction, sort_postings

# -- HTML round trip over generated trees ------------------------------------------

tag_names = st.sampled_from(["div", "span", "p", "b", "i", "ul", "li", "a"])
attr_names = st.sampled_from(["id", "class", "title", "href", "data-x"])
text_payload = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs")),
    min_size=1,
    max_size=12,
)
attr_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    max_size=8,
)


@st.composite
def dom_trees(draw, depth=0):
    element = Element(draw(tag_names))
    for name in draw(st.lists(attr_names, max_size=2, unique=True)):
        element.set_attribute(name, draw(attr_values))
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append_child(Text(draw(text_payload)))
            else:
                element.append_child(draw(dom_trees(depth=depth + 1)))
    return element


@given(dom_trees())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_html_serialize_parse_round_trip(tree):
    """parse(serialize(t)) re-serializes identically (canonical form)."""
    html = serialize(tree)
    (reparsed,) = parse_fragment(html)
    assert serialize(reparsed) == html


@given(dom_trees())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_state_hash_stable_under_round_trip(tree):
    html = serialize(tree)
    (reparsed,) = parse_fragment(html)
    assert state_hash(reparsed) == state_hash(tree)


@given(dom_trees())
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_text_content_preserved_by_round_trip(tree):
    (reparsed,) = parse_fragment(serialize(tree))
    assert reparsed.text_content == tree.text_content


# -- JS arithmetic matches Python reference -----------------------------------------

numbers = st.integers(min_value=-1000, max_value=1000)


@given(numbers, numbers)
def test_js_addition_matches_python(a, b):
    interp = Interpreter()
    assert interp.run(f"{a} + {b};") == float(a + b)


@given(numbers, numbers)
def test_js_multiplication_matches_python(a, b):
    interp = Interpreter()
    assert interp.run(f"({a}) * ({b});") == pytest.approx(float(a * b))


@given(numbers, numbers)
def test_js_comparison_matches_python(a, b):
    interp = Interpreter()
    assert interp.run(f"({a}) < ({b});") is (a < b)
    assert interp.run(f"({a}) == ({b});") is (a == b)


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), max_size=15))
def test_js_string_round_trip(payload):
    interp = Interpreter()
    escaped = payload.replace("\\", "\\\\").replace("'", "\\'")
    assert interp.run(f"'{escaped}';") == payload


@given(st.lists(numbers, min_size=1, max_size=8))
def test_js_array_sum_matches_python(values):
    interp = Interpreter()
    literal = ", ".join(str(v) for v in values)
    source = f"""
    var xs = [{literal}];
    var total = 0;
    for (var i = 0; i < xs.length; i++) {{ total += xs[i]; }}
    total;
    """
    assert interp.run(source) == float(sum(values))


@given(numbers)
def test_js_to_string_integers(value):
    assert to_string(float(value)) == str(value)


# -- model invariants over synthetic graphs ------------------------------------------

edges = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=0,
    max_size=15,
)


@given(edges)
def test_model_paths_reach_every_connected_state(edge_list):
    from repro.model import EventAnnotation

    model = ApplicationModel("u")
    states = {}
    for index in range(7):
        state, _ = model.add_state(f"h{index}", f"text {index}")
        states[index] = state
    for source, target in edge_list:
        model.add_transition(
            states[source], states[target], EventAnnotation("#e", "onclick", "f()")
        )
    # BFS reachability reference.
    adjacency = {}
    for source, target in edge_list:
        adjacency.setdefault(source, set()).add(target)
    reachable = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency.get(node, ()):
            if neighbour not in reachable:
                reachable.add(neighbour)
                frontier.append(neighbour)
    from repro.errors import CrawlerError

    for index in range(7):
        if index in reachable:
            path = model.event_path_to(f"s{index}")
            # Path transitions chain from the initial state.
            current = "s0"
            for transition in path:
                assert transition.from_state == current
                current = transition.to_state
            assert current == f"s{index}"
        else:
            with pytest.raises(CrawlerError):
                model.event_path_to(f"s{index}")


@given(edges)
def test_model_round_trip_preserves_structure(edge_list):
    from repro.model import EventAnnotation

    model = ApplicationModel("u")
    states = {}
    for index in range(7):
        state, _ = model.add_state(f"h{index}", f"text {index}")
        states[index] = state
    for source, target in edge_list:
        model.add_transition(
            states[source], states[target], EventAnnotation("#e", "onclick", "f()")
        )
    clone = ApplicationModel.from_dict(model.to_dict())
    assert clone.num_states == model.num_states
    assert clone.num_transitions == model.num_transitions
    for state in model.states():
        assert clone.get_state(state.state_id).content_hash == state.content_hash


# -- pagerank properties ----------------------------------------------------------------

graph_strategy = st.dictionaries(
    st.sampled_from("abcdef"),
    st.lists(st.sampled_from("abcdef"), max_size=4),
    max_size=6,
)


@given(graph_strategy)
def test_pagerank_is_a_distribution(graph):
    ranks = pagerank(graph)
    if not ranks:
        return
    assert all(value >= 0 for value in ranks.values())
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)


@given(graph_strategy)
def test_pagerank_deterministic(graph):
    assert pagerank(graph) == pagerank(graph)


# -- index/tf-idf invariants ---------------------------------------------------------------

state_texts = st.lists(
    st.lists(st.sampled_from(["wow", "dance", "kiss", "low", "air"]), min_size=1, max_size=6)
    .map(" ".join),
    min_size=1,
    max_size=5,
)


@given(state_texts)
def test_index_statistics_consistent(texts):
    model = ApplicationModel("u")
    for index, text in enumerate(texts):
        model.add_state(f"h{index}", text)
    index = InvertedFile().build([model])
    assert index.num_states == len(texts)
    for term in {token for text in texts for token in tokenize(text)}:
        df = index.document_frequency(term)
        assert 1 <= df <= len(texts)
        expected_idf = math.log(len(texts) / df)
        assert index.idf(term) == pytest.approx(expected_idf)
        # tf sums over states equal normalized occurrence counts.
        for posting in index.postings(term):
            tf = index.tf(term, posting.uri, posting.state_id)
            assert tf == pytest.approx(
                posting.count / index.state_length(posting.uri, posting.state_id)
            )


# -- n-way conjunction equals set intersection -----------------------------------------------

posting_keys = st.tuples(st.sampled_from(["u1", "u2"]), st.integers(0, 5))


def _as_list(pairs):
    return sort_postings(
        [Posting(uri, f"s{idx}", positions=(0,)) for uri, idx in set(pairs)]
    )


@given(st.lists(st.lists(posting_keys, max_size=10), min_size=1, max_size=4))
def test_nway_merge_matches_set_intersection(groups):
    lists = [_as_list(pairs) for pairs in groups]
    merged = {
        (g[0].uri, g[0].state_id) for g in merge_conjunction(lists)
    }
    sets = [{(p.uri, p.state_id) for p in plist} for plist in lists]
    expected = set.intersection(*sets) if sets else set()
    assert merged == expected
