"""Unit tests for the JavaScript parser."""

import pytest

from repro.errors import JsSyntaxError
from repro.js import ast as js_ast
from repro.js import parse_expression, parse_program


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = parse_expression("1 + 2 * 3")
        assert isinstance(node, js_ast.BinaryOp)
        assert node.operator == "+"
        assert isinstance(node.right, js_ast.BinaryOp)
        assert node.right.operator == "*"

    def test_parentheses_override(self):
        node = parse_expression("(1 + 2) * 3")
        assert node.operator == "*"
        assert isinstance(node.left, js_ast.BinaryOp)

    def test_left_associativity(self):
        node = parse_expression("10 - 4 - 3")
        assert node.operator == "-"
        assert isinstance(node.left, js_ast.BinaryOp)
        assert node.left.operator == "-"

    def test_comparison_precedence(self):
        node = parse_expression("a + 1 < b * 2")
        assert node.operator == "<"

    def test_logical_precedence(self):
        node = parse_expression("a && b || c")
        assert isinstance(node, js_ast.LogicalOp)
        assert node.operator == "||"
        assert node.left.operator == "&&"

    def test_ternary(self):
        node = parse_expression("a ? b : c")
        assert isinstance(node, js_ast.Conditional)

    def test_assignment_chains_right(self):
        node = parse_expression("a = b = 1")
        assert isinstance(node, js_ast.Assignment)
        assert isinstance(node.value, js_ast.Assignment)

    def test_compound_assignment(self):
        node = parse_expression("x += 2")
        assert node.operator == "+="

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(JsSyntaxError):
            parse_expression("1 = 2")

    def test_member_chain(self):
        node = parse_expression("a.b.c")
        assert isinstance(node, js_ast.Member)
        assert node.property == "c"
        assert isinstance(node.obj, js_ast.Member)

    def test_index(self):
        node = parse_expression("a[0]")
        assert isinstance(node, js_ast.Index)

    def test_call_with_arguments(self):
        node = parse_expression("f(1, 'x', g())")
        assert isinstance(node, js_ast.Call)
        assert len(node.arguments) == 3

    def test_method_call(self):
        node = parse_expression("obj.method(1)")
        assert isinstance(node, js_ast.Call)
        assert isinstance(node.callee, js_ast.Member)

    def test_new_with_arguments(self):
        node = parse_expression("new XMLHttpRequest()")
        assert isinstance(node, js_ast.New)
        assert isinstance(node.callee, js_ast.Identifier)

    def test_new_then_method(self):
        node = parse_expression("new Thing().run()")
        assert isinstance(node, js_ast.Call)
        assert isinstance(node.callee.obj, js_ast.New)

    def test_unary_operators(self):
        assert parse_expression("-x").operator == "-"
        assert parse_expression("!x").operator == "!"
        assert parse_expression("typeof x").operator == "typeof"

    def test_update_prefix_and_postfix(self):
        prefix = parse_expression("++i")
        postfix = parse_expression("i++")
        assert prefix.prefix is True
        assert postfix.prefix is False

    def test_update_target_must_be_reference(self):
        with pytest.raises(JsSyntaxError):
            parse_expression("5++")

    def test_array_literal(self):
        node = parse_expression("[1, 2, 3]")
        assert isinstance(node, js_ast.ArrayLiteral)
        assert len(node.elements) == 3

    def test_object_literal(self):
        node = parse_expression("{a: 1, 'b': 2}")
        assert isinstance(node, js_ast.ObjectLiteral)
        assert [key for key, _ in node.properties] == ["a", "b"]

    def test_function_expression(self):
        node = parse_expression("function (a, b) { return a; }")
        assert isinstance(node, js_ast.FunctionExpression)
        assert node.params == ["a", "b"]

    def test_string_and_number_literals(self):
        assert parse_expression("'hi'").value == "hi"
        assert parse_expression("0x10").value == 16.0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(JsSyntaxError):
            parse_expression("1 2")


class TestStatements:
    def test_var_single(self):
        (stmt,) = parse_program("var x = 1;").body
        assert isinstance(stmt, js_ast.VarDeclaration)
        assert stmt.declarations[0][0] == "x"

    def test_var_multiple(self):
        (stmt,) = parse_program("var a = 1, b, c = 3;").body
        names = [name for name, _ in stmt.declarations]
        assert names == ["a", "b", "c"]
        assert stmt.declarations[1][1] is None

    def test_function_declaration(self):
        (stmt,) = parse_program("function f(x) { return x; }").body
        assert isinstance(stmt, js_ast.FunctionDeclaration)
        assert stmt.name == "f"

    def test_if_else(self):
        (stmt,) = parse_program("if (a) { b(); } else { c(); }").body
        assert isinstance(stmt, js_ast.IfStatement)
        assert stmt.alternate is not None

    def test_if_without_braces(self):
        (stmt,) = parse_program("if (a) b();").body
        assert isinstance(stmt.consequent, js_ast.ExpressionStatement)

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_program("if (a) if (b) c(); else d();").body
        assert stmt.alternate is None
        assert stmt.consequent.alternate is not None

    def test_while(self):
        (stmt,) = parse_program("while (x < 3) { x++; }").body
        assert isinstance(stmt, js_ast.WhileStatement)

    def test_classic_for(self):
        (stmt,) = parse_program("for (var i = 0; i < 5; i++) { f(i); }").body
        assert isinstance(stmt, js_ast.ForStatement)
        assert stmt.init is not None
        assert stmt.update is not None

    def test_for_with_empty_clauses(self):
        (stmt,) = parse_program("for (;;) { break; }").body
        assert stmt.init is None and stmt.test is None and stmt.update is None

    def test_for_in(self):
        (stmt,) = parse_program("for (var k in obj) { f(k); }").body
        assert isinstance(stmt, js_ast.ForInStatement)
        assert stmt.declare is True
        assert stmt.variable == "k"

    def test_for_in_without_var(self):
        (stmt,) = parse_program("for (k in obj) { f(k); }").body
        assert stmt.declare is False

    def test_return_without_value(self):
        (stmt,) = parse_program("function f() { return; }").body
        assert stmt.body.body[0].argument is None

    def test_break_continue(self):
        program = parse_program("while (1) { break; } while (1) { continue; }")
        assert isinstance(program.body[0].body.body[0], js_ast.BreakStatement)
        assert isinstance(program.body[1].body.body[0], js_ast.ContinueStatement)

    def test_empty_statement(self):
        (stmt,) = parse_program(";").body
        assert isinstance(stmt, js_ast.EmptyStatement)

    def test_missing_semicolon_before_statement_rejected(self):
        with pytest.raises(JsSyntaxError):
            parse_program("var a = 1 var b = 2;")

    def test_semicolon_optional_at_block_end(self):
        (stmt,) = parse_program("function f() { return 1 }").body
        assert stmt.body.body[0].argument.value == 1.0

    def test_unterminated_block(self):
        with pytest.raises(JsSyntaxError):
            parse_program("function f() { var x = 1;")


class TestRealisticScript:
    YOUTUBE_LIKE = """
    var currentPage = 1;
    function showLoading(div_id) { }
    function getUrl(url, async) {
        var xmlHttpReq = new XMLHttpRequest();
        xmlHttpReq.open("GET", url, async);
        xmlHttpReq.send(null);
        return xmlHttpReq.responseText;
    }
    function getUrlXMLResponseAndFillDiv(url, div_id) {
        var response = getUrl(url, true);
        var div = document.getElementById(div_id);
        div.innerHTML = response;
    }
    function nextPage() {
        currentPage = currentPage + 1;
        showLoading('recent_comments');
        getUrlXMLResponseAndFillDiv('/comments?p=' + currentPage, 'recent_comments');
        urchinTracker('/next');
    }
    """

    def test_parses_cleanly(self):
        program = parse_program(self.YOUTUBE_LIKE)
        declared = [
            stmt.name
            for stmt in program.body
            if isinstance(stmt, js_ast.FunctionDeclaration)
        ]
        assert declared == [
            "showLoading",
            "getUrl",
            "getUrlXMLResponseAndFillDiv",
            "nextPage",
        ]
