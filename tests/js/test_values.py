"""Unit tests for JS value semantics and conversions."""

import math

import pytest

from repro.errors import JsTypeError
from repro.js import (
    JSArray,
    JSObject,
    NativeFunction,
    UNDEFINED,
    is_callable,
    is_truthy,
    to_number,
    to_string,
    type_of,
)
from repro.js.values import HostConstructor, HostObject, JSFunction


class TestUndefined:
    def test_singleton(self):
        from repro.js.values import _Undefined

        assert _Undefined() is UNDEFINED

    def test_falsy(self):
        assert not UNDEFINED
        assert repr(UNDEFINED) == "undefined"


class TestTruthiness:
    @pytest.mark.parametrize(
        "value", [UNDEFINED, None, False, 0, 0.0, "", float("nan")]
    )
    def test_falsy_values(self, value):
        assert is_truthy(value) is False

    @pytest.mark.parametrize(
        "value", [True, 1, -1, 0.5, "x", "0", JSObject(), JSArray()]
    )
    def test_truthy_values(self, value):
        assert is_truthy(value) is True


class TestToNumber:
    def test_booleans(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_null_and_undefined(self):
        assert to_number(None) == 0.0
        assert math.isnan(to_number(UNDEFINED))

    def test_strings(self):
        assert to_number("42") == 42.0
        assert to_number("  3.5  ") == 3.5
        assert to_number("") == 0.0
        assert to_number("0x10") == 16.0
        assert math.isnan(to_number("abc"))

    def test_objects_are_nan(self):
        assert math.isnan(to_number(JSObject()))


class TestToString:
    def test_primitives(self):
        assert to_string(UNDEFINED) == "undefined"
        assert to_string(None) == "null"
        assert to_string(True) == "true"
        assert to_string(False) == "false"

    def test_numbers(self):
        assert to_string(42.0) == "42"
        assert to_string(2.5) == "2.5"
        assert to_string(-0.0) == "0"
        assert to_string(float("nan")) == "NaN"
        assert to_string(float("inf")) == "Infinity"
        assert to_string(float("-inf")) == "-Infinity"

    def test_array_joins_with_commas(self):
        assert to_string(JSArray([1.0, "a", None])) == "1,a,null"

    def test_object(self):
        assert to_string(JSObject()) == "[object Object]"

    def test_functions(self):
        native = NativeFunction("f", lambda i, t, a: None)
        assert "function f" in to_string(native)

    def test_host_object(self):
        class Custom(HostObject):
            host_class = "Widget"

        assert to_string(Custom()) == "[object Widget]"


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"),
            (None, "object"),
            (True, "boolean"),
            (1.5, "number"),
            ("x", "string"),
            (JSObject(), "object"),
            (JSArray(), "object"),
            (NativeFunction("f", lambda i, t, a: None), "function"),
            (HostConstructor("C", lambda i, a: None), "function"),
        ],
    )
    def test_typeof(self, value, expected):
        assert type_of(value) == expected


class TestJSObject:
    def test_get_set_delete(self):
        obj = JSObject()
        assert obj.get("missing") is UNDEFINED
        obj.set("k", 1.0)
        assert obj.get("k") == 1.0
        assert obj.delete("k") is True
        assert obj.delete("k") is False

    def test_keys_in_insertion_order(self):
        obj = JSObject()
        obj.set("b", 1)
        obj.set("a", 2)
        assert obj.keys() == ["b", "a"]


class TestJSArray:
    def test_index_semantics(self):
        array = JSArray([1.0, 2.0])
        assert array.get_index(0) == 1.0
        assert array.get_index(5) is UNDEFINED
        array.set_index(4, "x")
        assert array.length == 5
        assert array.get_index(3) is UNDEFINED

    def test_negative_index_rejected(self):
        with pytest.raises(JsTypeError):
            JSArray().set_index(-1, 0)


class TestCallability:
    def test_is_callable(self):
        from repro.js import parse_program
        from repro.js.environment import Environment

        assert is_callable(NativeFunction("f", lambda i, t, a: None))
        assert is_callable(HostConstructor("C", lambda i, a: None))
        body = parse_program("function f() {}").body[0].body
        assert is_callable(JSFunction("f", [], body, Environment()))
        assert not is_callable(JSObject())
        assert not is_callable("string")

    def test_host_object_defaults(self):
        host = HostObject()
        assert host.js_get("anything") is UNDEFINED
        assert host.js_keys() == []
        with pytest.raises(JsTypeError):
            host.js_set("x", 1)
