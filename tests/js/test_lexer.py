"""Unit tests for the JavaScript lexer."""

import pytest

from repro.errors import JsSyntaxError
from repro.js import tokenize
from repro.js.tokens import TokenType


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source) if t.type is not TokenType.EOF]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_decimal(self):
        assert kinds("3.14") == [(TokenType.NUMBER, "3.14")]

    def test_leading_dot(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_hex(self):
        assert kinds("0xFF") == [(TokenType.NUMBER, "0xFF")]

    def test_exponent(self):
        assert kinds("1e3 2.5E-2") == [
            (TokenType.NUMBER, "1e3"),
            (TokenType.NUMBER, "2.5E-2"),
        ]

    def test_malformed_exponent(self):
        with pytest.raises(JsSyntaxError):
            tokenize("1e")


class TestStrings:
    def test_double_quoted(self):
        assert kinds('"hello"') == [(TokenType.STRING, "hello")]

    def test_single_quoted(self):
        assert kinds("'hi'") == [(TokenType.STRING, "hi")]

    def test_escapes(self):
        assert kinds(r'"a\nb\tc\\d"') == [(TokenType.STRING, "a\nb\tc\\d")]

    def test_quote_escape(self):
        assert kinds(r'"say \"hi\""') == [(TokenType.STRING, 'say "hi"')]

    def test_unicode_escape(self):
        assert kinds(r'"A"') == [(TokenType.STRING, "A")]

    def test_hex_escape(self):
        assert kinds(r'"\x41"') == [(TokenType.STRING, "A")]

    def test_unterminated(self):
        with pytest.raises(JsSyntaxError):
            tokenize('"never ends')

    def test_newline_in_string(self):
        with pytest.raises(JsSyntaxError):
            tokenize('"a\nb"')


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        assert kinds("getUrl") == [(TokenType.IDENTIFIER, "getUrl")]

    def test_dollar_and_underscore(self):
        assert kinds("$x _y") == [
            (TokenType.IDENTIFIER, "$x"),
            (TokenType.IDENTIFIER, "_y"),
        ]

    def test_keywords(self):
        assert kinds("var function return") == [
            (TokenType.KEYWORD, "var"),
            (TokenType.KEYWORD, "function"),
            (TokenType.KEYWORD, "return"),
        ]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("variable")[0] == (TokenType.IDENTIFIER, "variable")


class TestPunctuatorsAndComments:
    def test_maximal_munch(self):
        assert [v for _, v in kinds("a===b")] == ["a", "===", "b"]
        assert [v for _, v in kinds("a==b")] == ["a", "==", "b"]
        assert [v for _, v in kinds("i++")] == ["i", "++"]

    def test_line_comment(self):
        assert kinds("a // comment\nb") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(JsSyntaxError):
            tokenize("/* forever")

    def test_unexpected_character(self):
        with pytest.raises(JsSyntaxError):
            tokenize("a # b")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF
