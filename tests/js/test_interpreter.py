"""Unit tests for the JavaScript interpreter."""

import math

import pytest

from repro.errors import JsReferenceError, JsTypeError
from repro.js import (
    Interpreter,
    JSArray,
    JSObject,
    JsStepLimitError,
    NativeFunction,
    UNDEFINED,
)


@pytest.fixture
def interp():
    return Interpreter()


def run(interp, source):
    return interp.run(source)


class TestArithmetic:
    def test_numbers(self, interp):
        assert run(interp, "1 + 2 * 3;") == 7.0

    def test_division(self, interp):
        assert run(interp, "7 / 2;") == 3.5

    def test_division_by_zero(self, interp):
        assert run(interp, "1 / 0;") == float("inf")
        assert run(interp, "-1 / 0;") == float("-inf")
        assert math.isnan(run(interp, "0 / 0;"))

    def test_modulo(self, interp):
        assert run(interp, "10 % 3;") == 1.0

    def test_string_concat(self, interp):
        assert run(interp, "'a' + 'b';") == "ab"

    def test_number_string_concat(self, interp):
        assert run(interp, "'page ' + 2;") == "page 2"
        assert run(interp, "1 + '2';") == "12"

    def test_unary(self, interp):
        assert run(interp, "-5;") == -5.0
        assert run(interp, "+'3';") == 3.0
        assert run(interp, "!0;") is True

    def test_string_coercion_in_subtraction(self, interp):
        assert run(interp, "'10' - 3;") == 7.0


class TestComparisons:
    def test_loose_equality_coerces(self, interp):
        assert run(interp, "1 == '1';") is True
        assert run(interp, "0 == false;") is True
        assert run(interp, "null == undefined;") is True

    def test_strict_equality(self, interp):
        assert run(interp, "1 === '1';") is False
        assert run(interp, "1 === 1;") is True
        assert run(interp, "null === undefined;") is False

    def test_relational(self, interp):
        assert run(interp, "2 < 3;") is True
        assert run(interp, "'abc' < 'abd';") is True
        assert run(interp, "5 >= 5;") is True

    def test_nan_comparisons_false(self, interp):
        assert run(interp, "NaN < 1;") is False
        assert run(interp, "NaN == NaN;") is False

    def test_logical_short_circuit(self, interp):
        run(interp, "var called = false; function f() { called = true; return 1; }")
        assert run(interp, "false && f();") is False
        assert interp.global_env.get("called") is False
        assert run(interp, "true || f();") is True
        assert interp.global_env.get("called") is False

    def test_logical_returns_operand(self, interp):
        assert run(interp, "'x' || 'y';") == "x"
        assert run(interp, "0 || 'y';") == "y"
        assert run(interp, "'x' && 'y';") == "y"


class TestVariablesAndScope:
    def test_var_and_assignment(self, interp):
        assert run(interp, "var x = 1; x = x + 2; x;") == 3.0

    def test_compound_assignment(self, interp):
        assert run(interp, "var x = 10; x += 5; x -= 3; x *= 2; x;") == 24.0

    def test_undeclared_read_raises(self, interp):
        with pytest.raises(JsReferenceError):
            run(interp, "missing;")

    def test_implicit_global_on_write(self, interp):
        run(interp, "function f() { leaked = 42; } f();")
        assert interp.global_env.get("leaked") == 42.0

    def test_closures_capture_environment(self, interp):
        result = run(
            interp,
            """
            function counter() {
                var n = 0;
                return function () { n = n + 1; return n; };
            }
            var c = counter();
            c(); c(); c();
            """,
        )
        assert result == 3.0

    def test_closures_are_independent(self, interp):
        result = run(
            interp,
            """
            function counter() {
                var n = 0;
                return function () { n = n + 1; return n; };
            }
            var a = counter(); var b = counter();
            a(); a(); b();
            """,
        )
        assert result == 1.0

    def test_function_hoisting(self, interp):
        assert run(interp, "var y = f(); function f() { return 7; } y;") == 7.0

    def test_update_operators(self, interp):
        assert run(interp, "var i = 1; i++;") == 1.0
        assert run(interp, "var j = 1; ++j;") == 2.0
        assert run(interp, "var k = 5; k--; k;") == 4.0


class TestControlFlow:
    def test_if_else(self, interp):
        assert run(interp, "var x; if (1 < 2) { x = 'a'; } else { x = 'b'; } x;") == "a"

    def test_while_loop(self, interp):
        assert run(interp, "var s = 0; var i = 0; while (i < 5) { s += i; i++; } s;") == 10.0

    def test_for_loop(self, interp):
        assert run(interp, "var s = 0; for (var i = 1; i <= 4; i++) { s += i; } s;") == 10.0

    def test_break(self, interp):
        assert run(interp, "var i = 0; while (true) { i++; if (i == 3) break; } i;") == 3.0

    def test_continue(self, interp):
        source = "var s = 0; for (var i = 0; i < 5; i++) { if (i % 2) continue; s += i; } s;"
        assert run(interp, source) == 6.0

    def test_for_in_over_object(self, interp):
        source = "var o = {a: 1, b: 2}; var keys = []; for (var k in o) { keys.push(k); } keys.join(',');"
        assert run(interp, source) == "a,b"

    def test_ternary(self, interp):
        assert run(interp, "1 < 2 ? 'yes' : 'no';") == "yes"

    def test_step_limit_stops_infinite_loop(self):
        interp = Interpreter(max_steps=10_000)
        with pytest.raises(JsStepLimitError):
            run(interp, "while (true) {}")


class TestFunctions:
    def test_return_value(self, interp):
        assert run(interp, "function add(a, b) { return a + b; } add(2, 3);") == 5.0

    def test_missing_arguments_are_undefined(self, interp):
        assert run(interp, "function f(a, b) { return b; } f(1);") is UNDEFINED

    def test_arguments_object(self, interp):
        assert run(interp, "function f() { return arguments.length; } f(1, 2, 3);") == 3.0

    def test_recursion(self, interp):
        assert run(interp, "function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } fib(10);") == 55.0

    def test_function_expression(self, interp):
        assert run(interp, "var sq = function (x) { return x * x; }; sq(4);") == 16.0

    def test_calling_non_function_raises(self, interp):
        with pytest.raises(JsTypeError):
            run(interp, "var x = 3; x();")

    def test_early_return(self, interp):
        assert run(interp, "function f() { return 1; return 2; } f();") == 1.0

    def test_this_in_method_call(self, interp):
        source = """
        var obj = {name: 'youtube'};
        obj.getName = function () { return this.name; };
        obj.getName();
        """
        assert run(interp, source) == "youtube"

    def test_new_with_js_constructor(self, interp):
        source = """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        p.x + p.y;
        """
        assert run(interp, source) == 7.0


class TestObjectsAndArrays:
    def test_object_literal_access(self, interp):
        assert run(interp, "var o = {a: 1}; o.a;") == 1.0
        assert run(interp, "var o = {a: 1}; o['a'];") == 1.0

    def test_object_set(self, interp):
        assert run(interp, "var o = {}; o.x = 9; o.x;") == 9.0

    def test_missing_property_is_undefined(self, interp):
        assert run(interp, "var o = {}; o.nope;") is UNDEFINED

    def test_member_of_undefined_raises(self, interp):
        with pytest.raises(JsTypeError):
            run(interp, "var u; u.x;")

    def test_delete(self, interp):
        assert run(interp, "var o = {a: 1}; delete o.a; o.a;") is UNDEFINED

    def test_in_operator(self, interp):
        assert run(interp, "var o = {a: 1}; 'a' in o;") is True
        assert run(interp, "var o = {a: 1}; 'b' in o;") is False

    def test_array_basics(self, interp):
        assert run(interp, "var a = [1, 2, 3]; a.length;") == 3.0
        assert run(interp, "var a = [1, 2, 3]; a[1];") == 2.0

    def test_array_out_of_range_is_undefined(self, interp):
        assert run(interp, "var a = [1]; a[10];") is UNDEFINED

    def test_array_push_pop(self, interp):
        assert run(interp, "var a = []; a.push('x'); a.push('y'); a.pop(); a.join('');") == "x"

    def test_array_assignment_grows(self, interp):
        assert run(interp, "var a = []; a[2] = 9; a.length;") == 3.0

    def test_array_index_of(self, interp):
        assert run(interp, "[4, 5, 6].indexOf(5);") == 1.0
        assert run(interp, "[4].indexOf(9);") == -1.0

    def test_array_slice_concat(self, interp):
        assert run(interp, "[1,2,3,4].slice(1, 3).join('-');") == "2-3"
        assert run(interp, "[1].concat([2, 3]).length;") == 3.0

    def test_nested_structures(self, interp):
        assert run(interp, "var o = {list: [{v: 10}]}; o.list[0].v;") == 10.0


class TestStringMethods:
    def test_length(self, interp):
        assert run(interp, "'hello'.length;") == 5.0

    def test_index_of(self, interp):
        assert run(interp, "'comment page'.indexOf('page');") == 8.0

    def test_substring(self, interp):
        assert run(interp, "'abcdef'.substring(1, 3);") == "bc"
        assert run(interp, "'abcdef'.substring(3, 1);") == "bc"

    def test_split(self, interp):
        assert run(interp, "'a,b,c'.split(',').length;") == 3.0

    def test_case(self, interp):
        assert run(interp, "'AbC'.toLowerCase();") == "abc"
        assert run(interp, "'AbC'.toUpperCase();") == "ABC"

    def test_char_at_and_index(self, interp):
        assert run(interp, "'abc'.charAt(1);") == "b"
        assert run(interp, "'abc'[2];") == "c"

    def test_replace_first(self, interp):
        assert run(interp, "'aaa'.replace('a', 'b');") == "baa"


class TestBuiltins:
    def test_parse_int(self, interp):
        assert run(interp, "parseInt('42');") == 42.0
        assert run(interp, "parseInt('12px');") == 12.0
        assert run(interp, "parseInt('-7');") == -7.0
        assert math.isnan(run(interp, "parseInt('x');"))

    def test_parse_float(self, interp):
        assert run(interp, "parseFloat('2.5rem');") == 2.5

    def test_is_nan(self, interp):
        assert run(interp, "isNaN('abc');") is True
        assert run(interp, "isNaN('12');") is False

    def test_string_and_number(self, interp):
        assert run(interp, "String(42);") == "42"
        assert run(interp, "Number('3.5');") == 3.5

    def test_math(self, interp):
        assert run(interp, "Math.floor(2.9);") == 2.0
        assert run(interp, "Math.max(1, 5, 3);") == 5.0
        assert run(interp, "Math.min(4, 2);") == 2.0
        assert run(interp, "Math.abs(-3);") == 3.0

    def test_typeof(self, interp):
        assert run(interp, "typeof 1;") == "number"
        assert run(interp, "typeof 'x';") == "string"
        assert run(interp, "typeof undefined;") == "undefined"
        assert run(interp, "typeof {};") == "object"
        assert run(interp, "typeof parseInt;") == "function"
        assert run(interp, "typeof neverDeclared;") == "undefined"

    def test_encode_uri_component(self, interp):
        assert run(interp, "encodeURIComponent('a b&c');") == "a%20b%26c"


class TestHostIntegration:
    def test_define_global(self, interp):
        interp.define_global("answer", 42.0)
        assert run(interp, "answer;") == 42.0

    def test_native_function(self, interp):
        calls = []

        def record(interpreter, this, args):
            calls.append(list(args))
            return "ok"

        interp.define_global("record", NativeFunction("record", record))
        assert run(interp, "record(1, 'two');") == "ok"
        assert calls == [[1.0, "two"]]

    def test_call_function_from_python(self, interp):
        run(interp, "function double(x) { return x * 2; }")
        double = interp.global_env.get("double")
        assert interp.call_function(double, [21.0]) == 42.0

    def test_js_object_visible_from_python(self, interp):
        run(interp, "var config = {depth: 3};")
        config = interp.global_env.get("config")
        assert isinstance(config, JSObject)
        assert config.get("depth") == 3.0

    def test_js_array_visible_from_python(self, interp):
        run(interp, "var xs = [1, 2];")
        xs = interp.global_env.get("xs")
        assert isinstance(xs, JSArray)
        assert xs.elements == [1.0, 2.0]

    def test_step_counting_increases(self, interp):
        before = interp.steps
        run(interp, "var x = 0; for (var i = 0; i < 10; i++) { x += i; }")
        assert interp.steps > before
