"""Tests for the extended JS standard library (arrays, strings, JSON)."""

import math

import pytest

from repro.errors import JsRuntimeError, JsTypeError
from repro.js import Interpreter


@pytest.fixture
def interp():
    return Interpreter()


class TestArrayMethods:
    def test_shift_unshift(self, interp):
        assert interp.run("var a = [1, 2, 3]; a.shift();") == 1.0
        assert interp.run("var b = [2]; b.unshift(0, 1); b.join(',');") == "0,1,2"

    def test_shift_empty(self, interp):
        from repro.js import UNDEFINED

        assert interp.run("[].shift();") is UNDEFINED

    def test_reverse_in_place(self, interp):
        assert interp.run("var a = [1, 2, 3]; a.reverse(); a.join(',');") == "3,2,1"

    def test_sort_default_lexicographic(self, interp):
        assert interp.run("[10, 2, 1].sort().join(',');") == "1,10,2"

    def test_sort_with_comparator(self, interp):
        source = "[10, 2, 1].sort(function (a, b) { return a - b; }).join(',');"
        assert interp.run(source) == "1,2,10"

    def test_map(self, interp):
        assert interp.run("[1, 2, 3].map(function (x) { return x * 2; }).join(',');") == "2,4,6"

    def test_map_gets_index(self, interp):
        assert interp.run("['a', 'b'].map(function (x, i) { return i; }).join(',');") == "0,1"

    def test_filter(self, interp):
        assert interp.run("[1, 2, 3, 4].filter(function (x) { return x % 2 == 0; }).join(',');") == "2,4"

    def test_for_each(self, interp):
        source = "var s = 0; [1, 2, 3].forEach(function (x) { s += x; }); s;"
        assert interp.run(source) == 6.0

    def test_map_requires_function(self, interp):
        with pytest.raises(JsTypeError):
            interp.run("[1].map(42);")


class TestStringMethods:
    def test_char_code_at(self, interp):
        assert interp.run("'A'.charCodeAt(0);") == 65.0
        assert math.isnan(interp.run("'A'.charCodeAt(5);"))

    def test_starts_ends_includes(self, interp):
        assert interp.run("'comment page'.startsWith('comment');") is True
        assert interp.run("'comment page'.endsWith('page');") is True
        assert interp.run("'comment page'.includes('ment pa');") is True
        assert interp.run("'comment page'.includes('xyz');") is False

    def test_repeat(self, interp):
        assert interp.run("'ab'.repeat(3);") == "ababab"
        assert interp.run("'ab'.repeat(0);") == ""


class TestJson:
    def test_parse_object(self, interp):
        assert interp.run("JSON.parse('{\"a\": 1, \"b\": [true, null]}').a;") == 1.0
        assert interp.run("JSON.parse('{\"b\": [true, null]}').b[0];") is True
        assert interp.run("JSON.parse('{\"b\": [true, null]}').b[1];") is None

    def test_parse_array(self, interp):
        assert interp.run("JSON.parse('[1, 2, 3]').length;") == 3.0

    def test_parse_scalar(self, interp):
        assert interp.run("JSON.parse('42');") == 42.0
        assert interp.run("JSON.parse('\"x\"');") == "x"

    def test_parse_invalid_raises(self, interp):
        with pytest.raises(JsRuntimeError):
            interp.run("JSON.parse('{nope');")

    def test_parse_error_catchable(self, interp):
        source = """
        var ok = false;
        try { JSON.parse('{bad'); } catch (e) { ok = true; }
        ok;
        """
        assert interp.run(source) is True

    def test_stringify_round_trip(self, interp):
        source = """
        var obj = {name: 'video', tags: ['a', 'b'], views: 12};
        JSON.parse(JSON.stringify(obj)).tags[1];
        """
        assert interp.run(source) == "b"

    def test_stringify_integers_clean(self, interp):
        assert interp.run("JSON.stringify([1, 2]);") == "[1, 2]"

    def test_json_powered_page_script(self, interp):
        """The realistic use: a fragment endpoint returning JSON."""
        from repro.js import NativeFunction

        interp.define_global(
            "fakeFetch",
            NativeFunction(
                "fakeFetch",
                lambda i, t, a: '{"comments": ["first", "second"], "page": 2}',
            ),
        )
        source = """
        var data = JSON.parse(fakeFetch());
        data.comments.map(function (c) { return c.toUpperCase(); }).join('|')
            + '#' + data.page;
        """
        assert interp.run(source) == "FIRST|SECOND#2"
