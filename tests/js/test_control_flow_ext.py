"""Tests for the extended control flow: do-while, switch, throw/try."""

import pytest

from repro.errors import JsSyntaxError
from repro.js import Interpreter, JsThrownValue


@pytest.fixture
def interp():
    return Interpreter()


class TestDoWhile:
    def test_runs_body_at_least_once(self, interp):
        assert interp.run("var n = 0; do { n++; } while (false); n;") == 1.0

    def test_loops_until_false(self, interp):
        assert interp.run("var n = 0; do { n++; } while (n < 5); n;") == 5.0

    def test_break(self, interp):
        assert interp.run("var n = 0; do { n++; if (n == 3) break; } while (true); n;") == 3.0

    def test_continue_reevaluates_test(self, interp):
        source = """
        var n = 0; var s = 0;
        do { n++; if (n % 2) continue; s += n; } while (n < 6);
        s;
        """
        assert interp.run(source) == 12.0  # 2 + 4 + 6


class TestSwitch:
    def test_matching_case(self, interp):
        source = """
        function f(x) {
            switch (x) {
                case 1: return 'one';
                case 2: return 'two';
                default: return 'many';
            }
        }
        f(2);
        """
        assert interp.run(source) == "two"

    def test_default_clause(self, interp):
        source = """
        function f(x) {
            switch (x) { case 1: return 'one'; default: return 'other'; }
        }
        f(42);
        """
        assert interp.run(source) == "other"

    def test_fall_through(self, interp):
        source = """
        var log = [];
        switch (1) {
            case 1: log.push('a');
            case 2: log.push('b'); break;
            case 3: log.push('c');
        }
        log.join('');
        """
        assert interp.run(source) == "ab"

    def test_break_stops_fall_through(self, interp):
        source = """
        var log = [];
        switch (1) { case 1: log.push('a'); break; case 2: log.push('b'); }
        log.join('');
        """
        assert interp.run(source) == "a"

    def test_strict_matching(self, interp):
        source = """
        var hit = 'none';
        switch ('1') { case 1: hit = 'number'; break; default: hit = 'default'; }
        hit;
        """
        assert interp.run(source) == "default"

    def test_default_fall_through(self, interp):
        source = """
        var log = [];
        switch (9) {
            case 1: log.push('a'); break;
            default: log.push('d');
            case 2: log.push('b');
        }
        log.join('');
        """
        assert interp.run(source) == "db"

    def test_no_match_no_default(self, interp):
        assert interp.run("switch (5) { case 1: var x = 1; } 'done';") == "done"

    def test_duplicate_default_rejected(self, interp):
        with pytest.raises(JsSyntaxError):
            interp.run("switch (1) { default: break; default: break; }")


class TestThrowTryCatch:
    def test_throw_caught(self, interp):
        source = """
        var msg = '';
        try { throw 'boom'; } catch (e) { msg = e; }
        msg;
        """
        assert interp.run(source) == "boom"

    def test_uncaught_throw_raises(self, interp):
        with pytest.raises(JsThrownValue) as info:
            interp.run("throw 'unhandled';")
        assert info.value.value == "unhandled"

    def test_throw_object(self, interp):
        source = """
        var code = 0;
        try { throw {code: 42}; } catch (e) { code = e.code; }
        code;
        """
        assert interp.run(source) == 42.0

    def test_finally_always_runs(self, interp):
        source = """
        var log = [];
        try { log.push('t'); throw 'x'; } catch (e) { log.push('c'); }
        finally { log.push('f'); }
        log.join('');
        """
        assert interp.run(source) == "tcf"

    def test_finally_without_catch(self, interp):
        source = """
        var ran = false;
        function f() {
            try { throw 'x'; } finally { ran = true; }
        }
        var caught = false;
        try { f(); } catch (e) { caught = true; }
        [ran, caught].join(',');
        """
        assert interp.run(source) == "true,true"

    def test_runtime_errors_catchable(self, interp):
        source = """
        var saw = false;
        try { undefinedFunctionCall(); } catch (e) { saw = true; }
        saw;
        """
        assert interp.run(source) is True

    def test_type_errors_catchable(self, interp):
        source = """
        var saw = false;
        try { var u; u.property; } catch (e) { saw = true; }
        saw;
        """
        assert interp.run(source) is True

    def test_try_without_handler_rejected(self, interp):
        with pytest.raises(JsSyntaxError):
            interp.run("try { var x = 1; }")

    def test_throw_propagates_through_calls(self, interp):
        source = """
        function deep() { throw 'from-deep'; }
        function middle() { deep(); }
        var got = '';
        try { middle(); } catch (e) { got = e; }
        got;
        """
        assert interp.run(source) == "from-deep"

    def test_step_limit_not_catchable(self):
        from repro.js import JsStepLimitError

        interp = Interpreter(max_steps=5_000)
        with pytest.raises(JsStepLimitError):
            interp.run("try { while (true) {} } catch (e) {}")
