"""Tests for the call stack and the Rhino-style debugger interface (§4.4)."""

import pytest

from repro.errors import JsTypeError
from repro.js import Debugger, Intercept, Interpreter, NativeFunction, StackFrame


@pytest.fixture
def interp():
    return Interpreter()


class RecordingDebugger(Debugger):
    def __init__(self):
        self.entered = []
        self.exited = []
        self.lines = []
        self.exceptions = []

    def on_enter(self, frame):
        self.entered.append((frame.function_name, list(frame.arguments)))
        return None

    def on_exit(self, frame, result):
        self.exited.append((frame.function_name, result))

    def on_line(self, line):
        self.lines.append(line)

    def on_exception(self, frame, error):
        self.exceptions.append((frame.function_name if frame else None, error))


class TestCallStack:
    def test_stack_grows_and_shrinks(self, interp):
        depths = []

        def probe(interpreter, this, args):
            depths.append(interpreter.call_stack.depth)
            return None

        interp.define_global("probe", NativeFunction("probe", probe))
        interp.run(
            """
            function inner() { probe(); }
            function outer() { inner(); }
            outer();
            """
        )
        # probe itself is on the stack: outer > inner > probe.
        assert depths == [3]
        assert interp.call_stack.depth == 0

    def test_top_frame_has_name_and_arguments(self, interp):
        captured = {}

        def probe(interpreter, this, args):
            frames = interpreter.call_stack.frames()
            captured["chain"] = [frame.function_name for frame in frames]
            captured["args"] = frames[-2].arguments
            return None

        interp.define_global("probe", NativeFunction("probe", probe))
        interp.run(
            """
            function getUrl(url, async) { probe(); }
            getUrl('/comments?p=2', true);
            """
        )
        assert captured["chain"] == ["getUrl", "probe"]
        assert captured["args"] == ["/comments?p=2", True]

    def test_stack_frame_signature_format(self):
        frame = StackFrame("getUrl", ["/comments?p=2", True])
        assert frame.signature() == "getUrl(/comments?p=2, true)"

    def test_stack_empty_after_error(self, interp):
        with pytest.raises(JsTypeError):
            interp.run("function f() { var u; u.x; } f();")
        assert interp.call_stack.depth == 0


class TestDebuggerHooks:
    def test_on_enter_and_exit_for_each_call(self, interp):
        debugger = RecordingDebugger()
        interp.attach_debugger(debugger)
        interp.run("function f(a) { return a + 1; } f(1); f(2);")
        assert debugger.entered == [("f", [1.0]), ("f", [2.0])]
        assert debugger.exited == [("f", 2.0), ("f", 3.0)]

    def test_nested_calls_seen_in_order(self, interp):
        debugger = RecordingDebugger()
        interp.attach_debugger(debugger)
        interp.run(
            """
            function inner() { return 1; }
            function outer() { return inner(); }
            outer();
            """
        )
        assert [name for name, _ in debugger.entered] == ["outer", "inner"]
        assert [name for name, _ in debugger.exited] == ["inner", "outer"]

    def test_on_line_notifications(self, interp):
        debugger = RecordingDebugger()
        interp.attach_debugger(debugger)
        interp.run("var a = 1;\nvar b = 2;\nvar c = 3;")
        assert debugger.lines == [1, 2, 3]

    def test_on_exception(self, interp):
        debugger = RecordingDebugger()
        interp.attach_debugger(debugger)
        with pytest.raises(JsTypeError):
            interp.run("function bad() { var u; return u.x; } bad();")
        assert debugger.exceptions
        assert debugger.exceptions[0][0] == "bad"

    def test_detach(self, interp):
        debugger = RecordingDebugger()
        interp.attach_debugger(debugger)
        interp.attach_debugger(None)
        interp.run("function f() {} f();")
        assert debugger.entered == []


class TestInterception:
    """The hot-node mechanism: on_enter may skip the body entirely."""

    class CachingDebugger(Debugger):
        def __init__(self, cache):
            self.cache = cache
            self.intercepted = []

        def on_enter(self, frame):
            key = frame.signature()
            if key in self.cache:
                self.intercepted.append(key)
                return Intercept(self.cache[key])
            return None

    def test_intercepted_call_skips_body(self, interp):
        effects = []

        def side_effect(interpreter, this, args):
            effects.append(args[0])
            return None

        interp.define_global("sideEffect", NativeFunction("sideEffect", side_effect))
        interp.run(
            """
            function fetchPage(p) {
                sideEffect(p);
                return 'content-' + p;
            }
            """
        )
        debugger = self.CachingDebugger({"fetchPage(2)": "cached-content"})
        interp.attach_debugger(debugger)
        fetch = interp.global_env.get("fetchPage")
        assert interp.call_function(fetch, [2.0]) == "cached-content"
        assert interp.call_function(fetch, [3.0]) == "content-3"
        assert effects == [3.0]  # only the non-cached call ran the body
        assert debugger.intercepted == ["fetchPage(2)"]

    def test_interception_keyed_by_arguments(self, interp):
        interp.run("function f(x) { return x * 10; }")
        debugger = self.CachingDebugger({"f(1)": 999.0})
        interp.attach_debugger(debugger)
        f = interp.global_env.get("f")
        assert interp.call_function(f, [1.0]) == 999.0
        assert interp.call_function(f, [2.0]) == 20.0
