"""End-to-end tests of the CLI pipeline (the chapter-8 infrastructure)."""

import json

import pytest

from repro.cli import build_site, main
from repro.sites import SyntheticWebmail, SyntheticYouTube


class TestBuildSite:
    def test_simtube_defaults(self):
        site = build_site("simtube")
        assert isinstance(site, SyntheticYouTube)
        assert site.config.num_videos == 100

    def test_simtube_with_params(self):
        site = build_site("simtube:12:3")
        assert site.config.num_videos == 12
        assert site.config.seed == 3

    def test_webmail(self):
        assert isinstance(build_site("webmail"), SyntheticWebmail)

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            build_site("geocities")


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run the full CLI pipeline once into a temp directory."""
    root = tmp_path_factory.mktemp("cli")
    pre = root / "pre"
    crawl_root = root / "crawl"
    index_file = root / "index.json"
    site = "simtube:12:3"
    assert main(["precrawl", "--site", site, "--out", str(pre), "--max-pages", "12"]) == 0
    assert main(["partition", "--precrawl", str(pre), "--size", "4", "--out", str(crawl_root)]) == 0
    assert main(["crawl", "--site", site, "--root", str(crawl_root)]) == 0
    assert main(["index", "--root", str(crawl_root), "--out", str(index_file)]) == 0
    return {"pre": pre, "crawl_root": crawl_root, "index": index_file, "site": site}


class TestPipeline:
    def test_precrawl_outputs(self, pipeline):
        urls = json.loads((pipeline["pre"] / "urls.json").read_text())
        assert len(urls) == 12
        pageranks = json.loads((pipeline["pre"] / "pagerank.json").read_text())
        assert len(pageranks) == 12

    def test_partitions_created(self, pipeline):
        names = sorted(p.name for p in pipeline["crawl_root"].iterdir())
        assert names == ["1", "2", "3"]
        assert (pipeline["crawl_root"] / "1" / "URLsToCrawl.txt").exists()

    def test_models_stored(self, pipeline):
        models = json.loads(
            (pipeline["crawl_root"] / "1" / "models.json").read_text()
        )
        assert len(models) == 4

    def test_index_built(self, pipeline):
        payload = json.loads(pipeline["index"].read_text())
        assert payload["postings"]
        assert payload["state_lengths"]

    def test_search(self, pipeline, capsys):
        assert main(["search", "--index", str(pipeline["index"]), "--query", "wow"]) == 0
        out = capsys.readouterr().out
        assert "result(s) for 'wow'" in out

    def test_search_with_pagerank(self, pipeline, capsys):
        assert main([
            "search",
            "--index", str(pipeline["index"]),
            "--query", "wow",
            "--pagerank", str(pipeline["pre"] / "pagerank.json"),
            "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "simtube.test" in out

    def test_stats(self, pipeline, capsys):
        assert main(["stats", "--root", str(pipeline["crawl_root"])]) == 0
        out = capsys.readouterr().out
        assert "pages:       12" in out

    def test_traditional_crawl(self, pipeline, tmp_path, capsys):
        crawl_root = tmp_path / "trad"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "6", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--traditional",
        ]) == 0
        out = capsys.readouterr().out
        assert "traditional crawl done: 12 pages, 12 states" in out

    def test_dot_export(self, pipeline, capsys):
        url = "http://simtube.test/watch?v=v00000"
        assert main(["dot", "--root", str(pipeline["crawl_root"]), "--url", url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph app_model {")
        assert "s0 [shape=doublecircle" in out

    def test_dot_unknown_url(self, pipeline, capsys):
        assert main([
            "dot", "--root", str(pipeline["crawl_root"]), "--url", "http://nope/",
        ]) == 1

    def test_max_state_index_option(self, pipeline, tmp_path):
        out_file = tmp_path / "trad_index.json"
        assert main([
            "index", "--root", str(pipeline["crawl_root"]),
            "--out", str(out_file), "--max-state-index", "1",
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["max_state_index"] == 1
        assert len(payload["state_lengths"]) == 12  # one state per page


class TestFaultInjectionFlags:
    def test_crawl_with_faults_and_retries_completes(self, pipeline, tmp_path, capsys):
        crawl_root = tmp_path / "faulty"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "4", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--fault-rate", "0.2", "--retries", "3", "--fault-seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "AJAX crawl done: 12 pages" in out
        assert "fault injection:" in out
        assert "seed 5" in out

    def test_zero_fault_rate_skips_injection_banner(self, pipeline, tmp_path, capsys):
        crawl_root = tmp_path / "clean"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "4", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--retries", "3",
        ]) == 0
        assert "fault injection:" not in capsys.readouterr().out

    def test_dead_page_listed_in_output(self, pipeline, tmp_path, capsys):
        crawl_root = tmp_path / "dead"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "4", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--fault-rate", "1.0", "--fault-pattern", r"watch\?v=v00000",
            "--retries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "failed: http://simtube.test/watch?v=v00000" in out
        assert "after 2 attempt(s)" in out
        assert "11 pages" in out


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """One spanned+profiled webmail crawl shared by the observability
    tests (webmail stays under the state cap, so the doctor runs clean)."""
    root = tmp_path_factory.mktemp("profiled")
    pre = root / "pre"
    crawl_root = root / "crawl"
    trace = root / "trace.jsonl"
    metrics = root / "metrics.json"
    assert main(["precrawl", "--site", "webmail", "--out", str(pre),
                 "--max-pages", "5"]) == 0
    assert main([
        "partition", "--precrawl", str(pre),
        "--size", "1", "--out", str(crawl_root),
    ]) == 0
    assert main([
        "crawl", "--site", "webmail", "--root", str(crawl_root),
        "--trace", str(trace), "--metrics", str(metrics), "--profile",
    ]) == 0
    return {"trace": trace, "metrics": metrics, "root": root}


class TestObservabilityCommands:
    def test_profile_prints_table_and_doctor(self, profiled, capsys):
        # The fixture already ran --profile; re-run to capture its output.
        assert main([
            "crawl", "--site", "webmail", "--root",
            str(profiled["root"] / "crawl"), "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "component" in out
        assert "fire_event" in out
        assert "doctor:" in out

    def test_trace_contains_span_events(self, profiled):
        text = profiled["trace"].read_text(encoding="utf-8")
        assert '"kind":"span_start"' in text
        assert '"kind":"span_end"' in text

    def test_trace_spans_renders_tree(self, profiled, capsys):
        assert main(["trace", "spans", str(profiled["trace"])]) == 0
        out = capsys.readouterr().out
        assert "partition:1" in out
        assert "incl=" in out

    def test_trace_spans_max_depth(self, profiled, capsys):
        assert main([
            "trace", "spans", str(profiled["trace"]), "--max-depth", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "partition:1" in out
        assert "page:" not in out

    def test_trace_spans_without_spans_fails(self, pipeline, tmp_path, capsys):
        trace = tmp_path / "plain.jsonl"
        crawl_root = tmp_path / "plain"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "6", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--trace", str(trace),
        ]) == 0
        assert main(["trace", "spans", str(trace)]) == 1
        assert "no spans" in capsys.readouterr().out

    def test_trace_flame_folded(self, profiled, capsys):
        assert main(["trace", "flame", str(profiled["trace"])]) == 0
        out = capsys.readouterr().out
        line = out.splitlines()[0]
        stack, weight = line.rsplit(" ", 1)
        assert ";" in stack or stack.startswith("partition")
        assert int(weight) > 0

    def test_trace_flame_speedscope_to_file(self, profiled, tmp_path, capsys):
        out_file = tmp_path / "profile.speedscope.json"
        assert main([
            "trace", "flame", str(profiled["trace"]),
            "--format", "speedscope", "--out", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        assert doc["profiles"]

    def test_trace_critical_path(self, profiled, capsys):
        assert main([
            "trace", "critical-path", str(profiled["trace"]), "--lines", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "straggler" in out

    def test_trace_doctor_healthy(self, profiled, capsys):
        assert main([
            "trace", "doctor", str(profiled["trace"]),
            "--metrics", str(profiled["metrics"]), "--fail-on-findings",
        ]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_trace_doctor_fail_on_findings(self, pipeline, tmp_path, capsys):
        trace = tmp_path / "sick.jsonl"
        crawl_root = tmp_path / "sick"
        assert main([
            "partition", "--precrawl", str(pipeline["pre"]),
            "--size", "12", "--out", str(crawl_root),
        ]) == 0
        assert main([
            "crawl", "--site", pipeline["site"], "--root", str(crawl_root),
            "--trace", str(trace), "--spans",
            "--fault-rate", "1.0", "--fault-pattern", "/comments", "--retries", "2",
        ]) == 0
        assert main([
            "trace", "doctor", str(trace), "--fail-on-findings",
        ]) == 1
        out = capsys.readouterr().out
        assert "quarantine-storm" in out

    def test_trace_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "spans", str(tmp_path / "nope.jsonl")])

    def test_metrics_json_round_trip(self, profiled, capsys):
        assert main(["metrics", str(profiled["metrics"])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "counters" in payload

    def test_metrics_prometheus(self, profiled, capsys):
        assert main([
            "metrics", str(profiled["metrics"]), "--format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE crawl_pages counter" in out or "# TYPE" in out
        assert "crawl_events_invoked" in out


class TestArgumentErrors:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
