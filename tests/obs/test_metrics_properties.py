"""Property-based tests (seeded, stdlib-only) for registry merging and
the network-stats fault-accounting invariant.

The central claim of :meth:`MetricsRegistry.merge` is that partitioned
accounting is lossless: however a workload's metric operations are
split across k registries, and however the k registries are folded back
together (order, grouping), the result equals the registry a single
process applying every operation would have produced.  Gauge merge
keeps the max, so the generated gauge values increase monotonically
with the global operation index — making last-write-wins (the single
process) and max (the merge) coincide, which is exactly the high-water
mark contract gauges are used for.
"""

import math
import random

import pytest

from repro.clock import CostModel
from repro.crawler import CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import MetricsRegistry
from repro.parallel import SimpleAjaxCrawler
from repro.sites import SiteConfig, SyntheticYouTube

METRIC_NAMES = ["crawl.pages", "net.bytes", "net.time_ms", "cache.hits"]
LABEL_SETS = [{}, {"url": "a"}, {"url": "b"}, {"kind": "page"}, {"url": "a", "kind": "ajax"}]


def random_ops(rng, count):
    """A workload: (op, name, value, labels) tuples.

    Gauge values equal the global op index so single-process
    last-write-wins and merge-time max agree (see module docstring).
    """
    ops = []
    for index in range(count):
        op = rng.choice(["inc", "inc", "inc", "gauge", "observe"])
        name = rng.choice(METRIC_NAMES)
        labels = rng.choice(LABEL_SETS)
        if op == "inc":
            value = rng.choice([1.0, 2.0, 0.5])
        elif op == "gauge":
            value = float(index)
        else:
            value = rng.uniform(0.0, 2000.0)
        ops.append((op, name, value, labels))
    return ops


def apply_ops(registry, ops):
    for op, name, value, labels in ops:
        if op == "inc":
            registry.inc(name, value, **labels)
        elif op == "gauge":
            registry.set_gauge(name, value, **labels)
        else:
            registry.observe(name, value, **labels)
    return registry


def assert_snapshots_equal(a, b):
    """Snapshot equality up to float-addition rounding."""
    assert a["counters"].keys() == b["counters"].keys()
    for key in a["counters"]:
        assert math.isclose(a["counters"][key], b["counters"][key], rel_tol=1e-9), key
    assert a["gauges"] == b["gauges"]
    assert a["histograms"].keys() == b["histograms"].keys()
    for key in a["histograms"]:
        ha, hb = a["histograms"][key], b["histograms"][key]
        assert ha["counts"] == hb["counts"], key
        assert ha["count"] == hb["count"], key
        assert math.isclose(ha["sum"], hb["sum"], rel_tol=1e-9), key


@pytest.mark.parametrize("seed", range(8))
def test_partitioned_merge_equals_single_process(seed):
    """Round-robin the ops over k registries, merge left-to-right."""
    rng = random.Random(seed)
    ops = random_ops(rng, rng.randint(20, 120))
    k = rng.randint(1, 5)
    partitions = [[] for _ in range(k)]
    for index, op in enumerate(ops):
        partitions[index % k].append(op)
    single = apply_ops(MetricsRegistry(), ops)
    merged = MetricsRegistry()
    for partition in partitions:
        merged.merge(apply_ops(MetricsRegistry(), partition))
    assert_snapshots_equal(merged.snapshot(), single.snapshot())


@pytest.mark.parametrize("seed", range(8))
def test_merge_is_commutative_and_associative(seed):
    """Any merge order and any grouping yields the same snapshot."""
    rng = random.Random(1000 + seed)
    ops = random_ops(rng, rng.randint(20, 100))
    k = rng.randint(2, 5)
    partitions = [[] for _ in range(k)]
    for index, op in enumerate(ops):
        partitions[rng.randrange(k)].append(op)

    def build():
        return [apply_ops(MetricsRegistry(), partition) for partition in partitions]

    # Left fold in shuffled order.
    order = list(range(k))
    rng.shuffle(order)
    shuffled = MetricsRegistry()
    registries = build()
    for index in order:
        shuffled.merge(registries[index])
    # Pairwise tree fold in original order.
    registries = build()
    while len(registries) > 1:
        merged_pairs = []
        for i in range(0, len(registries) - 1, 2):
            registries[i].merge(registries[i + 1])
            merged_pairs.append(registries[i])
        if len(registries) % 2:
            merged_pairs.append(registries[-1])
        registries = merged_pairs
    assert_snapshots_equal(shuffled.snapshot(), registries[0].snapshot())


@pytest.mark.parametrize("seed", range(5))
def test_fault_accounting_invariant_under_random_plans(seed):
    """Every injected fault is booked exactly once:
    ``retries + failed_requests == failed_attempts == len(plan.log)``."""
    rng = random.Random(77 + seed)
    rules = [FaultRule(r"/comments", rate=rng.uniform(0.1, 0.6), status=rng.choice([500, 502, 503]))]
    if rng.random() < 0.5:
        rules.append(FaultRule(r"/watch", rate=rng.uniform(0.0, 0.3), status=503))
    if rng.random() < 0.5:
        rules.append(FaultRule(r"p=2", fail_first=rng.randint(1, 3)))
    plan = FaultPlan(rules, seed=seed)
    site = SyntheticYouTube(SiteConfig(num_videos=6, seed=seed))
    config = CrawlerConfig(retry_max_attempts=rng.randint(1, 4))
    worker = SimpleAjaxCrawler(
        FaultInjector(site, plan),
        config,
        cost_model=CostModel(network_jitter=0.0),
    )
    _, summary = worker.crawl_urls([site.video_url(i) for i in range(4)])
    stats = summary.network
    assert stats.failed_attempts == len(plan.log) == plan.num_injected
    assert stats.retries + stats.failed_requests == len(plan.log)
