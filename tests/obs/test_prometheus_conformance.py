"""Text-exposition conformance, checked by an in-test stdlib parser.

The container has no ``prometheus_client``, so the test implements the
relevant slice of the text-format grammar itself (``# TYPE``/``# HELP``
comments, ``name{labels} value`` samples, the ``NaN``/``+Inf``/``-Inf``
value spellings) and audits every registry rendering against the rules
a real scraper enforces:

* every sample value parses as a float (this is the regression for the
  non-finite crash: a gauge at ``inf`` used to abort the whole render);
* every histogram exposes ``_bucket`` series with *cumulative*,
  monotonically non-decreasing ``le`` counts;
* the ``le="+Inf"`` bucket exists and equals ``_count``;
* ``_sum`` and ``_count`` are present exactly once per label set and
  appear after that label set's buckets;
* each metric has exactly one ``# TYPE`` line, before its samples.
"""

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(text: str) -> float:
    """A scraper's value parser: the spec's spellings and floats only."""
    if text == "NaN":
        return math.nan
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # raises on anything non-conformant


def parse_exposition(text: str):
    """(types, samples): samples are (name, labels-dict, value) tuples."""
    types: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ", 1)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = dict(LABEL_RE.findall(match.group("labels") or ""))
        samples.append(
            (match.group("name"), labels, parse_value(match.group("value")))
        )
    return types, samples


def loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("serve.requests", 3, endpoint="search", status=200)
    registry.inc("serve.requests", 1, endpoint="search", status=400)
    registry.set_gauge("crawl.frontier", 17.0)
    for value in (0.03, 0.2, 1.5, 40.0, 3000.0, 99999.0):
        registry.observe("serve.request_ms", value, endpoint="search")
        registry.observe("net.latency_ms", value)
    return registry


class TestConformance:
    def test_every_line_parses(self):
        types, samples = parse_exposition(loaded_registry().to_prometheus())
        assert types["serve_requests"] == "counter"
        assert types["crawl_frontier"] == "gauge"
        assert types["serve_request_ms"] == "histogram"
        assert samples

    def test_nonfinite_values_render_per_spec(self):
        # Regression: int(inf) raised, killing the whole /metrics body.
        registry = MetricsRegistry()
        registry.set_gauge("limits.max_ms", float("inf"))
        registry.set_gauge("limits.min_ms", float("-inf"))
        registry.set_gauge("limits.undefined", float("nan"))
        registry.inc("ok.counter", 2)
        types, samples = parse_exposition(registry.to_prometheus())
        by_name = {name: value for name, _, value in samples}
        assert by_name["limits_max_ms"] == math.inf
        assert by_name["limits_min_ms"] == -math.inf
        assert math.isnan(by_name["limits_undefined"])
        assert by_name["ok_counter"] == 2.0

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        text = loaded_registry().to_prometheus()
        _, samples = parse_exposition(text)
        for base in ("serve_request_ms", "net_latency_ms"):
            buckets = [
                (labels, value)
                for name, labels, value in samples
                if name == f"{base}_bucket"
            ]
            assert buckets, f"no buckets for {base}"
            bounds = [parse_value(labels["le"]) for labels, _ in buckets]
            counts = [value for _, value in buckets]
            assert bounds == sorted(bounds), f"{base} le bounds not ascending"
            assert bounds[-1] == math.inf, f"{base} lacks le=+Inf"
            assert counts == sorted(counts), f"{base} buckets not cumulative"
            count = next(
                value for name, _, value in samples if name == f"{base}_count"
            )
            total = next(
                value for name, _, value in samples if name == f"{base}_sum"
            )
            assert counts[-1] == count, f"{base} +Inf bucket != _count"
            assert count == 6.0
            assert total == pytest.approx(sum((0.03, 0.2, 1.5, 40.0, 3000.0, 99999.0)))

    def test_sum_and_count_follow_their_buckets(self):
        text = loaded_registry().to_prometheus()
        lines = [line for line in text.splitlines() if line.startswith("serve_request_ms")]
        # All buckets first, then _sum, then _count — per label set.
        kinds = [
            "bucket" if "_bucket" in line else "sum" if "_sum" in line else "count"
            for line in lines
        ]
        assert kinds == ["bucket"] * (len(kinds) - 2) + ["sum", "count"]

    def test_type_precedes_samples(self):
        text = loaded_registry().to_prometheus()
        seen_type: set[str] = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                seen_type.add(line.split(" ")[2])
            elif line and not line.startswith("#"):
                name = SAMPLE_RE.match(line).group("name")
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen_type or base in seen_type, (
                    f"sample {name} before its TYPE line"
                )

    def test_serving_latency_buckets_resolve_sub_ms(self):
        # The per-metric bounds registry must give serve.request_ms its
        # sub-millisecond buckets while net.latency_ms keeps defaults.
        registry = loaded_registry()
        _, samples = parse_exposition(registry.to_prometheus())
        serve_bounds = {
            parse_value(labels["le"])
            for name, labels, _ in samples
            if name == "serve_request_ms_bucket"
        }
        net_bounds = {
            parse_value(labels["le"])
            for name, labels, _ in samples
            if name == "net_latency_ms_bucket"
        }
        assert 0.05 in serve_bounds and 0.25 in serve_bounds
        assert 0.05 not in net_bounds
        assert min(net_bounds) == 1.0
