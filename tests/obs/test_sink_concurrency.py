"""One JsonlTraceSink shared across worker threads: no torn lines.

The threads crawl backend lets a recorder factory hand every partition
recorder the same sink.  The sink's write lock must serialize whole
lines: every line of the resulting file parses as one JSON event, the
count is exact, and no two writers' bytes interleave.
"""

import json
import threading

from repro.clock import SimClock
from repro.obs import JsonlTraceSink, Recorder


class TestSharedSink:
    def test_concurrent_recorders_produce_only_whole_lines(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        workers, each = 8, 400
        barrier = threading.Barrier(workers)
        with JsonlTraceSink(path) as sink:
            recorders = [
                Recorder(clock=SimClock(), sink=sink) for _ in range(workers)
            ]

            def emit(worker_id):
                barrier.wait()
                for i in range(each):
                    recorders[worker_id].emit(
                        "page_fetch",
                        url=f"http://site/{worker_id}/{i}",
                        worker=worker_id,
                        # A long payload makes interleaved partial
                        # writes (if the lock were missing) likely to
                        # tear mid-line and fail the JSON parse below.
                        payload="x" * 256,
                    )

            threads = [
                threading.Thread(target=emit, args=(w,)) for w in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()

        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == workers * each
        seen = set()
        for line in lines:
            event = json.loads(line)  # raises on a torn line
            assert event["kind"] == "page_fetch"
            seen.add(event["url"])
        # Every emitted event appears exactly once, none lost.
        assert len(seen) == workers * each

    def test_write_after_close_still_rejected(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        recorder = Recorder(clock=SimClock(), sink=sink)
        recorder.emit("page_fetch", url="u")
        sink.close()
        try:
            recorder.emit("page_fetch", url="late")
        except ValueError as error:
            assert "closed" in str(error)
        else:  # pragma: no cover
            raise AssertionError("write on a closed sink must raise")

    def test_wall_clock_recorder_annotates_events(self, tmp_path):
        """wall_clock=True adds a wall_ms field; default leaves it out
        (golden traces must not change)."""
        plain = Recorder(clock=SimClock())
        walled = Recorder(clock=SimClock(), wall_clock=True)
        plain_event = plain.emit("page_fetch", url="u")
        walled_event = walled.emit("page_fetch", url="u")
        assert "wall_ms" not in plain_event.fields
        assert walled_event.fields["wall_ms"] >= 0.0
