"""Prometheus text exposition and snapshot round-tripping."""

import json

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    _prom_escape,
    _prom_name,
)


def filled_registry():
    registry = MetricsRegistry()
    registry.inc("net.page_fetches", 5)
    registry.inc("net.bytes", 1234.0, kind="page")
    registry.inc("net.bytes", 99.0, kind="ajax")
    registry.set_gauge("crawl.open_states", 17)
    registry.observe("net.latency_ms", 3.0)
    registry.observe("net.latency_ms", 40.0)
    registry.observe("net.latency_ms", 1e9)  # lands in the +Inf bucket
    return registry


class TestExposition:
    def test_counter_rendering_with_help_and_type(self):
        text = filled_registry().to_prometheus()
        assert "# HELP net_page_fetches" in text
        assert "# TYPE net_page_fetches counter" in text
        assert "\nnet_page_fetches 5\n" in text

    def test_labelled_series_sorted_under_one_header(self):
        text = filled_registry().to_prometheus()
        ajax = text.index('net_bytes{kind="ajax"} 99')
        page = text.index('net_bytes{kind="page"} 1234')
        assert text.count("# TYPE net_bytes counter") == 1
        assert ajax < page  # label-sorted

    def test_gauge_type(self):
        text = filled_registry().to_prometheus()
        assert "# TYPE crawl_open_states gauge" in text
        assert "crawl_open_states 17" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = filled_registry().to_prometheus()
        lines = [l for l in text.splitlines() if l.startswith("net_latency_ms_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert lines[-1].startswith('net_latency_ms_bucket{le="+Inf"}')
        assert counts[-1] == 3
        assert "net_latency_ms_sum" in text
        assert "net_latency_ms_count 3" in text

    def test_finite_last_bound_still_emits_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(100.0)  # beyond every bound: only count/sum see it
        registry._histograms[("h", ())] = histogram
        text = registry.to_prometheus()
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_name_sanitization(self):
        assert _prom_name("net.bytes") == "net_bytes"
        assert _prom_name("a-b c") == "a_b_c"
        assert _prom_name("7days") == "_7days"
        assert _prom_name("ok:subsystem_total") == "ok:subsystem_total"

    def test_label_value_escaping(self):
        assert _prom_escape('a"b') == 'a\\"b'
        assert _prom_escape("a\\b") == "a\\\\b"
        assert _prom_escape("a\nb") == "a\\nb"
        registry = MetricsRegistry()
        registry.inc("c", 1, url='http://x/"q"\n')
        assert 'url="http://x/\\"q\\"\\n"' in registry.to_prometheus()

    def test_integer_values_render_without_decimal(self):
        registry = MetricsRegistry()
        registry.inc("c", 2.0)
        registry.inc("d", 2.5)
        text = registry.to_prometheus()
        assert "\nc 2\n" in text
        assert "\nd 2.5" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_output_is_deterministic(self):
        a = filled_registry().to_prometheus()
        b = filled_registry().to_prometheus()
        assert a == b


class TestSnapshotRoundTrip:
    def test_from_snapshot_inverts_snapshot(self):
        registry = filled_registry()
        snapshot = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot

    def test_round_trip_through_json(self):
        registry = filled_registry()
        rebuilt = MetricsRegistry.from_snapshot(json.loads(registry.to_json()))
        assert rebuilt.snapshot() == registry.snapshot()
        assert rebuilt.to_prometheus() == registry.to_prometheus()

    def test_labels_survive_the_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("net.bytes", 7, kind="page", url="http://a/")
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.counter("net.bytes", kind="page", url="http://a/") == 7

    def test_histogram_state_is_exact(self):
        registry = MetricsRegistry()
        registry.observe("h", 3.0)
        registry.observe("h", 7000.0)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        original = registry.histogram("h")
        copy = rebuilt.histogram("h")
        assert copy.bounds == original.bounds
        assert copy.bucket_counts == original.bucket_counts
        assert copy.sum == pytest.approx(original.sum)
        assert copy.count == original.count
