"""Golden-trace regression tests: determinism, goldens, zero-cost-off."""

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.obs import diff_traces, normalize_lines, to_jsonl
from repro.obs.goldens import (
    CORPORA,
    current_lines,
    golden_path,
    verify,
    webmail_trace,
    youtube_trace,
)
from repro.sites import SiteConfig, SyntheticYouTube


class TestDeterminism:
    def test_two_webmail_runs_are_byte_identical(self):
        assert to_jsonl(webmail_trace()) == to_jsonl(webmail_trace())

    def test_two_youtube_runs_are_byte_identical(self):
        assert to_jsonl(youtube_trace()) == to_jsonl(youtube_trace())


class TestGoldens:
    def test_goldens_are_checked_in(self):
        for corpus in CORPORA:
            assert golden_path(corpus).exists(), f"missing golden for {corpus}"

    def test_webmail_matches_golden(self):
        assert verify("webmail") == []

    def test_youtube_matches_golden(self):
        assert verify("youtube") == []

    def test_normalizer_makes_goldens_self_consistent(self):
        """The checked-in files are already in canonical normalized form."""
        for corpus in CORPORA:
            raw = golden_path(corpus).read_text(encoding="utf-8").splitlines()
            assert normalize_lines(raw) == [line for line in raw if line.strip()]

    def test_diff_against_tampered_golden_is_readable(self):
        lines = current_lines("youtube")
        tampered = list(lines)
        tampered[4] = tampered[4].replace('"kind":"', '"kind":"x_')
        problems = diff_traces(lines, tampered)
        assert any("event #4 differs" in problem for problem in problems)


class TestZeroCostWhenDisabled:
    def test_untraced_crawl_output_is_unchanged(self):
        """Tracing must not perturb the simulation: the virtual-time and
        state accounting of a traced crawl equals the untraced crawl."""

        def run(**kwargs):
            site = SyntheticYouTube(SiteConfig(num_videos=3, seed=7))
            crawler = AjaxCrawler(
                site,
                CrawlerConfig(),
                clock=kwargs.pop("clock", None) or SimClock(),
                cost_model=CostModel(),
                **kwargs,
            )
            result = crawler.crawl([site.video_url(i) for i in range(3)])
            report = result.report
            return (
                report.total_states,
                report.total_events,
                report.total_time_ms,
                report.total_network_time_ms,
            )

        from repro.obs import Recorder

        clock = SimClock()
        recorder = Recorder(clock=clock)
        assert run() == run(clock=clock, recorder=recorder)
        assert recorder.events  # the traced run actually traced
