"""The span protocol and :class:`SpanTree` reconstruction."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimClock
from repro.obs import NULL_RECORDER, NULL_SPAN, SPAN_END, SPAN_START
from repro.obs.events import TraceEvent, to_jsonl
from repro.obs.recorder import Recorder
from repro.obs.spans import SpanNestingError, SpanTree, format_span_tree


def spanning_recorder():
    return Recorder(clock=SimClock(), spans=True)


# -- emission ------------------------------------------------------------------------


class TestSpanEmission:
    def test_span_emits_paired_start_end(self):
        recorder = spanning_recorder()
        with recorder.span("crawl", pages=3):
            recorder.clock.advance(10.0)
        kinds = [e.kind for e in recorder.events]
        assert kinds == [SPAN_START, SPAN_END]
        start, end = recorder.events
        assert start.fields["span"] == "crawl"
        assert start.fields["pages"] == 3
        assert end.fields["span_id"] == start.fields["span_id"]
        assert end.t_ms - start.t_ms == pytest.approx(10.0)

    def test_nested_spans_carry_parent_id(self):
        recorder = spanning_recorder()
        with recorder.span("crawl"):
            with recorder.span("page", url="u"):
                recorder.emit("page_fetch", url="u")
        start_crawl, start_page, fetch, end_page, end_crawl = recorder.events
        assert "parent_id" not in start_crawl.fields
        assert start_page.fields["parent_id"] == start_crawl.fields["span_id"]
        assert fetch.fields["parent_id"] == start_page.fields["span_id"]
        # Ends parent to the *enclosing* span, mirroring the starts.
        assert end_page.fields["parent_id"] == start_crawl.fields["span_id"]
        assert "parent_id" not in end_crawl.fields

    def test_annotate_lands_on_span_end(self):
        recorder = spanning_recorder()
        with recorder.span("page") as span:
            span.annotate(states=7)
        assert recorder.events[-1].fields["states"] == 7

    def test_exception_marks_span_as_error(self):
        recorder = spanning_recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("page"):
                raise RuntimeError("boom")
        end = recorder.events[-1]
        assert end.kind == SPAN_END
        assert end.fields["error"] is True

    def test_explicit_parent_id_not_overwritten(self):
        recorder = spanning_recorder()
        with recorder.span("crawl"):
            event = recorder.emit("retry", parent_id=99)
        assert event.fields["parent_id"] == 99

    def test_spans_off_emits_nothing_and_injects_nothing(self):
        recorder = Recorder(clock=SimClock())
        with recorder.span("crawl") as span:
            span.annotate(ignored=True)
            event = recorder.emit("page_fetch", url="u")
        assert span is NULL_SPAN
        assert "parent_id" not in event.fields
        assert [e.kind for e in recorder.events] == ["page_fetch"]

    def test_null_recorder_span_is_noop(self):
        with NULL_RECORDER.span("crawl") as span:
            span.annotate(x=1)
        assert span is NULL_SPAN
        assert NULL_RECORDER.events == []


# -- reconstruction ------------------------------------------------------------------


class TestSpanTree:
    def test_round_trips_through_jsonl(self):
        recorder = spanning_recorder()
        with recorder.span("crawl"):
            recorder.clock.advance(1.0)
            with recorder.span("page", url="u") as page:
                recorder.clock.advance(5.0)
                recorder.emit("page_fetch", url="u", bytes=100)
                page.annotate(states=2)
            recorder.clock.advance(2.0)
        tree = SpanTree.from_jsonl(to_jsonl(recorder.events))
        assert not tree.problems
        assert len(tree) == 2
        (crawl,) = tree.roots
        assert crawl.kind == "crawl"
        (page_span,) = crawl.children
        assert page_span.fields == {"url": "u"}
        assert page_span.end_fields == {"states": 2}
        assert [e.kind for e in page_span.events] == ["page_fetch"]
        assert crawl.inclusive_ms == pytest.approx(8.0)
        assert page_span.inclusive_ms == pytest.approx(5.0)
        assert crawl.exclusive_ms == pytest.approx(3.0)
        assert page_span.exclusive_ms == pytest.approx(5.0)

    def test_orphan_point_events_collected(self):
        events = [TraceEvent(0, 0.0, "page_fetch", {"url": "u"})]
        tree = SpanTree.from_events(events)
        assert tree.roots == []
        assert len(tree.orphan_events) == 1

    def _events(self, *tuples):
        return [TraceEvent(seq, t, kind, dict(fields)) for seq, t, kind, fields in tuples]

    def test_duplicate_span_id_rejected(self):
        events = self._events(
            (0, 0.0, SPAN_START, {"span": "a", "span_id": 1}),
            (1, 1.0, SPAN_START, {"span": "b", "span_id": 1}),
        )
        with pytest.raises(SpanNestingError, match="duplicate span_id"):
            SpanTree.from_events(events)

    def test_end_without_start_rejected(self):
        events = self._events((0, 0.0, SPAN_END, {"span": "a", "span_id": 5}),)
        with pytest.raises(SpanNestingError, match="unknown span"):
            SpanTree.from_events(events)

    def test_double_end_rejected(self):
        events = self._events(
            (0, 0.0, SPAN_START, {"span": "a", "span_id": 1}),
            (1, 1.0, SPAN_END, {"span": "a", "span_id": 1}),
            (2, 2.0, SPAN_END, {"span": "a", "span_id": 1}),
        )
        with pytest.raises(SpanNestingError, match="ended twice"):
            SpanTree.from_events(events)

    def test_end_before_start_rejected(self):
        events = self._events(
            (0, 10.0, SPAN_START, {"span": "a", "span_id": 1}),
            (1, 5.0, SPAN_END, {"span": "a", "span_id": 1}),
        )
        with pytest.raises(SpanNestingError, match="before its start"):
            SpanTree.from_events(events)

    def test_parent_closing_over_open_child_rejected(self):
        events = self._events(
            (0, 0.0, SPAN_START, {"span": "a", "span_id": 1}),
            (1, 1.0, SPAN_START, {"span": "b", "span_id": 2, "parent_id": 1}),
            (2, 2.0, SPAN_END, {"span": "a", "span_id": 1}),
        )
        with pytest.raises(SpanNestingError, match="still open"):
            SpanTree.from_events(events)

    def test_never_ended_span_rejected_strict_kept_lenient(self):
        events = self._events((0, 0.0, SPAN_START, {"span": "a", "span_id": 1}),)
        with pytest.raises(SpanNestingError, match="never ended"):
            SpanTree.from_events(events)
        tree = SpanTree.from_events(events, strict=False)
        assert len(tree.problems) == 1
        (span,) = tree.roots
        assert not span.closed
        assert span.inclusive_ms == 0.0

    def test_unknown_parent_reparented_to_root_in_lenient_mode(self):
        events = self._events(
            (0, 0.0, SPAN_START, {"span": "b", "span_id": 2, "parent_id": 42}),
            (1, 1.0, SPAN_END, {"span": "b", "span_id": 2}),
        )
        tree = SpanTree.from_events(events, strict=False)
        assert [s.kind for s in tree.roots] == ["b"]
        assert tree.problems and "unknown" in tree.problems[0]

    def test_child_exceeding_parent_budget_rejected(self):
        events = self._events(
            (0, 0.0, SPAN_START, {"span": "a", "span_id": 1}),
            (1, 0.0, SPAN_START, {"span": "b", "span_id": 2, "parent_id": 1}),
            (2, 9.0, SPAN_END, {"span": "b", "span_id": 2}),
            # Parent closes "after" the child per seq but earlier on the
            # clock: the child's inclusive time overflows the parent's.
            (3, 5.0, SPAN_END, {"span": "a", "span_id": 1}),
        )
        with pytest.raises(SpanNestingError, match="exceeds parent"):
            SpanTree.from_events(events)

    def test_format_span_tree_renders_outline(self):
        recorder = spanning_recorder()
        with recorder.span("crawl"):
            with recorder.span("page", url="u"):
                recorder.clock.advance(4.0)
        text = format_span_tree(SpanTree.from_events(recorder.events))
        assert "crawl" in text
        assert "  page:u" in text
        assert "incl=4.0ms" in text

    def test_max_depth_truncates_rendering(self):
        recorder = spanning_recorder()
        with recorder.span("crawl"):
            with recorder.span("page", url="u"):
                pass
        text = format_span_tree(SpanTree.from_events(recorder.events), max_depth=0)
        assert "page" not in text


# -- property: the emitted protocol always reconstructs, and children fit -------------


@st.composite
def span_programs(draw):
    """A random well-nested program: (push kind, advance ms, pop) ops."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 or depth == 0:
            ops.append(("push", draw(st.sampled_from(["crawl", "page", "js", "xhr"]))))
            depth += 1
        elif choice == 1:
            ops.append(("advance", draw(st.floats(min_value=0.0, max_value=50.0))))
        else:
            ops.append(("pop", None))
            depth -= 1
    ops.extend(("pop", None) for _ in range(depth))
    return ops


@given(span_programs())
@settings(max_examples=60, deadline=None)
def test_emitted_spans_always_form_valid_tree(ops):
    recorder = spanning_recorder()
    stack = []
    for op, arg in ops:
        if op == "push":
            handle = recorder.span(arg)
            handle.__enter__()
            stack.append(handle)
        elif op == "advance":
            recorder.clock.advance(arg)
        else:
            stack.pop().__exit__(None, None, None)
    tree = SpanTree.from_jsonl(to_jsonl(recorder.events))  # strict: must not raise
    assert not tree.problems
    for span in tree.walk():
        child_sum = sum(c.inclusive_ms for c in span.children)
        # Children's inclusive time fits in the parent; exclusive is the rest.
        assert child_sum <= span.inclusive_ms + 1e-6
        assert span.exclusive_ms == pytest.approx(
            span.inclusive_ms - child_sum, abs=1e-6
        )


def test_span_events_are_canonical_json():
    recorder = spanning_recorder()
    with recorder.span("crawl", pages=1):
        pass
    for event in recorder.events:
        line = event.to_json()
        assert json.loads(line)["kind"] in (SPAN_START, SPAN_END)
        assert line == TraceEvent.from_json(line).to_json()
