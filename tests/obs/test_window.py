"""Rolling windows on a virtual clock: rotation, expiry, horizons.

The hypothesis property drives a random schedule of (advance, add)
steps and checks the windowed total against a brute-force recomputation
from the event log — the ring must behave exactly like "sum of events
whose slot is still live", for any horizon.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.window import RollingCounter, RollingSketch, _SlotRing


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def brute_force_total(events, now, window_s, slots, horizon_s=None):
    """What the ring must report: sum of events in still-live slots."""
    slot_s = window_s / slots
    now_index = int(now // slot_s)
    if horizon_s is None:
        span = slots
    else:
        import math

        span = min(slots, max(1, math.ceil(horizon_s / slot_s)))
    total = 0.0
    for at, value in events:
        index = int(at // slot_s)
        if now_index - span < index <= now_index:
            total += value
    return total


class TestRollingCounter:
    def test_counts_within_window(self):
        clock = Clock()
        counter = RollingCounter(window_s=60.0, slots=12, clock=clock)
        counter.add(5.0)
        clock.advance(30.0)
        counter.add(7.0)
        assert counter.total() == 12.0
        assert counter.rate_per_s() == pytest.approx(12.0 / 60.0)

    def test_old_slots_expire(self):
        clock = Clock()
        counter = RollingCounter(window_s=60.0, slots=12, clock=clock)
        counter.add(5.0)
        clock.advance(61.0)
        assert counter.total() == 0.0
        counter.add(3.0)
        assert counter.total() == 3.0

    def test_slot_reuse_resets_stale_payload(self):
        # Advancing exactly one full window lands on the same ring
        # position with a different slot index: the old count must not
        # bleed through.
        clock = Clock()
        counter = RollingCounter(window_s=60.0, slots=12, clock=clock)
        counter.add(5.0)
        clock.advance(60.0)
        counter.add(1.0)
        assert counter.total() == 1.0

    def test_horizon_narrows_the_read(self):
        clock = Clock()
        counter = RollingCounter(window_s=60.0, slots=12, clock=clock)
        counter.add(10.0)  # slot [0, 5)
        clock.advance(30.0)
        counter.add(1.0)  # slot [30, 35)
        assert counter.total() == 11.0
        assert counter.total(horizon_s=5.0) == 1.0
        assert counter.rate_per_s(horizon_s=5.0) == pytest.approx(1.0 / 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCounter(window_s=0.0)
        with pytest.raises(ValueError):
            RollingCounter(slots=0)
        counter = RollingCounter(clock=Clock())
        with pytest.raises(ValueError):
            counter.total(horizon_s=0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=40.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            max_size=60,
        ),
        st.sampled_from([None, 5.0, 13.0, 30.0, 60.0, 120.0]),
    )
    @settings(max_examples=150)
    def test_total_matches_brute_force(self, steps, horizon_s):
        clock = Clock()
        counter = RollingCounter(window_s=60.0, slots=12, clock=clock)
        events = []
        for advance, value in steps:
            clock.advance(advance)
            counter.add(value)
            events.append((clock.now, value))
        expected = brute_force_total(
            events, clock.now, 60.0, 12, horizon_s
        )
        assert counter.total(horizon_s) == pytest.approx(expected)


class TestRollingSketch:
    def test_windowed_quantile_equals_fresh_sketch(self):
        clock = Clock()
        rolling = RollingSketch(window_s=60.0, slots=12, clock=clock)
        for value in (1.0, 2.0, 3.0, 4.0):
            rolling.observe(value)
            clock.advance(10.0)
        # The first observation (t=0) has expired only after t >= 60.
        assert rolling.count() == 4
        clock.advance(25.0)  # now 65: slot [0,5) is out
        assert rolling.count() == 3
        merged = rolling.merged()
        assert merged.min == 2.0

    def test_summary_shape(self):
        rolling = RollingSketch(clock=Clock())
        rolling.observe(5.0)
        summary = rolling.summary()
        assert summary["count"] == 1
        assert set(summary) >= {"p50", "p95", "p99", "mean", "min", "max"}

    def test_expiry_empties_the_window(self):
        clock = Clock()
        rolling = RollingSketch(window_s=10.0, slots=5, clock=clock)
        rolling.observe(42.0)
        clock.advance(11.0)
        assert rolling.count() == 0
        assert rolling.quantile(0.5) == 0.0


class TestSlotRing:
    def test_span_s_rounds_up_to_whole_slots(self):
        ring = _SlotRing(60.0, 12, Clock(), list)
        assert ring.span_s(None) == 60.0
        assert ring.span_s(1.0) == 5.0
        assert ring.span_s(5.0) == 5.0
        assert ring.span_s(6.0) == 10.0
        assert ring.span_s(1000.0) == 60.0
