"""The trace doctor: rules, signal extraction, and end-to-end diagnoses."""

import pytest

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import MetricsRegistry
from repro.obs.doctor import (
    DEFAULT_DOCTOR_CONFIG,
    DoctorConfig,
    Signals,
    diagnose,
    format_findings,
    signals_from_events,
    signals_from_metrics,
    signals_from_parallel,
)
from repro.obs.goldens import golden_path
from repro.obs.recorder import Recorder
from repro.obs.trace import normalize_lines  # noqa: F401  (exercised elsewhere)
from repro.obs.events import from_jsonl
from repro.parallel import MPAjaxCrawler
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube


def rules_of(findings):
    return {finding.rule for finding in findings}


# -- per-rule unit tests over synthetic signals ---------------------------------------


class TestRules:
    def diagnose_signals(self, signals, config=DEFAULT_DOCTOR_CONFIG):
        base = Signals()
        base.merge_max(signals)
        findings = []
        from repro.obs.doctor import RULES

        for rule in RULES:
            finding = rule(base, config)
            if finding is not None:
                findings.append(finding)
        return findings

    def test_quarantine_storm_needs_count_and_ratio(self):
        sick = Signals(events_fired=20, events_quarantined=5)
        assert rules_of(self.diagnose_signals(sick)) == {"quarantine-storm"}
        few = Signals(events_fired=20, events_quarantined=2)  # below min count
        assert not self.diagnose_signals(few)
        diluted = Signals(events_fired=100, events_quarantined=3)  # 3% < 10%
        assert not self.diagnose_signals(diluted)

    def test_quarantine_storm_is_critical(self):
        (finding,) = self.diagnose_signals(Signals(events_fired=10, events_quarantined=5))
        assert finding.severity == "critical"
        assert finding.evidence["events_quarantined"] == 5

    def test_cache_collapse_needs_enough_lookups(self):
        cold = Signals(cache_lookups=50, cache_hits=2)
        assert rules_of(self.diagnose_signals(cold)) == {"cache-collapse"}
        tiny = Signals(cache_lookups=5, cache_hits=0)  # below min lookups
        assert not self.diagnose_signals(tiny)
        healthy = Signals(cache_lookups=50, cache_hits=30)
        assert not self.diagnose_signals(healthy)

    def test_state_cap_fires_on_any_truncation(self):
        (finding,) = self.diagnose_signals(Signals(states_capped=1))
        assert finding.rule == "state-cap-truncation"
        assert not self.diagnose_signals(Signals(states_capped=0))

    def test_retry_amplification(self):
        flaky = Signals(retries=6, network_requests=8)
        assert rules_of(self.diagnose_signals(flaky)) == {"retry-amplification"}
        rare = Signals(retries=2, network_requests=4)  # below min count
        assert not self.diagnose_signals(rare)
        absorbed = Signals(retries=4, network_requests=100)  # 4% < 50%
        assert not self.diagnose_signals(absorbed)

    def test_partition_skew(self):
        skewed = Signals(partition_durations=[(1, 100.0), (2, 10.0), (3, 10.0)])
        (finding,) = self.diagnose_signals(skewed)
        assert finding.rule == "partition-skew"
        assert finding.evidence["straggler_partition"] == 1
        balanced = Signals(partition_durations=[(1, 50.0), (2, 55.0)])
        assert not self.diagnose_signals(balanced)
        single = Signals(partition_durations=[(1, 100.0)])  # need >= 2
        assert not self.diagnose_signals(single)

    def test_hash_regression(self):
        thrashing = Signals(
            hash_incremental_passes=5, hash_nodes_hashed=90, hash_nodes_skipped=10
        )
        assert rules_of(self.diagnose_signals(thrashing)) == {"hash-regression"}
        healthy = Signals(
            hash_incremental_passes=5, hash_nodes_hashed=10, hash_nodes_skipped=90
        )
        assert not self.diagnose_signals(healthy)
        no_incremental = Signals(hash_nodes_hashed=90, hash_nodes_skipped=10)
        assert not self.diagnose_signals(no_incremental)

    def test_thresholds_are_configurable(self):
        config = DoctorConfig(quarantine_min_count=1, quarantine_min_ratio=0.01)
        signals = Signals(events_fired=100, events_quarantined=1)
        assert rules_of(self.diagnose_signals(signals, config)) == {"quarantine-storm"}


# -- signal extraction -----------------------------------------------------------------


class TestSignals:
    def test_from_events_accepts_a_generator(self):
        recorder = Recorder(clock=SimClock(), spans=True)
        with recorder.span("partition", partition=1):
            recorder.clock.advance(5.0)
            recorder.emit("retry", url="u", attempt=1, backoff_ms=10.0)
        # A one-shot iterable must still feed both extraction passes.
        signals = signals_from_events(iter(recorder.events))
        assert signals.retries == 1
        assert signals.partition_durations == [(1, pytest.approx(5.0))]

    def test_from_events_counts_cached_xhr_separately(self):
        recorder = Recorder(clock=SimClock())
        recorder.emit("xhr_call", url="u")
        recorder.emit("xhr_call", url="u", from_cache=True)
        recorder.emit("page_fetch", url="u")
        signals = signals_from_events(recorder.events)
        assert signals.network_requests == 2  # cache hits are not requests

    def test_from_metrics_registry_and_snapshot_agree(self):
        registry = MetricsRegistry()
        registry.inc("crawl.events_invoked", 10)
        registry.inc("crawl.events_quarantined", 4)
        registry.inc("net.retries", 3)
        registry.inc("net.page_fetches", 5)
        registry.inc("net.ajax_calls", 5)
        from_registry = signals_from_metrics(registry)
        from_snapshot = signals_from_metrics(registry.snapshot())
        for signals in (from_registry, from_snapshot):
            assert signals.events_fired == 10
            assert signals.events_quarantined == 4
            assert signals.retries == 3
            assert signals.network_requests == 10

    def test_merge_max_reconciles_sources(self):
        a = Signals(events_fired=10, retries=1)
        b = Signals(events_fired=4, retries=9)
        a.merge_max(b)
        assert a.events_fired == 10
        assert a.retries == 9

    def test_merge_max_keeps_existing_partition_durations(self):
        a = Signals(partition_durations=[(1, 5.0)])
        a.merge_max(Signals(partition_durations=[(2, 9.0)]))
        assert a.partition_durations == [(1, 5.0)]

    def test_from_parallel_duck_typing(self):
        class FakeRun:
            partition_numbers = [2, 1]
            partition_durations_ms = [7.0, 3.0]

        signals = signals_from_parallel(FakeRun())
        assert signals.partition_durations == [(1, 3.0), (2, 7.0)]


# -- end-to-end diagnoses --------------------------------------------------------------


class TestDiagnose:
    def test_clean_webmail_golden_has_zero_findings(self):
        events = from_jsonl(golden_path("webmail_spans").read_text(encoding="utf-8"))
        assert diagnose(events=events) == []

    def test_clean_webmail_crawl_has_zero_findings(self):
        site = SyntheticWebmail()
        recorder = Recorder(clock=SimClock(), spans=True)
        crawler = AjaxCrawler(
            site, CrawlerConfig(), clock=recorder.clock,
            cost_model=CostModel(), recorder=recorder,
        )
        result = crawler.crawl([site.inbox_url])
        findings = diagnose(events=recorder.events, metrics=result.report.registry)
        assert findings == [], format_findings(findings)

    def test_seeded_fault_storm_is_diagnosed(self):
        site = SyntheticWebmail()
        plan = FaultPlan([FaultRule("/folder", rate=1.0)], seed=1)
        recorder = Recorder(clock=SimClock(), spans=True)
        crawler = AjaxCrawler(
            FaultInjector(site, plan),
            CrawlerConfig(retry_max_attempts=2),
            clock=recorder.clock,
            cost_model=CostModel(),
            recorder=recorder,
        )
        crawler.crawl([site.inbox_url])
        findings = diagnose(events=recorder.events)
        assert "quarantine-storm" in rules_of(findings)
        storm = next(f for f in findings if f.rule == "quarantine-storm")
        assert storm.severity == "critical"
        assert storm.signal >= storm.threshold

    def test_forced_partition_skew_is_diagnosed(self):
        site = SyntheticYouTube(SiteConfig(num_videos=6, seed=7))
        crawler = MPAjaxCrawler(site, num_proc_lines=2)
        run = crawler.run_simulated(
            [[site.video_url(i) for i in range(5)], [site.video_url(5)]]
        )
        findings = diagnose(parallel=run)
        assert "partition-skew" in rules_of(findings)
        skew = next(f for f in findings if f.rule == "partition-skew")
        assert skew.evidence["straggler_partition"] == 1

    def test_format_findings_healthy_and_sick(self):
        assert "healthy" in format_findings([])
        findings = diagnose(
            events=[], metrics={"counters": {
                "crawl.events_invoked": 10, "crawl.events_quarantined": 9,
            }},
        )
        text = format_findings(findings)
        assert "quarantine-storm" in text
        assert "action:" in text
