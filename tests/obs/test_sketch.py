"""QuantileSketch: relative-error bound, exact merge, serialization.

The two properties the serving tier leans on (hypothesis-verified):

* **relative error** — for any stream and any quantile, the sketch's
  estimate is within ``relative_accuracy`` of the exact nearest-rank
  value under the same rank rule as ``loadtest.percentile``;
* **merge insensitivity** — splitting a stream into arbitrary chunks
  and merging the chunk sketches in any order reproduces the
  single-sketch state exactly (bucket-wise, not approximately).
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    merge_sketches,
    nearest_rank,
)
from repro.serve.loadtest import percentile

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def exact(values, fraction):
    return percentile(sorted(values), fraction)


class TestAccuracy:
    @given(values_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_quantile_within_relative_error(self, values, fraction):
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        estimate = sketch.quantile(fraction)
        truth = exact(values, fraction)
        assert abs(estimate - truth) <= sketch.relative_accuracy * truth + 1e-9

    def test_matches_loadtest_percentile_rule(self):
        # The rank rule itself must agree with the sort-based helper the
        # sketch replaced, index for index.
        for count in (1, 2, 3, 10, 99, 100):
            values = sorted(float(i + 1) for i in range(count))
            for fraction in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
                rank = nearest_rank(count, fraction)
                assert values[rank] == percentile(values, fraction)

    def test_empty_sketch_quantile_is_zero(self):
        assert QuantileSketch().quantile(0.5) == 0.0

    def test_zero_values_tracked_exactly(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(100.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.zero_count == 10
        assert sketch.min == 0.0
        assert sketch.max == 100.0

    def test_rejects_negative_values_and_bad_fractions(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.observe(-1.0)
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(-0.1)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)

    def test_mean_min_max_are_exact(self):
        sketch = QuantileSketch()
        for value in (1.0, 2.0, 3.0, 10.0):
            sketch.observe(value)
        assert sketch.mean == 4.0
        assert sketch.min == 1.0
        assert sketch.max == 10.0
        assert len(sketch) == 4


class TestMerge:
    @given(values_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_merge_is_split_and_order_insensitive(self, values, rng):
        whole = QuantileSketch()
        for value in values:
            whole.observe(value)

        # Random split into chunks, shuffled merge order.
        chunks: list[list[float]] = [[]]
        for value in values:
            if chunks[-1] and rng.random() < 0.3:
                chunks.append([])
            chunks[-1].append(value)
        sketches = []
        for chunk in chunks:
            sketch = QuantileSketch()
            for value in chunk:
                sketch.observe(value)
            sketches.append(sketch)
        rng.shuffle(sketches)
        merged = merge_sketches(sketches)

        assert merged.buckets == whole.buckets
        assert merged.zero_count == whole.zero_count
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max

    def test_merge_rejects_mixed_accuracies(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merge_sketches_empty_input(self):
        merged = merge_sketches([])
        assert merged.count == 0
        assert merged.relative_accuracy == DEFAULT_RELATIVE_ACCURACY


class TestSerialization:
    @given(values_strategy)
    @settings(max_examples=50)
    def test_round_trip_is_exact_and_json_able(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        data = json.loads(json.dumps(sketch.to_dict()))
        restored = QuantileSketch.from_dict(data)
        assert restored.buckets == sketch.buckets
        assert restored.count == sketch.count
        assert restored.zero_count == sketch.zero_count
        assert restored.min == sketch.min
        assert restored.max == sketch.max
        for fraction in (0.5, 0.95, 0.99):
            assert restored.quantile(fraction) == sketch.quantile(fraction)

    def test_summary_keys(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        summary = sketch.summary(quantiles=(0.5, 0.999))
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p99.9"}
