"""Tests for the trace-event bus: recorder, sinks, serialization."""

import json

import pytest

from repro.clock import SimClock
from repro.obs import (
    EVENT_KINDS,
    JsonlTraceSink,
    MemorySink,
    NULL_RECORDER,
    NullRecorder,
    PAGE_FETCH,
    Recorder,
    RETRY,
    TraceEvent,
    XHR_CALL,
    diff_traces,
    format_summary,
    from_jsonl,
    normalize_lines,
    summarize,
    to_jsonl,
)


class TestTraceEvent:
    def test_canonical_json_is_sorted_and_compact(self):
        event = TraceEvent(seq=3, t_ms=1.5, kind=PAGE_FETCH, fields={"url": "u", "bytes": 9})
        line = event.to_json()
        assert line == '{"bytes":9,"kind":"page_fetch","seq":3,"t_ms":1.5,"url":"u"}'

    def test_json_round_trip(self):
        event = TraceEvent(seq=0, t_ms=0.0, kind=XHR_CALL, fields={"url": "u", "from_cache": True})
        back = TraceEvent.from_json(event.to_json())
        assert back == event

    def test_jsonl_round_trip_preserves_order(self):
        events = [
            TraceEvent(seq=i, t_ms=float(i), kind=PAGE_FETCH, fields={"url": f"u{i}"})
            for i in range(5)
        ]
        assert from_jsonl(to_jsonl(events)) == events

    def test_kind_vocabulary_is_unique(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS))


class TestRecorder:
    def test_seq_is_monotonic_from_zero(self):
        recorder = Recorder(clock=SimClock())
        for _ in range(4):
            recorder.emit(PAGE_FETCH, url="u")
        assert [event.seq for event in recorder.events] == [0, 1, 2, 3]

    def test_events_stamped_with_virtual_clock(self):
        clock = SimClock()
        recorder = Recorder(clock=clock)
        recorder.emit(PAGE_FETCH, url="u")
        clock.advance(250.0, "network")
        recorder.emit(PAGE_FETCH, url="u")
        assert [event.t_ms for event in recorder.events] == [0.0, 250.0]

    def test_bind_clock_only_binds_once(self):
        recorder = Recorder()
        first, second = SimClock(), SimClock()
        recorder.bind_clock(first)
        recorder.bind_clock(second)
        assert recorder.clock is first

    def test_rebind_clock_forces_new_clock(self):
        recorder = Recorder(clock=SimClock())
        fresh = SimClock()
        recorder.rebind_clock(fresh)
        assert recorder.clock is fresh

    def test_memory_sink_is_default(self):
        recorder = Recorder(clock=SimClock())
        assert isinstance(recorder.sink, MemorySink)


class TestNullRecorder:
    def test_disabled_and_emits_nothing(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.emit(PAGE_FETCH, url="u") is None
        assert NULL_RECORDER.events == []

    def test_shared_singleton_stays_clockless(self):
        NullRecorder().bind_clock(SimClock())
        assert NULL_RECORDER.clock is None


class TestJsonlSink:
    def test_streams_events_to_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        recorder = Recorder(clock=SimClock(), sink=sink)
        recorder.emit(PAGE_FETCH, url="a")
        recorder.emit(XHR_CALL, url="b", from_cache=False)
        recorder.close()
        events = from_jsonl(path.read_text(encoding="utf-8"))
        assert [event.kind for event in events] == [PAGE_FETCH, XHR_CALL]

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write(TraceEvent(0, 0.0, PAGE_FETCH))


class TestNormalizer:
    def test_masks_dropped_fields_but_keeps_presence(self):
        line = TraceEvent(0, 1.0, PAGE_FETCH, {"url": "u", "latency_ms": 7.25}).to_json()
        (normalized,) = normalize_lines([line], drop_fields=("latency_ms",))
        payload = json.loads(normalized)
        assert payload["latency_ms"] == "*"
        assert payload["url"] == "u"

    def test_rounds_floats(self):
        line = TraceEvent(0, 1.23456789, PAGE_FETCH, {"x": 0.123456789}).to_json()
        (normalized,) = normalize_lines([line], round_floats=3)
        payload = json.loads(normalized)
        assert payload["t_ms"] == 1.235
        assert payload["x"] == 0.123

    def test_skips_blank_lines(self):
        line = TraceEvent(0, 0.0, PAGE_FETCH).to_json()
        assert len(normalize_lines(["", line, "  "])) == 1


class TestDiff:
    def test_identical_traces_produce_no_problems(self):
        lines = [TraceEvent(i, 0.0, PAGE_FETCH, {"url": "u"}).to_json() for i in range(3)]
        assert diff_traces(lines, list(lines)) == []

    def test_mismatch_names_event_index_and_both_lines(self):
        expected = [TraceEvent(i, 0.0, PAGE_FETCH, {"url": "u"}).to_json() for i in range(3)]
        actual = list(expected)
        actual[1] = TraceEvent(1, 0.0, RETRY, {"url": "u"}).to_json()
        problems = diff_traces(expected, actual)
        text = "\n".join(problems)
        assert "event #1 differs" in text
        assert "page_fetch" in text and "retry" in text

    def test_length_mismatch_reported(self):
        lines = [TraceEvent(i, 0.0, PAGE_FETCH).to_json() for i in range(3)]
        problems = diff_traces(lines, lines[:2])
        assert any("length differs" in problem for problem in problems)


class TestSummary:
    def test_counts_span_and_urls(self):
        events = [
            TraceEvent(0, 100.0, PAGE_FETCH, {"url": "a"}),
            TraceEvent(1, 300.0, XHR_CALL, {"url": "a"}),
            TraceEvent(2, 600.0, XHR_CALL, {"url": "b"}),
        ]
        summary = summarize(events)
        assert summary["events"] == 3
        assert summary["by_kind"] == {PAGE_FETCH: 1, XHR_CALL: 2}
        assert summary["span_ms"] == 500.0
        assert summary["distinct_urls"] == 2
        assert summary["busiest_urls"][0] == ("a", 2)

    def test_format_summary_is_readable(self):
        text = format_summary(summarize([TraceEvent(0, 0.0, PAGE_FETCH, {"url": "u"})]))
        assert "events:" in text and "page_fetch" in text
