"""Sink/recorder lifecycle: traces survive crashes, handles don't leak."""

import pytest

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs.events import from_jsonl
from repro.obs.recorder import JsonlTraceSink, Recorder
from repro.obs.spans import SpanTree
from repro.sites import SyntheticWebmail


class TestJsonlTraceSink:
    def test_context_manager_closes_on_exit(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            recorder = Recorder(clock=SimClock(), sink=sink)
            recorder.emit("page_fetch", url="u")
        assert sink._handle is None
        assert len(from_jsonl(path.read_text(encoding="utf-8"))) == 1

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        recorder = Recorder(clock=SimClock(), sink=sink)
        with pytest.raises(ValueError, match="already closed"):
            recorder.emit("page_fetch", url="u")

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_flush_after_close_is_harmless(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.flush()

    def test_exception_inside_with_still_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(path) as sink:
                Recorder(clock=SimClock(), sink=sink).emit("retry", url="u")
                raise RuntimeError("crawl died")
        assert sink._handle is None
        assert len(from_jsonl(path.read_text(encoding="utf-8"))) == 1


class TestRecorderLifecycle:
    def test_recorder_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Recorder(clock=SimClock(), sink=JsonlTraceSink(path)) as recorder:
            recorder.emit("page_fetch", url="u")
        with pytest.raises(ValueError):
            recorder.emit("page_fetch", url="v")

    def test_faulty_crawl_trace_is_flushed_and_diagnosable(self, tmp_path):
        """A crawl that dies mid-run must leave a parseable trace behind."""
        path = tmp_path / "t.jsonl"
        site = SyntheticWebmail()
        plan = FaultPlan([FaultRule("/folder", rate=1.0)], seed=1)
        with pytest.raises(RuntimeError):
            with Recorder(
                clock=SimClock(), sink=JsonlTraceSink(path), spans=True
            ) as recorder:
                crawler = AjaxCrawler(
                    FaultInjector(site, plan),
                    CrawlerConfig(retry_max_attempts=2),
                    clock=recorder.clock,
                    cost_model=CostModel(),
                    recorder=recorder,
                )
                crawler.crawl([site.inbox_url])
                raise RuntimeError("operator pulled the plug")
        events = from_jsonl(path.read_text(encoding="utf-8"))
        assert any(event.kind == "retry" for event in events)
        # Lenient tree building works on whatever was flushed.
        tree = SpanTree.from_events(events, strict=False)
        assert tree.roots

    def test_truncated_trace_builds_lenient_tree(self, tmp_path):
        """Simulate a crash between span_start and span_end: the file
        holds an unclosed span, which lenient mode reports but keeps."""
        path = tmp_path / "t.jsonl"
        recorder = Recorder(clock=SimClock(), sink=JsonlTraceSink(path), spans=True)
        span = recorder.span("crawl")
        span.__enter__()
        recorder.emit("page_fetch", url="u")
        recorder.close()  # crash: span never ends
        events = from_jsonl(path.read_text(encoding="utf-8"))
        tree = SpanTree.from_events(events, strict=False)
        assert len(tree.problems) == 1
        (root,) = tree.roots
        assert not root.closed
        assert [e.kind for e in root.events] == ["page_fetch"]
