"""Edge cases of the golden-trace comparison primitives."""

from repro.clock import SimClock
from repro.obs.events import TraceEvent, to_jsonl
from repro.obs.recorder import Recorder
from repro.obs.trace import diff_traces, normalize_lines


def lines_of(*events):
    return to_jsonl(list(events)).splitlines()


class TestNormalizeLines:
    def test_empty_input(self):
        assert normalize_lines([]) == []

    def test_blank_lines_dropped(self):
        lines = normalize_lines(["", "  ", '{"seq":0,"t_ms":0.0,"kind":"retry"}'])
        assert len(lines) == 1

    def test_drop_fields_masks_value_but_asserts_presence(self):
        event = TraceEvent(0, 0.0, "page_fetch", {"url": "u", "latency_ms": 3.25})
        (line,) = normalize_lines(lines_of(event), drop_fields=("latency_ms",))
        assert '"latency_ms":"*"' in line
        assert '"url":"u"' in line

    def test_round_floats_canonicalizes_repr_drift(self):
        a = TraceEvent(0, 0.1234567891, "retry", {"backoff_ms": 10.00000049})
        b = TraceEvent(0, 0.1234567222, "retry", {"backoff_ms": 10.00000001})
        assert normalize_lines(lines_of(a)) == normalize_lines(lines_of(b))

    def test_round_floats_none_keeps_exact_values(self):
        event = TraceEvent(0, 0.123456789, "retry", {})
        (line,) = normalize_lines(lines_of(event), round_floats=None)
        assert "0.123456789" in line

    def test_non_float_fields_untouched(self):
        event = TraceEvent(0, 0.0, "event_fired", {"attempt": 3, "ok": True})
        (line,) = normalize_lines(lines_of(event))
        assert '"attempt":3' in line
        assert '"ok":true' in line


class TestDiffTraces:
    def test_equal_traces_no_problems(self):
        lines = ['{"kind":"retry","seq":0,"t_ms":0.0}']
        assert diff_traces(lines, lines) == []

    def test_both_empty(self):
        assert diff_traces([], []) == []

    def test_length_mismatch_reported_with_tail(self):
        base = ['{"kind":"retry","seq":0,"t_ms":0.0}']
        extra = base + ['{"kind":"retry","seq":1,"t_ms":1.0}']
        problems = diff_traces(base, extra)
        assert any("length differs" in p for p in problems)
        assert any("unexpected extra" in p for p in problems)
        problems = diff_traces(extra, base)
        assert any("missing from actual" in p for p in problems)

    def test_mismatch_shows_both_lines_and_context(self):
        expected = [f'{{"kind":"retry","seq":{i},"t_ms":0.0}}' for i in range(4)]
        actual = list(expected)
        actual[2] = '{"kind":"xhr_call","seq":2,"t_ms":0.0}'
        problems = diff_traces(expected, actual)
        assert any("event #2 differs" in p for p in problems)
        assert any(p.strip().startswith("- expected") for p in problems)
        assert any(p.strip().startswith("+ actual") for p in problems)
        assert any(p.strip().startswith("=") for p in problems)  # context line

    def test_mismatch_cap_suppresses_the_tail(self):
        expected = [f'{{"kind":"a","seq":{i},"t_ms":0.0}}' for i in range(30)]
        actual = [f'{{"kind":"b","seq":{i},"t_ms":0.0}}' for i in range(30)]
        problems = diff_traces(expected, actual, max_mismatches=3)
        assert problems[-1] == "... further mismatches suppressed"

    def test_equal_clock_events_compare_in_seq_order(self):
        """Events at the same virtual instant are still strictly ordered
        by seq, so reordering them is a detected difference, not drift."""
        recorder = Recorder(clock=SimClock())
        recorder.emit("event_fired", state_id="s1")
        recorder.emit("event_fired", state_id="s2")
        lines = normalize_lines(to_jsonl(recorder.events).splitlines())
        swapped = [lines[1], lines[0]]
        assert diff_traces(lines, swapped)

    def test_normalized_traces_diff_clean_after_masking(self):
        a = TraceEvent(0, 5.0, "page_fetch", {"url": "u", "latency_ms": 1.0})
        b = TraceEvent(0, 5.0, "page_fetch", {"url": "u", "latency_ms": 2.0})
        masked_a = normalize_lines(lines_of(a), drop_fields=("latency_ms",))
        masked_b = normalize_lines(lines_of(b), drop_fields=("latency_ms",))
        assert diff_traces(masked_a, masked_b) == []
        # Without masking the same pair differs.
        assert diff_traces(normalize_lines(lines_of(a)), normalize_lines(lines_of(b)))
