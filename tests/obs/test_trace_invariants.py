"""Cross-event trace invariants over seeded crawls.

These assert the *relationships* the event vocabulary promises, over a
spread of random corpora and fault schedules:

* Every event-firing that changed the DOM (and was not quarantined)
  resolves to exactly one of: a discovered state, a duplicate state, or
  a cap rejection.
* With the hot-node cache active, every XHR send is classified as a
  cache hit or a cache miss; fault-free, hits + misses equals the
  ``xhr_call`` count, and under faults the misses whose network request
  ultimately failed show up as ``request_failed(request_kind=ajax)``
  instead.
* Retries never dangle: each ``retry`` is followed by a terminal event
  (success or exhaustion) carrying the same request id.
"""

import pytest

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import (
    EVENT_FIRED,
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    PAGE_FETCH,
    RETRY,
    REQUEST_FAILED,
    Recorder,
    STATE_CAPPED,
    STATE_DISCOVERED,
    STATE_DUPLICATE,
    XHR_CALL,
)
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube


def traced_crawl(site, urls, config=CrawlerConfig(), plan=None):
    server = FaultInjector(site, plan) if plan is not None else site
    recorder = Recorder(clock=SimClock())
    crawler = AjaxCrawler(
        server, config, clock=recorder.clock, cost_model=CostModel(), recorder=recorder
    )
    crawler.crawl(urls)
    return recorder.events


def count(events, kind, **fields):
    total = 0
    for event in events:
        if event.kind != kind:
            continue
        if all(event.fields.get(name) == value for name, value in fields.items()):
            total += 1
    return total


def corpora(seed):
    site = SyntheticYouTube(SiteConfig(num_videos=4, seed=seed))
    return site, [site.video_url(i) for i in range(3)]


class TestStateAccounting:
    @pytest.mark.parametrize("seed", [3, 7, 21, 42])
    def test_every_dom_change_is_classified(self, seed):
        site, urls = corpora(seed)
        events = traced_crawl(site, urls)
        changed = count(events, EVENT_FIRED, changed=True, quarantined=False)
        discovered = count(events, STATE_DISCOVERED, via_event=True)
        duplicates = count(events, STATE_DUPLICATE)
        capped = count(events, STATE_CAPPED)
        assert discovered + duplicates + capped == changed

    def test_initial_states_are_discovered_without_an_event(self):
        site, urls = corpora(7)
        events = traced_crawl(site, urls)
        assert count(events, STATE_DISCOVERED, via_event=False) == len(urls)

    def test_cap_rejections_fire_state_capped(self):
        # Video 8 of this corpus has six comment pages — far more fresh
        # states than a cap of 2 admits (hints off to hit the raw cap).
        site = SyntheticYouTube(SiteConfig(num_videos=10, seed=7))
        urls = [site.video_url(8)]
        events = traced_crawl(
            site,
            urls,
            config=CrawlerConfig(
                max_additional_states=2, respect_granularity_hints=False
            ),
        )
        assert count(events, STATE_CAPPED) > 0
        changed = count(events, EVENT_FIRED, changed=True, quarantined=False)
        classified = (
            count(events, STATE_DISCOVERED, via_event=True)
            + count(events, STATE_DUPLICATE)
            + count(events, STATE_CAPPED)
        )
        assert classified == changed


class TestCacheAccounting:
    @pytest.mark.parametrize("seed", [3, 7, 21, 42])
    def test_fault_free_hits_plus_misses_equals_xhr_calls(self, seed):
        site, urls = corpora(seed)
        events = traced_crawl(site, urls)
        hits = count(events, HOTNODE_CACHE_HIT)
        misses = count(events, HOTNODE_CACHE_MISS)
        assert hits + misses == count(events, XHR_CALL)
        # Cache-served and network-served calls partition the total.
        assert hits == count(events, XHR_CALL, from_cache=True)
        assert misses == count(events, XHR_CALL, from_cache=False)

    def test_under_faults_failed_ajax_requests_close_the_gap(self):
        # The comment-heavy video makes XHR traffic, and a high fault
        # rate makes both attempts of some request fail (exhaustion).
        site = SyntheticYouTube(SiteConfig(num_videos=10, seed=7))
        urls = [site.video_url(8), site.video_url(9)]
        plan = FaultPlan([FaultRule(r"/comments", rate=0.8, status=503)], seed=5)
        events = traced_crawl(
            site, urls, config=CrawlerConfig(retry_max_attempts=2), plan=plan
        )
        hits = count(events, HOTNODE_CACHE_HIT)
        misses = count(events, HOTNODE_CACHE_MISS)
        failed_ajax = count(events, REQUEST_FAILED, request_kind="ajax")
        assert failed_ajax > 0  # the schedule actually exercised the gap
        assert hits + misses == count(events, XHR_CALL) + failed_ajax


class TestRetryCorrelation:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_every_retry_reaches_a_terminal_event(self, seed):
        site, urls = corpora(seed)
        plan = FaultPlan(
            [
                FaultRule(r"/comments", rate=0.5, status=503),
                FaultRule(r"/watch", rate=0.2, status=500),
            ],
            seed=seed,
        )
        events = traced_crawl(
            site, urls, config=CrawlerConfig(retry_max_attempts=3), plan=plan
        )
        retried = [e for e in events if e.kind == RETRY]
        assert retried  # the plan actually caused retries
        terminal_kinds = (PAGE_FETCH, XHR_CALL, REQUEST_FAILED)
        by_request: dict[int, list] = {}
        for event in events:
            request_id = event.fields.get("request_id")
            if request_id is not None:
                by_request.setdefault(request_id, []).append(event)
        for retry in retried:
            stream = by_request[retry.fields["request_id"]]
            followers = [e for e in stream if e.seq > retry.seq]
            assert followers, f"retry {retry} dangles"
            assert followers[-1].kind in terminal_kinds
        # Exactly one terminal event per request id, ever.
        for request_id, stream in by_request.items():
            terminals = [e for e in stream if e.kind in terminal_kinds]
            assert len(terminals) == 1, f"request {request_id}: {terminals}"


class TestWebmailSafety:
    def test_quarantined_events_never_mint_states(self):
        site = SyntheticWebmail()
        recorder_events = traced_crawl(site, [site.inbox_url])
        quarantined = count(recorder_events, EVENT_FIRED, quarantined=True)
        changed = count(recorder_events, EVENT_FIRED, changed=True, quarantined=False)
        classified = (
            count(recorder_events, STATE_DISCOVERED, via_event=True)
            + count(recorder_events, STATE_DUPLICATE)
            + count(recorder_events, STATE_CAPPED)
        )
        assert classified == changed
        # Quarantined firings are observed but excluded from the model.
        assert quarantined + changed <= count(recorder_events, EVENT_FIRED)
