"""Component profiles, flamegraph exports and critical-path analysis."""

import json

import pytest

from repro.clock import SimClock
from repro.obs.profile import (
    PartitionCost,
    critical_path,
    critical_path_from_spans,
    critical_path_report,
    folded_stacks,
    format_component_table,
    format_critical_path,
    format_folded,
    hotnode_attribution,
    profile_components,
    to_speedscope,
)
from repro.obs.recorder import Recorder
from repro.obs.spans import SpanTree
from repro.parallel import MPAjaxCrawler, MachineModel
from repro.sites import SiteConfig, SyntheticYouTube


def build_tree():
    """crawl(10ms excl 3) > page(7ms excl 2) > [fetch 5ms, js 0ms open-free]."""
    recorder = Recorder(clock=SimClock(), spans=True)
    with recorder.span("crawl"):
        recorder.clock.advance(1.0)
        with recorder.span("page", url="http://a/"):
            with recorder.span("fetch", url="http://a/"):
                recorder.clock.advance(5.0)
                recorder.emit("page_fetch", url="http://a/", bytes=700)
            recorder.clock.advance(2.0)
        recorder.clock.advance(2.0)
    return SpanTree.from_events(recorder.events)


# -- component profile -----------------------------------------------------------------


class TestComponents:
    def test_attribution_sums_and_sorts(self):
        rows = profile_components(build_tree())
        by_kind = {row.kind: row for row in rows}
        assert by_kind["crawl"].inclusive_ms == pytest.approx(10.0)
        assert by_kind["crawl"].exclusive_ms == pytest.approx(3.0)
        assert by_kind["page"].exclusive_ms == pytest.approx(2.0)
        assert by_kind["fetch"].exclusive_ms == pytest.approx(5.0)
        # page_fetch bytes land on the span that owns the point event.
        assert by_kind["fetch"].network_bytes == 700
        assert by_kind["fetch"].network_calls == 1
        assert by_kind["page"].network_calls == 0
        # Sorted by exclusive time, descending.
        assert [row.kind for row in rows][0] == "fetch"

    def test_errors_counted(self):
        recorder = Recorder(clock=SimClock(), spans=True)
        with pytest.raises(RuntimeError):
            with recorder.span("page"):
                raise RuntimeError
        tree = SpanTree.from_events(recorder.events)
        (row,) = profile_components(tree)
        assert row.errors == 1

    def test_table_renders_every_kind(self):
        text = format_component_table(profile_components(build_tree()))
        for kind in ("crawl", "page", "fetch"):
            assert kind in text


# -- flamegraph exports ------------------------------------------------------------------


class TestFlame:
    def test_folded_stacks_weights_are_exclusive_microseconds(self):
        folded = folded_stacks(build_tree())
        assert folded == {
            "crawl": 3000,
            "crawl;page:http://a/": 2000,
            "crawl;page:http://a/;fetch": 5000,
        }

    def test_folded_total_equals_root_inclusive(self):
        tree = build_tree()
        assert sum(folded_stacks(tree).values()) == pytest.approx(
            tree.roots[0].inclusive_ms * 1000.0
        )

    def test_format_folded_is_sorted_lines(self):
        lines = format_folded(folded_stacks(build_tree())).splitlines()
        assert lines == sorted(lines)
        assert lines[0].endswith(" 3000")

    def test_speedscope_document_shape(self):
        doc = to_speedscope(build_tree(), name="t")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        labels = [frame["name"] for frame in doc["shared"]["frames"]]
        assert "page:http://a/" in labels
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        # Opens and closes are balanced and properly bracketed.
        opens = [e for e in profile["events"] if e["type"] == "O"]
        closes = [e for e in profile["events"] if e["type"] == "C"]
        assert len(opens) == len(closes) == 3
        assert profile["events"][0]["type"] == "O"
        assert profile["events"][-1]["type"] == "C"
        json.dumps(doc)  # must be serializable as-is

    def test_speedscope_one_profile_per_root(self):
        recorder = Recorder(clock=SimClock(), spans=True)
        with recorder.span("partition", partition=1):
            pass
        recorder.rebind_clock(SimClock())  # fresh partition clock
        with recorder.span("partition", partition=2):
            pass
        doc = to_speedscope(SpanTree.from_events(recorder.events))
        assert len(doc["profiles"]) == 2


def test_hotnode_attribution_groups_by_signature():
    recorder = Recorder(clock=SimClock())
    recorder.emit("hotnode_cache_hit", signature="GET /a")
    recorder.emit("hotnode_cache_hit", signature="GET /a")
    recorder.emit("hotnode_cache_miss", signature="GET /a")
    recorder.emit("hotnode_cache_miss", signature="GET /b")
    rows = hotnode_attribution(recorder.events)
    assert [(r.signature, r.hits, r.misses) for r in rows] == [
        ("GET /a", 2, 1),
        ("GET /b", 0, 1),
    ]
    assert rows[0].hit_rate == pytest.approx(2 / 3)


# -- critical path -----------------------------------------------------------------------


def oracle_schedule(durations, num_lines):
    """An independent earliest-free-line replay (kept deliberately dumb)."""
    lines = [0.0] * num_lines
    for duration in durations:
        best = 0
        for i in range(1, num_lines):
            if lines[i] < lines[best]:
                best = i
        lines[best] += duration
    return lines


class TestCriticalPath:
    def test_matches_oracle_schedule(self):
        durations = [9.0, 3.0, 4.0, 8.0, 2.0, 7.0]
        costs = [PartitionCost(i + 1, d) for i, d in enumerate(durations)]
        report = critical_path(costs, num_lines=2)
        expected = oracle_schedule(durations, 2)
        assert report.line_finish_ms == pytest.approx(expected)
        assert report.makespan_ms == pytest.approx(max(expected))
        assert report.straggler_partition == 1  # the 9.0ms one
        assert report.skew == pytest.approx(9.0 / (sum(durations) / len(durations)))

    def test_report_matches_simulated_run_and_machine_model(self):
        site = SyntheticYouTube(SiteConfig(num_videos=6, seed=7))
        machine = MachineModel()
        crawler = MPAjaxCrawler(site, num_proc_lines=3, machine=machine)
        partitions = [[site.video_url(i), site.video_url(i + 1)] for i in (0, 2, 4)]
        run = crawler.run_simulated(partitions)
        report = critical_path_report(run)
        # The replay must reproduce the scheduler's own accounting.
        assert report.makespan_ms == pytest.approx(run.makespan_ms)
        assert report.line_finish_ms == pytest.approx(run.line_finish_ms)
        # And the durations must decompose per the machine model.
        stretch = machine.cpu_stretch(3)
        for summary, duration in zip(run.summaries, run.partition_durations_ms):
            assert duration == pytest.approx(
                machine.process_startup_ms
                + summary.network_time_ms
                + summary.cpu_time_ms * stretch
            )

    def test_straggler_share_and_critical_line(self):
        costs = [PartitionCost(1, 10.0), PartitionCost(2, 1.0), PartitionCost(3, 1.0)]
        report = critical_path(costs, num_lines=2)
        # L0 gets partition 1 (10ms); L1 gets 2 then 3 (2ms total).
        assert report.assignments == [0, 1, 1]
        assert report.critical_line == 0
        assert report.critical_line_partitions == [1]
        assert report.straggler_share == pytest.approx(1.0)

    def test_from_partition_spans(self):
        recorder = Recorder(clock=SimClock(), spans=True)
        with recorder.span("partition", partition=1):
            recorder.clock.advance(40.0)
        recorder.rebind_clock(SimClock())
        with recorder.span("partition", partition=2):
            recorder.clock.advance(10.0)
        tree = SpanTree.from_events(recorder.events)
        report = critical_path_from_spans(tree, num_lines=2)
        assert [c.partition for c in report.partitions] == [1, 2]
        assert report.makespan_ms == pytest.approx(40.0)
        assert report.straggler_partition == 1

    def test_empty_costs(self):
        report = critical_path([], num_lines=4)
        assert report.makespan_ms == 0.0
        assert report.critical_line_partitions == []

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            critical_path([], num_lines=0)

    def test_format_names_the_straggler(self):
        report = critical_path([PartitionCost(7, 5.0), PartitionCost(8, 1.0)], 2)
        text = format_critical_path(report)
        assert "straggler     : partition 7" in text
        assert "makespan" in text
