"""SLO accounting: budgets, burn rates, multi-window rule firing."""

import pytest

from repro.obs.slo import (
    BURN_RATE_RULE,
    DEFAULT_BURN_RULES,
    SLO,
    BurnRateRule,
    SLOTracker,
    burn_rate,
)


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSLO:
    def test_budget_is_complement_of_objective(self):
        assert SLO("a", objective=0.999).budget == pytest.approx(0.001)

    def test_availability_slo_counts_failures(self):
        slo = SLO("availability", objective=0.99)
        assert not slo.is_bad(ok=True, latency_ms=10_000.0)
        assert slo.is_bad(ok=False, latency_ms=0.1)

    def test_latency_slo_counts_slow_requests(self):
        slo = SLO("latency", objective=0.99, latency_ms=250.0)
        assert not slo.is_bad(ok=True, latency_ms=250.0)
        assert slo.is_bad(ok=True, latency_ms=250.1)
        # A fast failure does not spend a *latency* budget.
        assert not slo.is_bad(ok=False, latency_ms=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", objective=1.0)
        with pytest.raises(ValueError):
            SLO("x", objective=-0.1)
        with pytest.raises(ValueError):
            SLO("x", window_s=0.0)
        with pytest.raises(ValueError):
            SLO("x", latency_ms=0.0)


class TestBurnRate:
    def test_burn_one_spends_exactly_the_budget(self):
        assert burn_rate(1.0, 1000.0, 0.999) == pytest.approx(1.0)

    def test_all_bad_is_inverse_budget(self):
        assert burn_rate(10.0, 10.0, 0.999) == pytest.approx(1000.0)

    def test_empty_horizon_burns_nothing(self):
        assert burn_rate(0.0, 0.0, 0.999) == 0.0


class TestSLOTracker:
    def tracker(self, **kwargs):
        clock = Clock(1000.0)
        slo = SLO(
            "availability",
            objective=kwargs.pop("objective", 0.999),
            window_s=kwargs.pop("window_s", 3600.0),
        )
        return SLOTracker(slo, clock=clock, **kwargs), clock

    def test_healthy_stream_yields_no_findings(self):
        tracker, clock = self.tracker()
        for _ in range(100):
            tracker.record(ok=True, latency_ms=1.0)
            clock.advance(1.0)
        assert tracker.burn() == 0.0
        assert tracker.findings() == []
        status = tracker.status()
        assert status["bad"] == 0.0
        assert status["budget_spent"] == 0.0

    def test_outage_fires_both_default_rules(self):
        tracker, clock = self.tracker()
        for _ in range(50):
            tracker.record(ok=False, latency_ms=1.0)
            clock.advance(1.0)
        findings = tracker.findings()
        assert len(findings) == len(DEFAULT_BURN_RULES)
        assert {f.rule for f in findings} == {BURN_RATE_RULE}
        assert {f.severity for f in findings} == {"critical", "warning"}
        assert all(f.signal >= f.threshold for f in findings)
        assert findings[0].evidence["slo"] == "availability"

    def test_min_requests_suppresses_noise(self):
        tracker, clock = self.tracker()
        for _ in range(5):  # below the min_requests=10 floor
            tracker.record(ok=False, latency_ms=1.0)
            clock.advance(1.0)
        assert tracker.findings() == []

    def test_recovered_outage_stops_firing_when_short_horizon_clears(self):
        rules = (BurnRateRule(long_s=3600.0, short_s=300.0, max_burn=14.4),)
        tracker, clock = self.tracker(rules=rules)
        for _ in range(50):
            tracker.record(ok=False, latency_ms=1.0)
            clock.advance(1.0)
        assert tracker.findings()
        # Recover: 10 minutes of healthy traffic pushes the bad requests
        # out of the short horizon (but not the 1 h long horizon).
        for _ in range(600):
            tracker.record(ok=True, latency_ms=1.0)
            clock.advance(1.0)
        assert tracker.findings() == []
        assert tracker.burn(3600.0) > 1.0  # long horizon still remembers

    def test_status_reports_burn_per_rule(self):
        tracker, clock = self.tracker()
        tracker.record(ok=False, latency_ms=1.0)
        status = tracker.status()
        assert status["kind"] == "availability"
        assert len(status["burn"]) == len(DEFAULT_BURN_RULES)
        for block in status["burn"].values():
            assert {"short", "long", "max_burn"} <= set(block)

    def test_budget_spent_crosses_one_when_budget_exhausted(self):
        tracker, clock = self.tracker(objective=0.9)
        for index in range(100):
            tracker.record(ok=index < 80, latency_ms=1.0)
        # 20 bad of 100 with a 10% budget: spent twice over.
        assert tracker.status()["budget_spent"] == pytest.approx(2.0)
