"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("crawl.pages")
        registry.inc("crawl.pages", 2.0)
        assert registry.counter("crawl.pages") == 3.0

    def test_never_incremented_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0

    def test_labels_address_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", url="a")
        registry.inc("net.requests", url="b")
        registry.inc("net.requests", url="a")
        assert registry.counter("net.requests", url="a") == 2.0
        assert registry.counter("net.requests", url="b") == 1.0
        assert registry.counter("net.requests") == 0.0

    def test_label_order_is_canonicalized(self):
        registry = MetricsRegistry()
        registry.inc("m", a="1", b="2")
        assert registry.counter("m", b="2", a="1") == 1.0

    def test_labeled_values_pivot(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", 3, url="a")
        registry.inc("net.requests", 1, url="b")
        assert registry.labeled_values("net.requests", "url") == {"a": 3.0, "b": 1.0}


class TestGauges:
    def test_set_and_read(self):
        registry = MetricsRegistry()
        registry.set_gauge("heap.mb", 12.0)
        registry.set_gauge("heap.mb", 9.0)
        assert registry.gauge("heap.mb") == 9.0

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("nope") is None


class TestHistograms:
    def test_observe_fills_correct_bucket(self):
        histogram = Histogram(bounds=(1.0, 10.0, float("inf")))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(99.0)
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(104.5)

    def test_registry_observe_creates_default_buckets(self):
        registry = MetricsRegistry()
        registry.observe("net.latency_ms", 42.0, kind="page")
        histogram = registry.histogram("net.latency_ms", kind="page")
        assert histogram.bounds == DEFAULT_BUCKETS
        assert histogram.count == 1

    def test_merge_mismatched_bounds_raises(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("m", 2, url="x")
        b.inc("m", 3, url="x")
        b.inc("m", 1, url="y")
        a.merge(b)
        assert a.counter("m", url="x") == 5.0
        assert a.counter("m", url="y") == 1.0

    def test_gauges_keep_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 4.0)
        b.set_gauge("g", 7.0)
        b.set_gauge("only_b", 1.0)
        a.merge(b)
        assert a.gauge("g") == 7.0
        assert a.gauge("only_b") == 1.0

    def test_histograms_add_bucket_wise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 3.0)
        b.observe("h", 3.0)
        b.observe("h", 9999.0)
        a.merge(b)
        merged = a.histogram("h")
        assert merged.count == 3
        assert merged.sum == pytest.approx(10005.0)

    def test_merge_does_not_mutate_source(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("m")
        a.merge(b)
        a.inc("m")
        assert b.counter("m") == 1.0


class TestSnapshot:
    def test_label_rendering_is_canonical(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", b="2", a="1")
        registry.inc("plain")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"net.requests{a=1,b=2}": 1.0, "plain": 1.0}

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 3.0)
        payload = json.loads(registry.to_json())
        assert payload["counters"]["c"] == 2.0
        assert payload["gauges"]["g"] == 1.0
        assert payload["histograms"]["h"]["count"] == 1
