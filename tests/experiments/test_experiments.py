"""Small-scale tests of the experiment runners (shapes, not magnitudes)."""

import pytest

from repro.experiments import datasets
from repro.experiments.exp_caching import caching_study
from repro.experiments.exp_crawl import linearity_correlation, table_7_2
from repro.experiments.exp_dataset import figure_7_1, figure_7_2, table_7_1
from repro.experiments.exp_query import table_7_4
from repro.experiments.exp_threshold import (
    crawl_threshold,
    recall_threshold,
    threshold_study,
)
from repro.experiments.harness import format_table

# Whole-module experiment reproductions: the heaviest suites in the
# repo, excluded from the `make test-fast` inner loop.
pytestmark = pytest.mark.slow

SMALL = 40


class TestDatasetExperiments:
    def test_table_7_1_small(self):
        stats = table_7_1(num_videos=SMALL)
        assert stats.num_pages == SMALL
        assert stats.total_states >= SMALL
        assert stats.total_events >= stats.total_states - SMALL
        assert 0 <= stats.events_leading_to_network <= stats.total_events
        assert stats.network_reduction > 0.3

    def test_figure_7_1_sums(self):
        histogram = figure_7_1(num_videos=SMALL)
        assert sum(histogram.values()) == SMALL

    def test_figure_7_2_prefix_sums(self):
        points = figure_7_2(subset_sizes=(10, 20, 30))
        assert [p.videos for p in points] == [10, 20, 30]
        assert points[0].states <= points[1].states <= points[2].states


class TestCrawlExperiments:
    def test_table_7_2_ratios(self):
        overhead = table_7_2(num_videos=SMALL)
        assert overhead.total.ratio > 1.5
        assert overhead.per_state.ratio < overhead.per_page.ratio

    def test_linearity_correlation_bounds(self):
        from repro.experiments.exp_crawl import StateTimePoint

        linear = [
            StateTimePoint(states=k, pages=1, mean_crawl_time_ms=100.0 * k,
                           mean_processing_time_ms=50.0 * k)
            for k in range(1, 6)
        ]
        assert linearity_correlation(linear) == pytest.approx(1.0)
        assert linearity_correlation(linear[:1]) == 1.0


class TestCachingExperiments:
    def test_caching_points(self):
        points = caching_study(subset_sizes=(10, 20))
        assert [p.videos for p in points] == [10, 20]
        for point in points:
            assert point.calls_with_cache <= point.calls_without_cache
            assert point.network_ms_with_cache <= point.network_ms_without_cache
            assert point.throughput_with_cache >= point.throughput_without_cache


class TestQueryExperiments:
    def test_table_7_4_rows(self):
        rows = table_7_4(num_videos=60)
        assert len(rows) == 11
        assert all(row.all_pages >= row.first_page for row in rows)


class TestThresholdExperiments:
    @pytest.fixture(scope="class")
    def points(self):
        return threshold_study(num_videos=60, query_count=30, repeats=1)

    def test_eleven_depths(self, points):
        assert [p.states for p in points] == list(range(1, 12))

    def test_recall_gain_monotone(self, points):
        gains = [p.recall_gain for p in points]
        assert gains[0] == 0.0
        assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_thresholds_in_range(self, points):
        assert 1 <= crawl_threshold(points, limit=0.4) <= 11
        assert 1 <= recall_threshold(points, target=0.7) <= 11


class TestHarness:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bee"], [(1, 2.5), ("xx", 1000.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        from repro.experiments.harness import _cell

        assert _cell(0.0) == "0"
        assert _cell(1234.5) == "1,234"
        assert _cell(12.34) == "12.3"
        assert _cell(0.1234) == "0.123"
        assert _cell("text") == "text"


class TestDatasetCaching:
    def test_memoization_returns_same_object(self):
        one = datasets.crawl_ajax(10)
        two = datasets.crawl_ajax(10)
        assert one is two

    def test_different_configs_differ(self):
        cached = datasets.crawl_ajax(10, use_hot_node=True)
        plain = datasets.crawl_ajax(10, use_hot_node=False)
        assert cached is not plain
        assert (
            plain.report.total_ajax_calls >= cached.report.total_ajax_calls
        )
