"""Unit tests for the virtual clock and cost model."""

import random

import pytest

from repro.clock import CostModel, SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now_ms == pytest.approx(15.5)

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_accounts_are_tracked_separately(self):
        clock = SimClock()
        clock.advance(100.0, account="network")
        clock.advance(40.0, account="cpu")
        clock.advance(60.0, account="network")
        assert clock.spent_on("network") == pytest.approx(160.0)
        assert clock.spent_on("cpu") == pytest.approx(40.0)
        assert clock.now_ms == pytest.approx(200.0)

    def test_unknown_account_is_zero(self):
        assert SimClock().spent_on("nope") == 0.0

    def test_accounts_snapshot_is_a_copy(self):
        clock = SimClock()
        clock.advance(1.0, account="a")
        snapshot = clock.accounts()
        snapshot["a"] = 999.0
        assert clock.spent_on("a") == pytest.approx(1.0)

    def test_reset_clears_time_and_accounts(self):
        clock = SimClock()
        clock.advance(50.0, account="network")
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.accounts() == {}


class TestStopwatch:
    def test_measures_interval(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(25.0)
        assert watch.elapsed_ms == pytest.approx(25.0)

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(25.0)
        watch.restart()
        clock.advance(10.0)
        assert watch.elapsed_ms == pytest.approx(10.0)


class TestCostModel:
    def test_page_latency_larger_than_ajax(self):
        model = CostModel(network_jitter=0.0)
        page = model.network_latency_ms("page", body_bytes=0)
        ajax = model.network_latency_ms("ajax", body_bytes=0)
        assert page > ajax > 0

    def test_body_size_adds_cost(self):
        model = CostModel(network_jitter=0.0)
        small = model.network_latency_ms("ajax", body_bytes=0)
        large = model.network_latency_ms("ajax", body_bytes=10 * 1024)
        assert large == pytest.approx(small + 10 * model.per_kb_ms)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CostModel().network_latency_ms("carrier-pigeon", body_bytes=0)

    def test_jitter_bounded(self):
        model = CostModel(network_jitter=0.2, rng=random.Random(7))
        base = model.ajax_call_ms
        for _ in range(200):
            latency = model.network_latency_ms("ajax", body_bytes=0)
            assert 0.8 * base <= latency <= 1.2 * base

    def test_seeded_model_is_deterministic(self):
        one = CostModel(rng=random.Random(42))
        two = CostModel(rng=random.Random(42))
        seq_one = [one.network_latency_ms("page", 100) for _ in range(10)]
        seq_two = [two.network_latency_ms("page", 100) for _ in range(10)]
        assert seq_one == seq_two

    def test_js_and_parse_costs_scale_linearly(self):
        model = CostModel()
        assert model.js_execution_ms(100) == pytest.approx(100 * model.js_step_ms)
        assert model.html_parse_ms(2048) == pytest.approx(2 * model.html_parse_per_kb_ms)
