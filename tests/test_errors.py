"""Tests of the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.DomError,
            errors.JavascriptError,
            errors.NetworkError,
            errors.BrowserError,
            errors.CrawlerError,
            errors.SearchError,
            errors.PartitionError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_html_parse_is_dom_error(self):
        assert issubclass(errors.HtmlParseError, errors.DomError)

    def test_js_errors_nest(self):
        assert issubclass(errors.JsSyntaxError, errors.JavascriptError)
        assert issubclass(errors.JsRuntimeError, errors.JavascriptError)
        assert issubclass(errors.JsReferenceError, errors.JsRuntimeError)
        assert issubclass(errors.JsTypeError, errors.JsRuntimeError)

    def test_step_limit_and_thrown_are_runtime_errors(self):
        from repro.js import JsStepLimitError, JsThrownValue

        assert issubclass(JsStepLimitError, errors.JsRuntimeError)
        assert issubclass(JsThrownValue, errors.JsRuntimeError)

    def test_syntax_error_carries_position(self):
        error = errors.JsSyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_one_catch_all_for_crawl_loops(self):
        """The fault-tolerant crawl loop relies on ReproError covering
        every failure the library can raise."""
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError
