"""Unit tests for the application model (transition graph)."""

import pytest

from repro.errors import CrawlerError
from repro.model import ApplicationModel, EventAnnotation, State, Transition


URL = "http://simtube.test/watch?v=v00000"


def event(handler="nextPage()", source="#next", trigger="onclick"):
    return EventAnnotation(source=source, trigger=trigger, handler=handler)


def three_state_model():
    """s0 -> s1 -> s2 with prev edges back, like comment pagination."""
    model = ApplicationModel(URL)
    s0, _ = model.add_state("h0", "page one text")
    s1, _ = model.add_state("h1", "page two text")
    s2, _ = model.add_state("h2", "page three text")
    model.add_transition(s0, s1, event("nextPage()"))
    model.add_transition(s1, s2, event("nextPage()"))
    model.add_transition(s1, s0, event("prevPage()", source="#prev"))
    model.add_transition(s2, s1, event("prevPage()", source="#prev"))
    model.add_transition(s0, s1, event("jumpToPage(2)", source="#page2"))
    return model


class TestStates:
    def test_sequential_ids(self):
        model = ApplicationModel(URL)
        s0, created0 = model.add_state("a", "ta")
        s1, created1 = model.add_state("b", "tb")
        assert (s0.state_id, s1.state_id) == ("s0", "s1")
        assert created0 and created1

    def test_first_state_is_initial(self):
        model = ApplicationModel(URL)
        s0, _ = model.add_state("a", "ta")
        assert model.initial_state is s0

    def test_duplicate_hash_resolves_to_existing(self):
        model = ApplicationModel(URL)
        s0, _ = model.add_state("same", "text")
        dup, created = model.add_state("same", "text")
        assert dup is s0
        assert created is False
        assert model.num_states == 1

    def test_contains_and_resolve(self):
        model = ApplicationModel(URL)
        s0, _ = model.add_state("a", "t")
        assert model.contains_hash("a")
        assert not model.contains_hash("b")
        assert model.resolve_hash("a") is s0
        assert model.resolve_hash("b") is None

    def test_get_unknown_state_raises(self):
        with pytest.raises(CrawlerError):
            ApplicationModel(URL).get_state("s9")

    def test_empty_model_initial_raises(self):
        with pytest.raises(CrawlerError):
            _ = ApplicationModel(URL).initial_state

    def test_state_index(self):
        assert State("s12", "h", "t").index == 12


class TestTransitions:
    def test_transitions_recorded(self):
        model = three_state_model()
        assert model.num_transitions == 5

    def test_outgoing(self):
        model = three_state_model()
        handlers = [t.event.handler for t in model.outgoing("s0")]
        assert handlers == ["nextPage()", "jumpToPage(2)"]
        assert model.outgoing("s2")[0].event.handler == "prevPage()"
        assert model.outgoing("s99") == []

    def test_parallel_edges_allowed(self):
        """Two different events may connect the same pair of states
        (Table 2.1: next and 'page 2' both lead s1 -> s2)."""
        model = three_state_model()
        to_s1 = [t for t in model.outgoing("s0") if t.to_state == "s1"]
        assert len(to_s1) == 2


class TestEventPaths:
    def test_path_to_initial_is_empty(self):
        model = three_state_model()
        assert model.event_path_to("s0") == []

    def test_shortest_path(self):
        model = three_state_model()
        path = model.event_path_to("s2")
        assert [t.to_state for t in path] == ["s1", "s2"]
        assert all(isinstance(t, Transition) for t in path)

    def test_unreachable_state_raises(self):
        model = ApplicationModel(URL)
        model.add_state("a", "t")
        model.add_state("island", "t2")
        with pytest.raises(CrawlerError):
            model.event_path_to("s1")

    def test_unknown_state_raises(self):
        with pytest.raises(CrawlerError):
            three_state_model().event_path_to("s42")

    def test_compute_depths(self):
        model = three_state_model()
        model.compute_depths()
        depths = {s.state_id: s.depth for s in model.states()}
        assert depths == {"s0": 0, "s1": 1, "s2": 2}


class TestSerialization:
    def test_round_trip_dict(self):
        model = three_state_model()
        clone = ApplicationModel.from_dict(model.to_dict())
        assert clone.url == model.url
        assert clone.num_states == model.num_states
        assert clone.num_transitions == model.num_transitions
        assert clone.initial_state_id == model.initial_state_id
        assert [t.event.handler for t in clone.outgoing("s0")] == [
            t.event.handler for t in model.outgoing("s0")
        ]

    def test_round_trip_preserves_paths(self):
        model = three_state_model()
        clone = ApplicationModel.from_dict(model.to_dict())
        original = [t.event.handler for t in model.event_path_to("s2")]
        restored = [t.event.handler for t in clone.event_path_to("s2")]
        assert original == restored

    def test_save_load(self, tmp_path):
        model = three_state_model()
        path = tmp_path / "model.json"
        model.save(path)
        loaded = ApplicationModel.load(path)
        assert loaded.num_states == 3
        assert loaded.get_state("s1").text == "page two text"

    def test_state_round_trip_with_annotations(self):
        state = State("s1", "h", "t", html="<html></html>", depth=2)
        state.annotations["k"] = "v"
        clone = State.from_dict(state.to_dict())
        assert clone == state
