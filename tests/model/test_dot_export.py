"""Tests for the DOT export of application models."""

from repro.model import ApplicationModel, EventAnnotation


def small_model():
    model = ApplicationModel("u")
    s0, _ = model.add_state("h0", "first comment page text")
    s1, _ = model.add_state("h1", "second comment page text")
    model.add_transition(s0, s1, EventAnnotation("#next", "onclick", "nextPage()"))
    model.add_transition(s1, s0, EventAnnotation("#prev", "onclick", "prevPage()"))
    return model


class TestToDot:
    def test_valid_digraph_structure(self):
        dot = small_model().to_dot()
        assert dot.startswith("digraph app_model {")
        assert dot.endswith("}")

    def test_all_states_present(self):
        dot = small_model().to_dot()
        assert "s0 [shape=doublecircle" in dot
        assert "s1 [shape=circle" in dot

    def test_edges_labelled_with_handlers(self):
        dot = small_model().to_dot()
        assert 's0 -> s1 [label="nextPage()"];' in dot
        assert 's1 -> s0 [label="prevPage()"];' in dot

    def test_labels_truncated(self):
        model = ApplicationModel("u")
        model.add_state("h", "word " * 50)
        dot = model.to_dot(max_label_length=10)
        label = [line for line in dot.splitlines() if "s0 [" in line][0]
        assert "word word " in label
        assert "word word word word word word" not in label

    def test_quotes_escaped_in_handlers(self):
        model = ApplicationModel("u")
        s0, _ = model.add_state("h0", "a")
        s1, _ = model.add_state("h1", "b")
        model.add_transition(
            s0, s1, EventAnnotation("#x", "onclick", 'open("tab")')
        )
        dot = model.to_dot()
        assert "open('tab')" in dot

    def test_crawled_model_exports(self):
        from repro.clock import CostModel
        from repro.crawler import AjaxCrawler
        from repro.sites import SiteConfig, SyntheticYouTube

        site = SyntheticYouTube(SiteConfig(num_videos=5, seed=3))
        index = next(i for i in range(5) if site.comment_pages_of(i) >= 2)
        crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        model = crawler.crawl_page(site.video_url(index)).model
        dot = model.to_dot()
        assert dot.count("->") == model.num_transitions
