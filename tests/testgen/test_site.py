"""The generated server: routing, rendering, and the dedup invariant."""

import pytest

from repro.net.http import Request
from repro.testgen import GeneratedSite, build_site, generate_site


@pytest.fixture(scope="module")
def spec():
    return generate_site(13, num_pages=2)


@pytest.fixture(scope="module")
def site(spec):
    return GeneratedSite(spec)


def get(site, url):
    return site.handle(Request(method="GET", url=url))


class TestRouting:
    def test_pages_serve(self, spec, site):
        for url in spec.all_urls():
            response = get(site, url)
            assert response.status == 200
            assert "<script" in response.body

    def test_fragment_serves(self, spec, site):
        page = spec.pages[0]
        response = get(site, f"{spec.base_url}{page.fetch_path(1)}")
        assert response.status == 200
        assert page.marker_of(1) in response.body

    def test_unknown_path_404(self, spec, site):
        assert get(site, f"{spec.base_url}/nope").status == 404

    @pytest.mark.parametrize(
        "query",
        [
            "page=99&s=0",       # page out of range
            "page=0&s=99",       # state out of range
            "page=-1&s=0",       # negative page
            "page=x&s=0",        # non-numeric page
            "page=0&s=",         # missing state value
            "",                  # no parameters at all
        ],
    )
    def test_bad_fragment_params_404(self, spec, site, query):
        assert get(site, f"{spec.base_url}/fragment?{query}").status == 404

    def test_delegates_spec_accessors(self, spec, site):
        assert site.base_url == spec.base_url
        assert site.all_urls() == spec.all_urls()

    def test_build_site(self, spec):
        assert isinstance(build_site(spec), GeneratedSite)


class TestRendering:
    def test_inlined_fragment_matches_endpoint(self, spec, site):
        """The dedup invariant: the markup inlined for state 0 must be
        byte-identical to the fragment endpoint's response, so an edge
        back to state 0 collapses onto the initial state."""
        for page in spec.pages:
            endpoint = get(site, f"{spec.base_url}{page.fetch_path(0)}").body
            assert endpoint == site.render_fragment(page, 0)
            assert endpoint in get(site, spec.page_url(page.page_id)).body

    def test_every_out_edge_rendered_as_event(self, spec, site):
        page = spec.pages[0]
        for state in range(page.num_states):
            body = site.render_fragment(page, state)
            for transition in page.outgoing(state):
                assert f'id="{transition.element_id}"' in body
                assert f'onclick="go({transition.dst})"' in body

    def test_states_render_distinct_markup(self, spec, site):
        page = spec.pages[0]
        rendered = {site.render_fragment(page, s) for s in range(page.num_states)}
        assert len(rendered) == page.num_states
