"""Crash-fuzz harness: pinned-corpus cleanliness and the shrinker."""

import pytest

import repro.testgen.fuzz as fuzz_module
from repro.crawler import CrawlerConfig
from repro.errors import JsRuntimeError, JsSyntaxError
from repro.testgen.noisy import VOLATILE_MARKER_SUBSTRINGS
from repro.js import Interpreter
from repro.testgen import (
    CrashReport,
    FuzzCase,
    fuzz_corpus,
    generate_case,
    run_case,
    shrink_case,
    shrink_text,
)
from repro.testgen.fuzz import CASE_KINDS, mutate_text, pipeline_for


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_case(123) == generate_case(123)

    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_all_kinds_sampled(self, kind):
        kinds = {generate_case(seed).kind for seed in range(len(CASE_KINDS))}
        assert kind in kinds

    def test_mutation_changes_text(self):
        import random

        original = generate_case(0).text
        mutated = {mutate_text(random.Random(s), original) for s in range(10)}
        assert any(text != original for text in mutated)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            pipeline_for("sql")


class TestRunCase:
    def test_valid_js_passes(self):
        case = FuzzCase(kind="js", seed=0, text="var a = 1 + 2;")
        assert run_case(case) is None

    def test_invalid_js_is_clean_rejection(self):
        case = FuzzCase(kind="js", seed=0, text="var = = ;(")
        assert run_case(case) is None

    def test_markup_soup_is_clean(self):
        case = FuzzCase(kind="markup", seed=0, text="<div><b>unclosed")
        assert run_case(case) is None

    def test_crash_is_reported(self, monkeypatch):
        import repro.testgen.fuzz as fuzz_module

        def exploding(kind):
            def pipeline(text):
                raise IndexError("boom")

            return pipeline

        monkeypatch.setattr(fuzz_module, "pipeline_for", exploding)
        report = fuzz_module.run_case(FuzzCase(kind="js", seed=7, text="x"))
        assert report is not None
        assert report.exc_type == "IndexError"
        assert "seed 7" in report.describe()


class TestSubstrateRegressions:
    """Bugs the fuzzer found; pinned so they stay fixed."""

    def test_toplevel_return_is_syntax_error(self):
        with pytest.raises(JsSyntaxError):
            Interpreter().run("return 4;")

    def test_runaway_recursion_is_runtime_error(self):
        with pytest.raises(JsRuntimeError, match="call stack"):
            Interpreter().run("function f() { return f(); } f();")

    def test_deep_but_bounded_recursion_still_works(self):
        source = (
            "function f(n) { if (n <= 0) { return 0; } return f(n - 1) + 1; }"
            " f(20);"
        )
        assert Interpreter().run(source) == 20


class TestShrinking:
    def test_shrink_text_to_minimal_token(self):
        text = "aaaa\nbbbb\nNEEDLE stays\ncccc"
        shrunk = shrink_text(text, lambda t: "NEEDLE" in t)
        assert shrunk == "NEEDLE"

    def test_shrink_preserves_failure_predicate(self):
        text = "x" * 50 + "CRASH" + "y" * 50
        shrunk = shrink_text(text, lambda t: "CRASH" in t)
        assert "CRASH" in shrunk
        assert len(shrunk) < len(text)

    def test_shrink_case_same_exception_type(self, monkeypatch):
        import repro.testgen.fuzz as fuzz_module

        def picky(kind):
            def pipeline(text):
                if "TRIGGER" in text:
                    raise KeyError("fuzzed")

            return pipeline

        monkeypatch.setattr(fuzz_module, "pipeline_for", picky)
        case = FuzzCase(kind="js", seed=1, text="pad " * 30 + "TRIGGER" + " pad" * 30)
        report = CrashReport(case=case, exc_type="KeyError", message="fuzzed")
        minimal = fuzz_module.shrink_case(report)
        assert "TRIGGER" in minimal.text
        assert len(minimal.text) < len(case.text)


def test_fast_corpus_clean():
    summary = fuzz_corpus(range(300))
    assert summary.cases_run == 300
    assert summary.crashes == []
    # The corpus exercises both accepting and rejecting paths.
    assert summary.rejections


@pytest.mark.slow
def test_pinned_corpus_zero_crashes():
    """Acceptance gate: the full pinned corpus never escapes a raw
    Python exception from the JS or DOM pipelines."""
    summary = fuzz_corpus(range(2000))
    assert summary.cases_run == 2000
    assert [crash.describe() for crash in summary.crashes] == []


class TestPoolHygiene:
    """Fuzz vocabulary must not fabricate crawler-significant tokens.

    The fuzz pools feed generated handlers and markup; a pool entry
    containing an update-event pattern would make the crawler skip the
    handler (silently shrinking coverage), and one containing a
    volatile-region marker substring could collide with the noisy-twin
    oracles' text assertions.
    """

    POOLS = (
        fuzz_module._IDENTIFIERS,
        fuzz_module._STRINGS,
        fuzz_module._TAGS,
        fuzz_module._ATTRS,
    )

    def test_pools_avoid_update_event_patterns(self):
        patterns = CrawlerConfig().update_event_patterns
        for pool in self.POOLS:
            for entry in pool:
                assert not any(p in entry.lower() for p in patterns), entry

    def test_pools_avoid_volatile_marker_substrings(self):
        for pool in self.POOLS:
            for entry in pool:
                assert not any(
                    m in entry.lower() for m in VOLATILE_MARKER_SUBSTRINGS
                ), entry
