"""The `repro-ajax testgen` subcommand surface."""

import json

import pytest

from repro.cli import main
from repro.testgen import SiteSpec, spec_for_seed


class TestGenerate:
    def test_writes_spec_file(self, tmp_path, capsys):
        out = tmp_path / "spec.json"
        assert main(["testgen", "generate", "--seed", "7", "--out", str(out)]) == 0
        assert SiteSpec.load(out) == spec_for_seed(7)

    def test_prints_spec_json(self, capsys):
        assert main(["testgen", "generate", "--seed", "3", "--pages", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert SiteSpec.from_dict(data) == spec_for_seed(3, num_pages=2)


class TestConformance:
    def test_passing_seeds(self, capsys):
        assert main(["testgen", "conformance", "--seeds", "0:3"]) == 0
        out = capsys.readouterr().out
        assert "3 seed(s), 0 conformance failure(s)" in out
        assert out.count("PASS") == 3

    def test_quiet_mode_prints_tally_only(self, capsys):
        assert main(["testgen", "conformance", "--seeds", "0:2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "PASS" not in out
        assert "2 seed(s), 0 conformance failure(s)" in out

    def test_seed_list_selector(self, capsys):
        assert main(["testgen", "conformance", "--seeds", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "seed 1:" in out and "seed 4:" in out

    def test_check_subset(self, capsys):
        assert main(
            ["testgen", "conformance", "--seeds", "0", "--checks", "ground_truth"]
        ) == 0
        assert "ground_truth=ok" in capsys.readouterr().out

    def test_unknown_check_is_usage_error(self, capsys):
        assert main(
            ["testgen", "conformance", "--seeds", "0", "--checks", "vibes"]
        ) == 2
        assert "unknown checks" in capsys.readouterr().err


class TestFuzz:
    def test_clean_corpus_exits_zero(self, capsys):
        assert main(["testgen", "fuzz", "--seeds", "0:100"]) == 0
        out = capsys.readouterr().out
        assert "100 cases, 0 crash(es)" in out
        assert "clean rejections" in out

    def test_crash_exits_nonzero_and_shrinks(self, capsys, monkeypatch):
        import repro.testgen.fuzz as fuzz_module

        real_pipeline_for = fuzz_module.pipeline_for

        def sabotaged(kind):
            if kind == "markup":

                def pipeline(text):
                    raise IndexError("planted")

                return pipeline
            return real_pipeline_for(kind)

        monkeypatch.setattr(fuzz_module, "pipeline_for", sabotaged)
        assert main(["testgen", "fuzz", "--seeds", "2", "--shrink"]) == 1
        out = capsys.readouterr().out
        assert "1 crash(es)" in out
        assert "CRASH" in out
        assert "minimal repro" in out
