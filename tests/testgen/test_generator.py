"""Generator determinism, graph invariants, and spec serialization."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crawler import CrawlerConfig
from repro.search import tokenize
from repro.testgen.noisy import VOLATILE_MARKER_SUBSTRINGS
from repro.testgen import (
    MIN_STATES,
    SiteSpec,
    WORD_CORPUS,
    generate_page,
    generate_site,
)


def _reachable_from_zero(page) -> set[int]:
    frontier, seen = [0], {0}
    while frontier:
        state = frontier.pop()
        for transition in page.outgoing(state):
            if transition.dst not in seen:
                seen.add(transition.dst)
                frontier.append(transition.dst)
    return seen


def assert_page_invariants(page):
    # Graph shape the conformance oracles rely on.
    assert page.num_states >= MIN_STATES
    pairs = [(t.src, t.dst) for t in page.transitions]
    assert all(src != dst for src, dst in pairs), "self loop sampled"
    assert len(pairs) == len(set(pairs)), "duplicate edge sampled"
    assert _reachable_from_zero(page) == set(range(page.num_states))
    assert any(page.in_degree(s) >= 2 for s in range(page.num_states)), (
        "no state with in-degree >= 2: hot-node saving would be zero"
    )
    # Oracles are mutually consistent.
    assert sum(page.expected_fetches().values()) == len(page.transitions)
    assert page.expected_network_calls(use_hot_node=False) == len(page.transitions)
    assert page.expected_network_calls(use_hot_node=True) == len(
        page.expected_unique_fetches()
    )
    assert page.expected_cached_hits() >= 1
    # Markers: one per state, each a single searchable token.
    assert len(page.markers) == page.num_states
    assert len(set(page.markers)) == page.num_states
    for marker in page.markers:
        assert tokenize(marker) == [marker]
    assert len(page.words) == page.num_states
    for state_words in page.words:
        assert set(state_words) <= set(WORD_CORPUS)


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert generate_site(42, num_pages=3) == generate_site(42, num_pages=3)
        assert (
            generate_site(42, num_pages=3).to_dict()
            == generate_site(42, num_pages=3).to_dict()
        )

    def test_different_seeds_differ(self):
        specs = {str(generate_site(seed, num_pages=2).to_dict()) for seed in range(8)}
        assert len(specs) == 8

    def test_markers_unique_across_pages(self):
        spec = generate_site(5, num_pages=4)
        markers = [m for page in spec.pages for m in page.markers]
        assert len(markers) == len(set(markers))


class TestInvariants:
    @pytest.mark.parametrize("seed", range(20))
    def test_page_invariants(self, seed):
        for page in generate_site(seed, num_pages=1 + seed % 3).pages:
            assert_page_invariants(page)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        max_states=st.integers(min_value=MIN_STATES, max_value=10),
        extra_edges=st.integers(min_value=0, max_value=8),
    )
    def test_page_invariants_hypothesis(self, seed, max_states, extra_edges):
        page = generate_page(
            random.Random(seed),
            seed=seed,
            page_id=0,
            max_states=max_states,
            extra_edges=extra_edges,
        )
        assert_page_invariants(page)

    def test_rejects_degenerate_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            generate_page(rng, seed=0, page_id=0, min_states=MIN_STATES - 1)
        with pytest.raises(ValueError):
            generate_page(rng, seed=0, page_id=0, min_states=5, max_states=4)
        with pytest.raises(ValueError):
            generate_site(0, num_pages=0)


class TestSpecOracles:
    def test_site_totals(self):
        spec = generate_site(3, num_pages=2)
        assert spec.total_states == sum(p.num_states for p in spec.pages)
        assert spec.total_transitions == sum(len(p.transitions) for p in spec.pages)
        assert (
            spec.max_additional_states_needed
            == max(p.num_states for p in spec.pages) - 1
        )

    def test_page_urls(self):
        spec = generate_site(3, num_pages=2)
        urls = spec.all_urls()
        assert len(urls) == 2
        for url in urls:
            assert spec.page_for_url(url) is spec.pages[urls.index(url)]
        with pytest.raises(KeyError):
            spec.page_for_url("http://testgen.test/nope")

    def test_marker_state_round_trip(self):
        page = generate_site(9).pages[0]
        for state in range(page.num_states):
            assert page.state_of_marker(page.marker_of(state)) == state


class TestSerialization:
    def test_dict_round_trip(self):
        spec = generate_site(11, num_pages=3)
        assert SiteSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = generate_site(11, num_pages=2)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert SiteSpec.load(path) == spec


class TestCorpusHygiene:
    """Stable vocabularies must never collide with marker machinery.

    A corpus word containing an ``update_event_patterns`` substring
    would make the crawler refuse a generated handler; one containing a
    volatile-region marker substring (``vol``/``zz``) could satisfy a
    noisy-twin oracle's text assertion from *stable* prose, masking a
    collapse bug.
    """

    def test_word_corpus_avoids_update_event_patterns(self):
        patterns = CrawlerConfig().update_event_patterns
        for word in WORD_CORPUS:
            assert not any(p in word for p in patterns), word

    def test_word_corpus_avoids_volatile_marker_substrings(self):
        for word in WORD_CORPUS:
            assert not any(m in word for m in VOLATILE_MARKER_SUBSTRINGS), word
