"""Tests for deterministic corpus minting (repro.testgen.corpus)."""

import pytest

from repro.search import InvertedFile
from repro.testgen import (
    CORPUS_STATES_PER_PAGE,
    corpus_models,
    corpus_spec,
    state_text,
)


class TestCorpusSpec:
    def test_rounds_up_to_whole_pages(self):
        spec = corpus_spec(12)
        assert len(spec.pages) == 3  # ceil(12 / 5)
        assert spec.total_states == 15
        assert all(p.num_states == CORPUS_STATES_PER_PAGE for p in spec.pages)

    def test_deterministic_across_calls(self):
        first = corpus_spec(40, seed=7)
        second = corpus_spec(40, seed=7)
        assert first.to_dict() == second.to_dict()
        assert corpus_spec(40, seed=8).to_dict() != first.to_dict()

    def test_scale_knob_is_a_pure_prefix(self):
        """Growing the corpus never rewrites the pages already minted."""
        small = corpus_spec(10, seed=3)
        large = corpus_spec(20, seed=3)
        for small_page, large_page in zip(small.pages, large.pages):
            assert small_page.to_dict() == large_page.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one state"):
            corpus_spec(0)
        with pytest.raises(ValueError, match="states"):
            corpus_spec(10, states_per_page=1)


class TestCorpusModels:
    @pytest.fixture(scope="class")
    def minted(self):
        spec = corpus_spec(25, seed=1)
        return spec, corpus_models(spec)

    def test_one_model_per_page_all_states(self, minted):
        spec, models = minted
        assert len(models) == len(spec.pages)
        assert sum(len(model.states()) for model in models) == spec.total_states
        assert [model.url for model in models] == [
            spec.page_url(page.page_id) for page in spec.pages
        ]

    def test_state_zero_first_with_bfs_depths(self, minted):
        spec, models = minted
        for page, model in zip(spec.pages, models):
            states = model.states()
            assert states[0].depth == 0
            assert states[0].text == state_text(page, 0)
            # Depths never decrease along BFS discovery order.
            depths = [state.depth for state in states]
            assert all(b - a <= 1 for a, b in zip(depths, depths[1:]))
            assert all(depth >= 0 for depth in depths)

    def test_text_carries_marker_and_words(self, minted):
        spec, models = minted
        page = spec.pages[0]
        text = state_text(page, 2)
        assert f"area {page.page_id} state 2" in text
        assert page.markers[2] in text
        for word in page.words[2]:
            assert word in text

    def test_transitions_replicated(self, minted):
        spec, models = minted
        for page, model in zip(spec.pages, models):
            # Transitions between discovered states all carry annotations.
            assert len(model.transitions()) == len(page.transitions)

    def test_markers_unique_in_index(self, minted):
        """Every marker identifies exactly one state — the ground-truth
        property the skewed benchmark queries rely on."""
        spec, models = minted
        index = InvertedFile().build(models)
        assert index.num_states == spec.total_states
        for page in spec.pages:
            for marker in page.markers:
                assert index.document_frequency(marker) == 1, marker
