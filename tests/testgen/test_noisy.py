"""Tests for the noisy-twin site generator and its closed-form oracles."""

import pytest

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.crawler.config import CrawlerConfig as _Config
from repro.dom import parse_document
from repro.dom.simhash import hamming, simhash64, state_features
from repro.testgen.noisy import (
    NEAR_DUP_THRESHOLD,
    NOISY_WORD_CORPUS,
    VOLATILE_MARKER_SUBSTRINGS,
    NoisyGeneratedSite,
    build_noisy_site,
    generate_noisy_site,
)


class TestCorpusHygiene:
    def test_words_avoid_update_event_patterns(self):
        patterns = _Config().update_event_patterns
        for word in NOISY_WORD_CORPUS:
            assert not any(p in word for p in patterns), word

    def test_words_avoid_volatile_marker_substrings(self):
        for word in NOISY_WORD_CORPUS:
            assert not any(m in word for m in VOLATILE_MARKER_SUBSTRINGS), word

    def test_corpus_is_unique_and_lowercase(self):
        assert len(set(NOISY_WORD_CORPUS)) == len(NOISY_WORD_CORPUS)
        assert all(w == w.lower() and w.isalpha() for w in NOISY_WORD_CORPUS)


class TestGenerateNoisySite:
    def test_deterministic_for_seed(self):
        assert generate_noisy_site(7) == generate_noisy_site(7)
        assert generate_noisy_site(7) != generate_noisy_site(8)

    def test_states_draw_disjoint_word_slices(self):
        spec = generate_noisy_site(3, num_pages=2)
        for page in spec.pages:
            seen = set()
            for words in page.words:
                assert words, "every state needs stable vocabulary"
                assert not (set(words) & seen)
                seen.update(words)

    def test_word_budget_enforced(self):
        with pytest.raises(ValueError):
            generate_noisy_site(0, max_states=8, words_per_state=10)

    def test_oracles_consistent(self):
        spec = generate_noisy_site(11, num_pages=2, extra_edges=5)
        for page in spec.pages:
            assert spec.expected_canonical_states(page) == page.num_states
            total_variants = sum(
                spec.expected_variants(page, s) for s in range(page.num_states)
            )
            # Every transition firing plus the page load is observed once.
            assert total_variants == len(page.transitions) + 1
            assert spec.expected_collapses(page) == total_variants - page.num_states
            for state in range(page.num_states):
                mask = spec.expected_volatile_mask(page, state)
                if spec.expected_variants(page, state) > 1:
                    assert mask == tuple(
                        sorted(("content", spec.volatile_region_id(page, state)))
                    )
                else:
                    assert mask == ()

    def test_explosion_oracle_bounds(self):
        spec = generate_noisy_site(11, extra_edges=5)
        page = spec.pages[0]
        cap = 3 * page.num_states
        exploded = spec.expected_exploded_states(page, cap)
        assert page.num_states <= exploded <= cap
        assert spec.expected_exploded_events(page, cap) >= exploded - 1


class TestNoisyGeneratedSite:
    def test_serials_increment_per_page_state(self):
        spec = generate_noisy_site(2)
        site = build_noisy_site(spec)
        page = spec.pages[0]
        first = site.render_fragment(page, 1)
        second = site.render_fragment(page, 1)
        other = site.render_fragment(page, 2)
        assert spec.noise_token(page, 1, 0) in first
        assert spec.noise_token(page, 1, 1) in second
        assert spec.noise_token(page, 2, 0) in other

    def test_twins_differ_only_in_noise_token(self):
        spec = generate_noisy_site(2)
        site = build_noisy_site(spec)
        page = spec.pages[0]
        first = site.render_fragment(page, 1)
        second = site.render_fragment(page, 1)
        assert first != second
        assert first.replace(
            spec.noise_token(page, 1, 0), ""
        ) == second.replace(spec.noise_token(page, 1, 1), "")

    def test_page_chrome_carries_page_token(self):
        spec = generate_noisy_site(2)
        site = build_noisy_site(spec)
        page = spec.pages[0]
        html = site.render_page(page)
        assert spec.page_token(page) in html
        assert spec.volatile_region_id(page, 0) in html


class TestCalibrationMargin:
    """The threshold must separate twins from distinct states with slack.

    Crawl a noisy site with collapse OFF and stored HTML, fingerprint
    every minted state, and check the empirical gap the
    ``NEAR_DUP_THRESHOLD`` calibration (seeds 0..49) relies on: twins of
    one logical state sit at or below the threshold, distinct logical
    states sit strictly above it.
    """

    @pytest.mark.parametrize("seed", [0, 5, 17, 42])
    def test_twin_and_cross_distances_straddle_threshold(self, seed):
        spec = generate_noisy_site(seed)
        page = spec.pages[0]
        config = CrawlerConfig(
            max_additional_states=3 * page.num_states - 1,
            use_hot_node=False,
            max_event_invocations=10_000,
            store_html=True,
        )
        crawler = AjaxCrawler(
            NoisyGeneratedSite(spec),
            config,
            clock=SimClock(),
            cost_model=CostModel(network_jitter=0.0),
        )
        model = crawler.crawl(spec.all_urls()).models[0]
        by_logical: dict[int, list[int]] = {}
        for state in model.states():
            logical = next(
                s
                for s in range(page.num_states)
                if page.marker_of(s) in state.html
            )
            fingerprint = simhash64(state_features(parse_document(state.html)))
            by_logical.setdefault(logical, []).append(fingerprint)
        assert sum(len(v) for v in by_logical.values()) > page.num_states
        twin_max = 0
        cross_min = 64
        logicals = sorted(by_logical)
        for logical in logicals:
            twins = by_logical[logical]
            for i, a in enumerate(twins):
                for b in twins[i + 1 :]:
                    twin_max = max(twin_max, hamming(a, b))
            for other in logicals:
                if other <= logical:
                    continue
                for a in twins:
                    for b in by_logical[other]:
                        cross_min = min(cross_min, hamming(a, b))
        assert twin_max <= NEAR_DUP_THRESHOLD, twin_max
        assert cross_min > NEAR_DUP_THRESHOLD, cross_min
