"""The differential harness: all parity checks, plus proof it can fail.

The smoke corpus (50 seeds, every check) is the acceptance gate pinned
in ``make check``; the mutation tests tamper with a spec after the site
is built so the harness demonstrably *detects* divergence rather than
vacuously passing.
"""

from dataclasses import replace

import pytest

from repro.testgen import (
    CHECK_NAMES,
    run_conformance,
    run_corpus,
    spec_for_seed,
)
from repro.testgen.conformance import (
    check_ground_truth,
    check_hotnode_parity,
    check_incremental_parity,
    check_parallel_parity,
    check_search_consistency,
)

FAST_SEEDS = range(6)


@pytest.fixture(scope="module", params=list(FAST_SEEDS))
def spec(request):
    return spec_for_seed(request.param)


class TestIndividualChecks:
    def test_ground_truth(self, spec):
        assert check_ground_truth(spec).failures == []

    def test_hotnode_parity(self, spec):
        assert check_hotnode_parity(spec).failures == []

    def test_incremental_parity(self, spec):
        assert check_incremental_parity(spec).failures == []

    def test_parallel_parity(self, spec):
        assert check_parallel_parity(spec).failures == []

    def test_search_consistency(self, spec):
        assert check_search_consistency(spec).failures == []


class TestHarness:
    def test_report_shape(self):
        report = run_conformance(spec_for_seed(0))
        assert [r.name for r in report.results] == list(CHECK_NAMES)
        assert report.passed
        assert report.failures == []
        assert "PASS" in report.summary()

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown conformance check"):
            run_conformance(spec_for_seed(0), checks=("ground_truth", "vibes"))

    def test_spec_for_seed_varies_pages(self):
        assert len(spec_for_seed(0).pages) == 1
        assert len(spec_for_seed(1).pages) == 2
        assert len(spec_for_seed(2).pages) == 3
        assert len(spec_for_seed(2, num_pages=1).pages) == 1

    def test_check_subset(self):
        report = run_conformance(spec_for_seed(1), checks=("ground_truth",))
        assert [r.name for r in report.results] == ["ground_truth"]
        assert report.passed


class TestHarnessDetectsDivergence:
    """Tamper with the ground truth after generation: checks must fail."""

    def _with_phantom_state(self, spec):
        page = spec.pages[0]
        phantom = replace(
            page,
            num_states=page.num_states + 1,
            markers=page.markers + (f"mgXp{page.page_id}sphantom",),
            words=page.words + (("amber",),),
        )
        return replace(spec, pages=(phantom,) + spec.pages[1:])

    def test_ground_truth_catches_missing_state(self):
        tampered = self._with_phantom_state(spec_for_seed(0))
        result = check_ground_truth(tampered)
        assert not result.passed
        assert any("states" in failure for failure in result.failures)

    def test_search_catches_missing_marker(self):
        tampered = self._with_phantom_state(spec_for_seed(0))
        result = check_search_consistency(tampered)
        assert not result.passed
        assert any("phantom" in failure for failure in result.failures)

    def test_report_collects_failures(self):
        tampered = self._with_phantom_state(spec_for_seed(0))
        report = run_conformance(
            tampered, checks=("ground_truth", "search_consistency")
        )
        assert not report.passed
        assert all(f.startswith("[seed 0]") for f in report.failures)
        assert "FAIL" in report.summary()


@pytest.mark.slow
def test_smoke_corpus_50_seeds():
    """Acceptance gate: every check passes on 50 generated seeds."""
    reports = run_corpus(range(50))
    failures = [failure for report in reports for failure in report.failures]
    assert failures == []
    # The corpus actually exercises multi-page (parallel-relevant) shapes.
    assert {len(report.spec.pages) for report in reports} == {1, 2, 3}
