"""Unit tests for the near-duplicate collapse layer and its crawl wiring."""

import pytest

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.crawler.dedup import BandedLshTable, StateCollapser
from repro.dom.simhash import simhash64
from repro.obs import Recorder, STATE_COLLAPSED, STATE_DUPLICATE
from repro.testgen.noisy import (
    NEAR_DUP_THRESHOLD,
    NoisyGeneratedSite,
    generate_noisy_site,
)


class TestBandedLshTable:
    def test_insert_then_probe_same_fingerprint(self):
        table = BandedLshTable(16)
        table.insert(0xDEAD, 0)
        assert table.candidates(0xDEAD) == [0]

    def test_candidates_deduplicated_in_insertion_order(self):
        table = BandedLshTable(4)
        table.insert(0, 7)
        table.insert(0, 3)
        # Fingerprint 0 shares every band with both refs; each appears once.
        assert table.candidates(0) == [7, 3]

    def test_disjoint_bands_no_candidates(self):
        table = BandedLshTable(2)
        table.insert(0, 0)
        # Flip one bit in each 32-bit band: no band matches.
        assert table.candidates((1 << 0) | (1 << 63)) == []

    def test_invalid_band_count_rejected(self):
        with pytest.raises(ValueError):
            BandedLshTable(5)


class TestStateCollapser:
    def test_first_observation_becomes_canonical(self):
        collapser = StateCollapser(8)
        outcome = collapser.observe_fingerprint("h1", 0b1111, regions={})
        assert outcome.canonical_hash == "h1"
        assert not outcome.merged and not outcome.known
        assert collapser.num_canonicals == 1
        assert collapser.states_hashed == 0  # observe() counts, not this

    def test_within_threshold_merges_with_distance(self):
        collapser = StateCollapser(8)
        collapser.observe_fingerprint("h1", 0, regions={"r": "a"})
        outcome = collapser.observe_fingerprint(
            "h2", 0b111, regions={"r": "b"}
        )
        assert outcome.merged
        assert outcome.canonical_hash == "h1"
        assert outcome.distance == 3
        assert collapser.num_canonicals == 1
        assert collapser.variants_of("h1") == 2
        assert collapser.volatile_regions_of("h1") == ("r",)
        assert collapser.canonical_of("h2") == "h1"

    def test_beyond_threshold_becomes_new_canonical(self):
        collapser = StateCollapser(2)
        collapser.observe_fingerprint("h1", 0, regions={})
        outcome = collapser.observe_fingerprint("h2", 0b1111111, regions={})
        assert not outcome.merged
        assert collapser.num_canonicals == 2
        assert collapser.partition() == frozenset(
            {frozenset({"h1"}), frozenset({"h2"})}
        )

    def test_exact_rehash_short_circuits_without_fingerprint(self):
        collapser = StateCollapser(8)
        collapser.observe("h1", frozenset({"c!a", "c!b"}), regions={})
        outcome = collapser.observe("h1", frozenset({"c!a", "c!b"}), regions={})
        assert outcome.known
        assert outcome.canonical_hash == "h1"
        assert collapser.states_hashed == 1  # second observation skipped
        assert collapser.variants_of("h1") == 1  # known rehash is not a variant

    def test_merged_variant_rehash_is_known(self):
        collapser = StateCollapser(8)
        collapser.observe_fingerprint("h1", 0, regions={})
        collapser.observe_fingerprint("h2", 1, regions={})
        outcome = collapser.observe_fingerprint("h2", 1, regions={})
        assert outcome.known and outcome.canonical_hash == "h1"

    def test_nearest_canonical_wins(self):
        # Canonicals 10 bits apart (distinct at threshold 8); the probe
        # sits within threshold of both, 3 bits from b and 7 from a.
        collapser = StateCollapser(8)
        collapser.observe_fingerprint("a", 0, regions={})
        collapser.observe_fingerprint("b", 0b1111111111, regions={})
        outcome = collapser.observe_fingerprint("x", 0b0001111111, regions={})
        assert outcome.canonical_hash == "b"
        assert outcome.distance == 3

    def test_counters_accumulate(self):
        collapser = StateCollapser(8)
        collapser.observe("h1", frozenset({"c!a"}), regions={})
        collapser.observe("h1", frozenset({"c!a"}), regions={})  # known rehash
        assert collapser.states_hashed == 1
        twin = simhash64(frozenset({"c!a"})) ^ 1
        collapser.observe_fingerprint("h2", twin, regions={})
        assert collapser.hamming_checks >= 1
        assert collapser.merges == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StateCollapser(-1)
        with pytest.raises(ValueError):
            StateCollapser(14, bands=8)  # needs >= 15 -> 16
        assert StateCollapser(14, bands=32).table.bands == 32


def noisy_crawl(threshold=NEAR_DUP_THRESHOLD, **config_overrides):
    spec = generate_noisy_site(5)
    page = spec.pages[0]
    max_n = max(p.num_states for p in spec.pages)
    recorder = Recorder(clock=SimClock())
    # Collapse admits exactly the logical states; exact identity needs
    # headroom to explode (the 3x cap the conformance oracle replays).
    cap = max_n if threshold is not None else 3 * max_n
    config = CrawlerConfig(
        max_additional_states=cap - 1,
        use_hot_node=False,
        near_dup_threshold=threshold,
        **config_overrides,
    )
    crawler = AjaxCrawler(
        NoisyGeneratedSite(spec),
        config,
        clock=recorder.clock,
        cost_model=CostModel(network_jitter=0.0),
        recorder=recorder,
    )
    return spec, page, crawler.crawl(spec.all_urls()), recorder


class TestCrawlerWiring:
    def test_noisy_page_collapses_to_logical_states(self):
        spec, page, crawl, recorder = noisy_crawl()
        model = crawl.models[0]
        assert model.num_states == page.num_states
        report_page = crawl.report.pages[0]
        assert report_page.states_collapsed == spec.expected_collapses(page)
        assert report_page.dedup_states_hashed == len(page.transitions) + 1
        collapsed_events = [
            e for e in recorder.events if e.kind == STATE_COLLAPSED
        ]
        assert len(collapsed_events) == spec.expected_collapses(page)
        for event in collapsed_events:
            assert event.fields["distance"] <= NEAR_DUP_THRESHOLD
            assert event.fields["candidates"] >= 1

    def test_canonical_annotations_written(self):
        spec, page, crawl, _ = noisy_crawl()
        model = crawl.models[0]
        annotated = [
            state
            for state in model.states()
            if "near_dup_variants" in state.annotations
        ]
        expected = [
            s for s in range(page.num_states) if spec.expected_variants(page, s) > 1
        ]
        assert len(annotated) == len(expected)
        for state in annotated:
            assert int(state.annotations["near_dup_variants"]) >= 2
            assert "volatile_regions" in state.annotations

    def test_threshold_none_leaves_layer_inert(self):
        spec, page, crawl, recorder = noisy_crawl(threshold=None)
        # Exact identity: every twin mints a state up to the cap.
        assert crawl.models[0].num_states > page.num_states
        assert not any(e.kind == STATE_COLLAPSED for e in recorder.events)
        report_page = crawl.report.pages[0]
        assert report_page.states_collapsed == 0
        assert report_page.dedup_states_hashed == 0

    def test_requires_hash_deduplication(self):
        with pytest.raises(ValueError):
            noisy_crawl(deduplicate_states=False)

    def test_collapse_counts_in_registry(self):
        spec, page, crawl, _ = noisy_crawl()
        counters = crawl.report.registry.snapshot()["counters"]
        assert counters["crawl.states_collapsed"] == spec.expected_collapses(page)
        assert counters["dedup.states_hashed"] == len(page.transitions) + 1

    def test_exact_duplicates_still_counted_as_duplicates(self):
        spec, page, crawl, recorder = noisy_crawl()
        report_page = crawl.report.pages[0]
        # Every collapse is also a duplicate resolution (the canonical's
        # hash resolves to an existing state).
        assert report_page.duplicates_detected >= report_page.states_collapsed
        kinds = {e.kind for e in recorder.events}
        assert STATE_DUPLICATE not in kinds or report_page.duplicates_detected > (
            report_page.states_collapsed
        )
