"""Unit tests for the hot-node cache, StackInfo and the interceptor."""

from repro.crawler.hotnode import HotNodeCache, HotNodeInterceptor, StackInfo
from repro.js import Interpreter, NativeFunction
from repro.js.debugger import CallStack, StackFrame


class TestStackInfo:
    def test_from_frame(self):
        frame = StackFrame("getUrl", ["/comments?p=2", True])
        info = StackInfo.from_frame(frame)
        assert info.function_name == "getUrl"
        assert info.arguments == "/comments?p=2, true"
        assert info.key == "getUrl(/comments?p=2, true)"

    def test_from_call_stack_skips_native_frames(self):
        stack = CallStack()
        stack.push(StackFrame("showPage", [2.0]))
        stack.push(StackFrame("getUrl", ["/c?p=2", True]))
        stack.push(StackFrame("send", [], native=True))
        info = StackInfo.from_call_stack(stack)
        assert info.function_name == "getUrl"

    def test_from_call_stack_empty(self):
        assert StackInfo.from_call_stack(CallStack()) is None

    def test_from_signature_round_trip(self):
        info = StackInfo("getUrl", "/c?p=2, true")
        assert StackInfo.from_signature(info.key) == info


class TestHotNodeCache:
    def test_miss_then_hit(self):
        cache = HotNodeCache()
        assert cache.lookup("getUrl(/c?p=2, true)") is None
        cache.store("getUrl(/c?p=2, true)", "<p>two</p>")
        assert cache.lookup("getUrl(/c?p=2, true)") == "<p>two</p>"
        assert cache.lookups == 2
        assert cache.hits == 1
        assert cache.stores == 1

    def test_hot_node_names_tracked(self):
        cache = HotNodeCache()
        cache.store("getUrl(/a, true)", "x")
        cache.store("fetchThing(/b)", "y")
        assert cache.hot_nodes == {"getUrl", "fetchThing"}

    def test_disabled_cache_never_hits(self):
        cache = HotNodeCache(enabled=False)
        cache.store("k", "v")
        assert cache.lookup("k") is None
        assert cache.size == 0

    def test_clear(self):
        cache = HotNodeCache()
        cache.store("k", "v")
        cache.clear()
        assert cache.lookup("k") is None
        assert not cache.contains("k")

    def test_entries_copy(self):
        cache = HotNodeCache()
        cache.store("k", "v")
        entries = cache.entries()
        entries["k"] = "tampered"
        assert cache.lookup("k") == "v"


class TestHotNodeInterceptor:
    """The debugger-level variant: skip whole function bodies (§4.4.2)."""

    def test_records_then_intercepts(self):
        interp = Interpreter()
        network_calls = []

        def fake_fetch(interpreter, this, args):
            network_calls.append(args[0])
            # Mark the enclosing script function as a pending hot call,
            # the way the XHR observer does.
            frame = interpreter.call_stack.top_script_frame()
            interceptor.mark_pending(StackInfo.from_frame(frame).key)
            return "content-" + str(int(args[0]))

        interceptor = HotNodeInterceptor()
        interp.define_global("fetch", NativeFunction("fetch", fake_fetch))
        interp.attach_debugger(interceptor)
        interp.run("function getPage(p) { return fetch(p); }")
        get_page = interp.global_env.get("getPage")

        first = interp.call_function(get_page, [2.0])
        second = interp.call_function(get_page, [2.0])  # intercepted
        third = interp.call_function(get_page, [3.0])  # different args
        assert first == second == "content-2"
        assert third == "content-3"
        assert network_calls == [2.0, 3.0]
        assert interceptor.intercepted == 1
        assert interceptor.recorded == 2
