"""Unit tests for crawl metrics and report aggregation edge cases."""

import pytest

from repro.crawler import CrawlReport, PageMetrics


def page(url="u", **overrides):
    defaults = dict(
        crawl_time_ms=1000.0,
        network_time_ms=400.0,
        js_time_ms=100.0,
        parse_time_ms=50.0,
        states=2,
        events_invoked=5,
        ajax_calls=2,
        cached_hits=3,
    )
    defaults.update(overrides)
    return PageMetrics(url=url, **defaults)


class TestPageMetrics:
    def test_processing_time(self):
        assert page().processing_time_ms == pytest.approx(600.0)

    def test_time_per_state(self):
        assert page().time_per_state_ms == pytest.approx(500.0)

    def test_time_per_state_zero_states(self):
        assert page(states=0).time_per_state_ms == 0.0


class TestCrawlReport:
    def test_empty_report_safe(self):
        report = CrawlReport()
        assert report.num_pages == 0
        assert report.mean_time_per_page_ms == 0.0
        assert report.mean_time_per_state_ms == 0.0
        assert report.states_per_second == 0.0
        assert report.pages_per_second == 0.0
        assert report.mean_events_per_page == 0.0

    def test_totals(self):
        report = CrawlReport()
        report.add(page("a"))
        report.add(page("b", crawl_time_ms=3000.0, states=4))
        assert report.num_pages == 2
        assert report.total_states == 6
        assert report.total_events == 10
        assert report.total_ajax_calls == 4
        assert report.total_cached_hits == 6
        assert report.total_time_ms == pytest.approx(4000.0)
        assert report.total_network_time_ms == pytest.approx(800.0)

    def test_means(self):
        report = CrawlReport()
        report.add(page("a"))
        report.add(page("b", crawl_time_ms=3000.0))
        assert report.mean_time_per_page_ms == pytest.approx(2000.0)
        assert report.mean_time_per_state_ms == pytest.approx(1000.0)
        assert report.mean_events_per_page == pytest.approx(5.0)

    def test_throughput(self):
        report = CrawlReport()
        report.add(page("a", crawl_time_ms=2000.0, states=4))
        assert report.states_per_second == pytest.approx(2.0)
        assert report.pages_per_second == pytest.approx(0.5)

    def test_merge(self):
        one = CrawlReport()
        one.add(page("a"))
        two = CrawlReport()
        two.add(page("b"))
        one.merge(two)
        assert one.num_pages == 2
        assert [p.url for p in one.pages] == ["a", "b"]
