"""Integration tests: the AJAX crawler against the SimTube site."""

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig, TraditionalCrawler
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=40, seed=11))


def cost():
    return CostModel(network_jitter=0.0)


def find_video(site, predicate):
    return next(i for i in range(site.config.num_videos) if predicate(site.comment_pages_of(i)))


class TestStateDiscovery:
    def test_single_page_video_yields_one_state(self, site):
        index = find_video(site, lambda n: n == 1)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.model.num_states == 1
        assert result.metrics.events_invoked == 0

    def test_multi_page_video_yields_all_states(self, site):
        index = find_video(site, lambda n: 3 <= n <= 8)
        pages = site.comment_pages_of(index)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.model.num_states == pages

    def test_state_cap_respected(self, site):
        index = find_video(site, lambda n: n >= 13)
        config = CrawlerConfig(max_additional_states=10)
        crawler = AjaxCrawler(site, config, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.model.num_states == 11  # initial + 10

    def test_states_contain_comment_text(self, site):
        index = find_video(site, lambda n: 2 <= n <= 5)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        texts = [state.text for state in result.model.states()]
        assert any(site.comment_text(index, 1, 0) in t for t in texts)
        assert any(site.comment_text(index, 2, 0) in t for t in texts)

    def test_initial_state_is_page_one(self, site):
        index = find_video(site, lambda n: n >= 2)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert site.comment_text(index, 1, 0) in result.model.initial_state.text

    def test_depths_follow_pagination(self, site):
        index = find_video(site, lambda n: 4 <= n <= 8)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        depths = sorted(state.depth for state in result.model.states())
        assert depths[0] == 0
        assert depths[1] == 1  # page 2 reachable in one event


class TestDuplicateElimination:
    def test_duplicates_detected(self, site):
        """next-then-prev and jump links revisit known states."""
        index = find_video(site, lambda n: 3 <= n <= 8)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.metrics.duplicates_detected > 0

    def test_transition_graph_has_back_edges(self, site):
        index = find_video(site, lambda n: 3 <= n <= 8)
        crawler = AjaxCrawler(site, cost_model=cost())
        model = crawler.crawl_page(site.video_url(index)).model
        prev_edges = [t for t in model.transitions() if t.event.handler == "prevPage()"]
        assert prev_edges
        # prev from page 2 leads back to the initial state.
        targets = {t.to_state for t in prev_edges}
        assert model.initial_state_id in targets

    def test_dedup_disabled_explodes_states(self, site):
        index = find_video(site, lambda n: 3 <= n <= 6)
        pages = site.comment_pages_of(index)
        config = CrawlerConfig(deduplicate_states=False, max_additional_states=30)
        crawler = AjaxCrawler(site, config, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.model.num_states > pages

    def test_event_invocation_guard(self, site):
        index = find_video(site, lambda n: n >= 5)
        config = CrawlerConfig(max_event_invocations=7)
        crawler = AjaxCrawler(site, config, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        assert result.metrics.events_invoked <= 7


class TestHotNodeCaching:
    def test_cache_reduces_network_calls(self, site):
        index = find_video(site, lambda n: 4 <= n <= 8)
        url = site.video_url(index)
        with_cache = AjaxCrawler(site, CrawlerConfig(use_hot_node=True), cost_model=cost())
        without = AjaxCrawler(site, CrawlerConfig(use_hot_node=False), cost_model=cost())
        cached = with_cache.crawl_page(url)
        uncached = without.crawl_page(url)
        assert cached.metrics.ajax_calls < uncached.metrics.ajax_calls
        assert cached.metrics.cached_hits > 0
        assert uncached.metrics.cached_hits == 0

    def test_same_states_with_and_without_cache(self, site):
        """Caching is a pure optimisation: the model must be identical."""
        index = find_video(site, lambda n: 3 <= n <= 8)
        url = site.video_url(index)
        cached = AjaxCrawler(site, CrawlerConfig(use_hot_node=True), cost_model=cost()).crawl_page(url)
        plain = AjaxCrawler(site, CrawlerConfig(use_hot_node=False), cost_model=cost()).crawl_page(url)
        cached_hashes = sorted(s.content_hash for s in cached.model.states())
        plain_hashes = sorted(s.content_hash for s in plain.model.states())
        assert cached_hashes == plain_hashes
        assert cached.model.num_transitions == plain.model.num_transitions

    def test_network_calls_bounded_by_unique_pages(self, site):
        index = find_video(site, lambda n: 4 <= n <= 8)
        pages = site.comment_pages_of(index)
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        # With the cache each distinct comment page is fetched at most once.
        assert result.metrics.ajax_calls <= pages

    def test_hot_node_identified(self, site):
        index = find_video(site, lambda n: n >= 2)
        crawler = AjaxCrawler(site, cost_model=cost())
        crawler.crawl_page(site.video_url(index))
        assert "getUrl" in crawler.hot_cache.hot_nodes

    def test_every_event_is_attempted(self, site):
        """Caching must not suppress events, only network traffic."""
        index = find_video(site, lambda n: 3 <= n <= 6)
        url = site.video_url(index)
        cached = AjaxCrawler(site, CrawlerConfig(use_hot_node=True), cost_model=cost()).crawl_page(url)
        plain = AjaxCrawler(site, CrawlerConfig(use_hot_node=False), cost_model=cost()).crawl_page(url)
        assert cached.metrics.events_invoked == plain.metrics.events_invoked


class TestMetrics:
    def test_time_accounting_consistent(self, site):
        index = find_video(site, lambda n: 2 <= n <= 6)
        crawler = AjaxCrawler(site, cost_model=cost())
        metrics = crawler.crawl_page(site.video_url(index)).metrics
        assert metrics.crawl_time_ms > 0
        assert 0 < metrics.network_time_ms < metrics.crawl_time_ms
        assert metrics.processing_time_ms > 0
        parts = metrics.network_time_ms + metrics.js_time_ms + metrics.parse_time_ms
        assert parts <= metrics.crawl_time_ms + 1e-6

    def test_crawl_many_pages(self, site):
        crawler = AjaxCrawler(site, cost_model=cost())
        urls = [site.video_url(i) for i in range(8)]
        result = crawler.crawl(urls)
        assert result.report.num_pages == 8
        assert len(result.models) == 8
        expected_states = sum(min(site.comment_pages_of(i), 11) for i in range(8))
        assert result.report.total_states == expected_states

    def test_deterministic_given_seed(self, site):
        index = find_video(site, lambda n: 2 <= n <= 6)
        url = site.video_url(index)
        one = AjaxCrawler(site, cost_model=cost()).crawl_page(url)
        two = AjaxCrawler(site, cost_model=cost()).crawl_page(url)
        assert one.metrics.crawl_time_ms == two.metrics.crawl_time_ms
        assert one.metrics.ajax_calls == two.metrics.ajax_calls


class TestTraditionalBaseline:
    def test_single_state(self, site):
        crawler = TraditionalCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(0))
        assert result.model.num_states == 1
        assert result.metrics.ajax_calls == 0
        assert result.metrics.js_time_ms == 0

    def test_sees_first_comment_page_only(self, site):
        index = find_video(site, lambda n: n >= 2)
        crawler = TraditionalCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(index))
        text = result.model.initial_state.text
        assert site.comment_text(index, 1, 0) in text
        assert site.comment_text(index, 2, 0) not in text

    def test_ajax_costs_more_than_traditional(self, site):
        urls = [site.video_url(i) for i in range(10)]
        trad = TraditionalCrawler(site, cost_model=cost()).crawl(urls)
        ajax = AjaxCrawler(site, cost_model=cost()).crawl(urls)
        assert ajax.report.total_time_ms > trad.report.total_time_ms
        # Per state, the overhead is far smaller than per page (Table 7.2).
        page_overhead = ajax.report.mean_time_per_page_ms / trad.report.mean_time_per_page_ms
        state_overhead = ajax.report.mean_time_per_state_ms / trad.report.mean_time_per_state_ms
        assert state_overhead < page_overhead
