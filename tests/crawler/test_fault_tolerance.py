"""Crawler fault tolerance and alternate state-identity modes."""

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig, TraditionalCrawler
from repro.errors import BrowserError
from repro.net import FaultInjector, FaultPlan, FaultRule, Response, RoutedServer
from repro.sites import SiteConfig, SyntheticYouTube


def make_tab_server(robots_body=None):
    """A small non-YouTube AJAX app: two tabs updating div#content."""
    server = RoutedServer()

    @server.route(r"/app")
    def app(request, match):
        return Response(
            body="""<html><body>
            <a id="t1" onclick="openTab(1)">one</a>
            <a id="t2" onclick="openTab(2)">two</a>
            <div id="sidebar"><p>static</p></div>
            <div id="content">start</div>
            <script>
            function fetchTab(i) {
                var req = new XMLHttpRequest();
                req.open("GET", "/tab?i=" + i, true);
                req.send(null);
                return req.responseText;
            }
            function openTab(i) {
                var body = fetchTab(i);
                if (body != "") {
                    document.getElementById("content").innerHTML = body;
                }
            }
            </script>
            </body></html>"""
        )

    @server.route(r"/tab")
    def tab(request, match):
        index = request.query.get("i")
        return Response(body=f"<p>tab {index} text</p>")

    if robots_body is not None:
        @server.route(r"/ajax-robots.json")
        def robots(request, match):
            return Response(body=robots_body, content_type="application/json")

    return server


def cost():
    return CostModel(network_jitter=0.0)


@pytest.fixture
def site():
    return SyntheticYouTube(SiteConfig(num_videos=6, seed=3))


class TestFaultTolerance:
    def test_dead_link_recorded_and_skipped(self, site):
        crawler = AjaxCrawler(site, cost_model=cost())
        urls = [site.video_url(0), "http://simtube.test/watch?v=v99999", site.video_url(1)]
        result = crawler.crawl(urls)
        assert result.failed_urls == ["http://simtube.test/watch?v=v99999"]
        assert result.report.num_pages == 2

    def test_fail_fast_raises(self, site):
        crawler = AjaxCrawler(site, cost_model=cost())
        with pytest.raises(BrowserError):
            crawler.crawl(["http://simtube.test/watch?v=v99999"], fail_fast=True)

    def test_all_good_has_no_failures(self, site):
        crawler = TraditionalCrawler(site, cost_model=cost())
        result = crawler.crawl([site.video_url(i) for i in range(3)])
        assert result.failed_urls == []

    def test_merge_carries_failures(self, site):
        from repro.crawler import CrawlResult

        a = CrawlResult(failed_urls=["x"])
        b = CrawlResult(failed_urls=["y"])
        a.merge(b)
        assert a.failed_urls == ["x", "y"]

    def test_failure_report_carries_attempts_and_elapsed(self, site):
        plan = FaultPlan([FaultRule(r"/watch", rate=1.0)])
        config = CrawlerConfig(retry_max_attempts=3)
        crawler = AjaxCrawler(FaultInjector(site, plan), config, cost_model=cost())
        result = crawler.crawl([site.video_url(0), site.video_url(1)])
        assert result.report.num_pages == 0
        assert [f.url for f in result.failures] == result.failed_urls
        assert all(f.attempts == 3 for f in result.failures)
        assert all(f.elapsed_ms > 0 for f in result.failures)
        assert all("status 500" in f.error for f in result.failures)


class TestQuarantine:
    """Dead AJAX endpoints degrade the model, never kill the page crawl."""

    def test_dead_ajax_endpoint_quarantined(self):
        server = make_tab_server()
        plan = FaultPlan([FaultRule(r"/tab", rate=1.0)])
        config = CrawlerConfig(use_hot_node=False, retry_max_attempts=2)
        crawler = AjaxCrawler(FaultInjector(server, plan), config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        # The page itself survives with just its initial state.
        assert result.model.num_states == 1
        assert result.metrics.events_quarantined >= 2
        # Quarantined events never become transitions.
        assert result.model.num_transitions == 0
        assert crawler.stats.failed_requests > 0

    def test_flaky_endpoint_recovers_and_crawl_is_complete(self):
        server = make_tab_server()
        # Each tab URL fails once, then recovers: retries absorb it all.
        plan = FaultPlan([FaultRule(r"/tab", fail_first=1)])
        config = CrawlerConfig(use_hot_node=False, retry_max_attempts=3)
        crawler = AjaxCrawler(FaultInjector(server, plan), config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        clean = AjaxCrawler(
            make_tab_server(), CrawlerConfig(use_hot_node=False), cost_model=cost()
        ).crawl_page("http://t.test/app")
        assert result.model.num_states == clean.model.num_states
        assert result.metrics.events_quarantined == 0
        assert crawler.stats.retries == plan.num_injected

    def test_zero_fault_crawl_identical_with_retries_enabled(self, site):
        url = site.video_url(0)
        plain = AjaxCrawler(site, cost_model=cost()).crawl_page(url)
        retrying = AjaxCrawler(
            site, CrawlerConfig(retry_max_attempts=5), cost_model=cost()
        ).crawl_page(url)
        assert plain.model.num_states == retrying.model.num_states
        assert plain.metrics.crawl_time_ms == pytest.approx(retrying.metrics.crawl_time_ms)
        assert plain.metrics.network_time_ms == pytest.approx(
            retrying.metrics.network_time_ms
        )


class TestModifiedRegions:
    """Transition ``modified`` comes from the DOM diff, not a hardcoded id."""

    def test_non_youtube_site_reports_actual_region(self):
        crawler = AjaxCrawler(
            make_tab_server(), CrawlerConfig(use_hot_node=False), cost_model=cost()
        )
        result = crawler.crawl_page("http://t.test/app")
        transitions = list(result.model.transitions())
        real = [t for t in transitions if t.from_state != t.to_state]
        assert real, "tab clicks must produce state-changing transitions"
        for transition in real:
            assert "content" in transition.modified
            assert "recent_comments" not in transition.modified
            assert "sidebar" not in transition.modified
        # Self-loops re-apply identical content: nothing was modified,
        # and the annotation now says so instead of a hardcoded guess.
        for transition in transitions:
            if transition.from_state == transition.to_state:
                assert transition.modified == ()

    def test_youtube_site_still_reports_recent_comments(self, site):
        url = site.video_url(
            next(i for i in range(6) if site.comment_pages_of(i) >= 2)
        )
        result = AjaxCrawler(site, cost_model=cost()).crawl_page(url)
        real = [
            t for t in result.model.transitions() if t.from_state != t.to_state
        ]
        assert real
        assert all("recent_comments" in t.modified for t in real)


class TestGranularityHintTypes:
    """{"max_states": true} must not silently cap a page at one state."""

    def crawl_states(self, robots_body):
        crawler = AjaxCrawler(
            make_tab_server(robots_body=robots_body),
            CrawlerConfig(use_hot_node=False),
            cost_model=cost(),
        )
        return crawler.crawl_page("http://t.test/app").model.num_states

    def test_bool_hint_ignored(self):
        assert self.crawl_states('{"max_states": true}') == self.crawl_states(None)

    def test_integer_hint_still_honoured(self):
        assert self.crawl_states('{"max_states": 1}') == 1


class TestTextIdentity:
    """state_identity='text' collapses markup-only differences (§3.2 /
    near-duplicate related work)."""

    def make_counter_server(self):
        """Tabs whose fragments differ only by a hidden counter attribute."""
        server = RoutedServer()
        self_counter = {"n": 0}

        @server.route(r"/app")
        def app(request, match):
            return Response(
                body="""<html><body>
                <a id="t1" onclick="openTab(1)">one</a>
                <a id="t2" onclick="openTab(2)">two</a>
                <div id="content">start</div>
                <script>
                function fetchTab(i) {
                    var req = new XMLHttpRequest();
                    req.open("GET", "/tab?i=" + i, true);
                    req.send(null);
                    return req.responseText;
                }
                function openTab(i) {
                    document.getElementById("content").innerHTML = fetchTab(i);
                }
                </script>
                </body></html>"""
            )

        @server.route(r"/tab")
        def tab(request, match):
            # A changing data-counter attribute but identical text: a
            # near-duplicate in the shingling sense.
            self_counter["n"] += 1
            index = request.query.get("i")
            return Response(
                body=f'<p data-counter="{self_counter["n"]}">tab {index} text</p>'
            )

        return server

    def test_dom_identity_sees_near_duplicates_as_distinct(self):
        server = self.make_counter_server()
        config = CrawlerConfig(
            use_hot_node=False,  # force re-fetching: counter increments
            state_identity="dom",
            max_additional_states=6,
        )
        crawler = AjaxCrawler(server, config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        # The counter makes every fetch a "new" DOM state.
        assert result.model.num_states > 3

    def test_text_identity_collapses_near_duplicates(self):
        server = self.make_counter_server()
        config = CrawlerConfig(
            use_hot_node=False,
            state_identity="text",
            max_additional_states=6,
        )
        crawler = AjaxCrawler(server, config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        # initial + tab1 + tab2, regardless of the attribute churn.
        assert result.model.num_states == 3

    def test_text_identity_on_simtube_matches_dom(self, site):
        """On a stable site both identities agree on the state count."""
        url = site.video_url(
            next(i for i in range(6) if site.comment_pages_of(i) >= 2)
        )
        dom_result = AjaxCrawler(
            site, CrawlerConfig(state_identity="dom"), cost_model=cost()
        ).crawl_page(url)
        text_result = AjaxCrawler(
            site, CrawlerConfig(state_identity="text"), cost_model=cost()
        ).crawl_page(url)
        assert dom_result.model.num_states == text_result.model.num_states
