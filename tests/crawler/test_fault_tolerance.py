"""Crawler fault tolerance and alternate state-identity modes."""

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig, TraditionalCrawler
from repro.errors import BrowserError
from repro.net import Response, RoutedServer
from repro.sites import SiteConfig, SyntheticYouTube


def cost():
    return CostModel(network_jitter=0.0)


@pytest.fixture
def site():
    return SyntheticYouTube(SiteConfig(num_videos=6, seed=3))


class TestFaultTolerance:
    def test_dead_link_recorded_and_skipped(self, site):
        crawler = AjaxCrawler(site, cost_model=cost())
        urls = [site.video_url(0), "http://simtube.test/watch?v=v99999", site.video_url(1)]
        result = crawler.crawl(urls)
        assert result.failed_urls == ["http://simtube.test/watch?v=v99999"]
        assert result.report.num_pages == 2

    def test_fail_fast_raises(self, site):
        crawler = AjaxCrawler(site, cost_model=cost())
        with pytest.raises(BrowserError):
            crawler.crawl(["http://simtube.test/watch?v=v99999"], fail_fast=True)

    def test_all_good_has_no_failures(self, site):
        crawler = TraditionalCrawler(site, cost_model=cost())
        result = crawler.crawl([site.video_url(i) for i in range(3)])
        assert result.failed_urls == []

    def test_merge_carries_failures(self, site):
        from repro.crawler import CrawlResult

        a = CrawlResult(failed_urls=["x"])
        b = CrawlResult(failed_urls=["y"])
        a.merge(b)
        assert a.failed_urls == ["x", "y"]


class TestTextIdentity:
    """state_identity='text' collapses markup-only differences (§3.2 /
    near-duplicate related work)."""

    def make_counter_server(self):
        """Tabs whose fragments differ only by a hidden counter attribute."""
        server = RoutedServer()
        self_counter = {"n": 0}

        @server.route(r"/app")
        def app(request, match):
            return Response(
                body="""<html><body>
                <a id="t1" onclick="openTab(1)">one</a>
                <a id="t2" onclick="openTab(2)">two</a>
                <div id="content">start</div>
                <script>
                function fetchTab(i) {
                    var req = new XMLHttpRequest();
                    req.open("GET", "/tab?i=" + i, true);
                    req.send(null);
                    return req.responseText;
                }
                function openTab(i) {
                    document.getElementById("content").innerHTML = fetchTab(i);
                }
                </script>
                </body></html>"""
            )

        @server.route(r"/tab")
        def tab(request, match):
            # A changing data-counter attribute but identical text: a
            # near-duplicate in the shingling sense.
            self_counter["n"] += 1
            index = request.query.get("i")
            return Response(
                body=f'<p data-counter="{self_counter["n"]}">tab {index} text</p>'
            )

        return server

    def test_dom_identity_sees_near_duplicates_as_distinct(self):
        server = self.make_counter_server()
        config = CrawlerConfig(
            use_hot_node=False,  # force re-fetching: counter increments
            state_identity="dom",
            max_additional_states=6,
        )
        crawler = AjaxCrawler(server, config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        # The counter makes every fetch a "new" DOM state.
        assert result.model.num_states > 3

    def test_text_identity_collapses_near_duplicates(self):
        server = self.make_counter_server()
        config = CrawlerConfig(
            use_hot_node=False,
            state_identity="text",
            max_additional_states=6,
        )
        crawler = AjaxCrawler(server, config, cost_model=cost())
        result = crawler.crawl_page("http://t.test/app")
        # initial + tab1 + tab2, regardless of the attribute churn.
        assert result.model.num_states == 3

    def test_text_identity_on_simtube_matches_dom(self, site):
        """On a stable site both identities agree on the state count."""
        url = site.video_url(
            next(i for i in range(6) if site.comment_pages_of(i) >= 2)
        )
        dom_result = AjaxCrawler(
            site, CrawlerConfig(state_identity="dom"), cost_model=cost()
        ).crawl_page(url)
        text_result = AjaxCrawler(
            site, CrawlerConfig(state_identity="text"), cost_model=cost()
        ).crawl_page(url)
        assert dom_result.model.num_states == text_result.model.num_states
