"""Tests for incremental (repetitive) crawling across sessions."""

import pytest

from repro.clock import CostModel
from repro.crawler import CrawlHistory, IncrementalAjaxCrawler
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    # decorative_events adds a no-op onmouseover per comment list: the
    # "very granular events" the incremental recrawler learns to skip.
    return SyntheticYouTube(SiteConfig(num_videos=12, seed=23, decorative_events=True))


def cost():
    return CostModel(network_jitter=0.0)


def multi_page_url(site):
    index = next(
        i for i in range(site.config.num_videos) if 3 <= site.comment_pages_of(i) <= 8
    )
    return site.video_url(index)


class TestCrawlHistory:
    def test_records_and_answers(self, site):
        crawler = IncrementalAjaxCrawler(site, cost_model=cost())
        crawler.crawl_page(multi_page_url(site))
        assert crawler.history.size > 0
        assert crawler.history.noop_count > 0  # decorative events observed

    def test_save_load_round_trip(self, site, tmp_path):
        crawler = IncrementalAjaxCrawler(site, cost_model=cost())
        crawler.crawl_page(multi_page_url(site))
        path = tmp_path / "history.json"
        crawler.history.save(path)
        loaded = CrawlHistory.load(path)
        assert loaded.size == crawler.history.size
        assert loaded.noop_count == crawler.history.noop_count


class TestRecrawl:
    def test_second_session_skips_noop_events(self, site):
        url = multi_page_url(site)
        first = IncrementalAjaxCrawler(site, cost_model=cost())
        first_result = first.crawl_page(url)
        assert first_result.metrics.events_skipped_from_history == 0

        second = IncrementalAjaxCrawler(site, history=first.history, cost_model=cost())
        second_result = second.crawl_page(url)
        assert second_result.metrics.events_skipped_from_history > 0
        assert (
            second_result.metrics.events_invoked
            < first_result.metrics.events_invoked
        )

    def test_recrawl_builds_identical_model(self, site):
        """Skipping proven no-ops must not change what is crawled."""
        url = multi_page_url(site)
        first = IncrementalAjaxCrawler(site, cost_model=cost())
        first_result = first.crawl_page(url)
        second = IncrementalAjaxCrawler(site, history=first.history, cost_model=cost())
        second_result = second.crawl_page(url)
        first_hashes = sorted(s.content_hash for s in first_result.model.states())
        second_hashes = sorted(s.content_hash for s in second_result.model.states())
        assert first_hashes == second_hashes
        assert (
            second_result.model.num_transitions == first_result.model.num_transitions
        )

    def test_recrawl_is_faster(self, site):
        url = multi_page_url(site)
        first = IncrementalAjaxCrawler(site, cost_model=cost())
        first_result = first.crawl_page(url)
        second = IncrementalAjaxCrawler(site, history=first.history, cost_model=cost())
        second_result = second.crawl_page(url)
        assert second_result.metrics.crawl_time_ms < first_result.metrics.crawl_time_ms

    def test_history_within_one_session_already_helps(self, site):
        """The same no-op appears in several states of one page; after
        the first observation the rest of the session skips it."""
        url = multi_page_url(site)
        crawler = IncrementalAjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(url)
        # Within-session skipping only triggers for *identical* state
        # content, which distinct comment pages never share, so nothing
        # is skipped — the history is purely cross-session here.
        assert result.metrics.events_skipped_from_history == 0

    def test_fresh_history_on_changed_state_refires(self, site):
        """History keys include the state hash: different content means
        no skipping (safety under site drift)."""
        url = multi_page_url(site)
        first = IncrementalAjaxCrawler(site, cost_model=cost())
        first.crawl_page(url)
        drifted = SyntheticYouTube(
            SiteConfig(num_videos=12, seed=99, decorative_events=True)
        )
        second = IncrementalAjaxCrawler(drifted, history=first.history, cost_model=cost())
        result = second.crawl_page(drifted.video_url(0))
        assert result.metrics.events_skipped_from_history == 0
