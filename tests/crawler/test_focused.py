"""Tests for focused (profile-guided) AJAX crawling."""

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig, FocusedAjaxCrawler, InterestProfile
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=30, seed=31))


def cost():
    return CostModel(network_jitter=0.0)


class TestInterestProfile:
    def test_terms_tokenized(self):
        profile = InterestProfile(["American Idol", "wow"])
        assert profile.terms == frozenset({"american", "idol", "wow"})

    def test_relevance_fraction(self):
        profile = InterestProfile(["wow", "dance"])
        assert profile.relevance("wow what a show") == pytest.approx(0.5)
        assert profile.relevance("wow dance dance") == pytest.approx(1.0)
        assert profile.relevance("nothing here") == 0.0
        assert profile.relevance("") == 0.0

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            InterestProfile([])
        with pytest.raises(ValueError):
            InterestProfile(["!!!"])


class TestFocusedCrawl:
    def test_crawls_fewer_or_equal_states(self, site):
        urls = [site.video_url(i) for i in range(12)]
        full = AjaxCrawler(site, cost_model=cost()).crawl(urls)
        focused = FocusedAjaxCrawler(
            site, InterestProfile(["wow"]), min_relevance=0.0, cost_model=cost()
        ).crawl(urls)
        assert focused.report.total_states <= full.report.total_states
        assert focused.report.total_events <= full.report.total_events

    def test_positive_min_relevance_prunes(self, site):
        urls = [site.video_url(i) for i in range(12)]
        full = AjaxCrawler(site, cost_model=cost()).crawl(urls)
        pruned = FocusedAjaxCrawler(
            site,
            InterestProfile(["xylophone zephyr"]),  # matches ~nothing
            min_relevance=0.0,
            cost_model=cost(),
        ).crawl(urls)
        # With an unmatched profile only depth-0/1 states are reached.
        assert pruned.report.total_states < full.report.total_states
        for model in pruned.models:
            assert all(state.depth <= 1 for state in model.states())

    def test_initial_state_always_expanded(self, site):
        index = next(
            i for i in range(30) if site.comment_pages_of(i) >= 3
        )
        crawler = FocusedAjaxCrawler(
            site, InterestProfile(["nomatchword"]), cost_model=cost()
        )
        result = crawler.crawl_page(site.video_url(index))
        # Depth-1 neighbours of the initial state are reached even with
        # a hopeless profile.
        assert result.model.num_states >= 2

    def test_best_first_prefers_relevant_states(self, site):
        """With a tiny state budget, the focused crawl spends it on the
        profile's content when the full crawl spreads it evenly."""
        index = next(
            i for i in range(30) if site.comment_pages_of(i) >= 6
        )
        url = site.video_url(index)
        # Pick a profile word that occurs on a deep comment page.
        deep_words = site.comment_text(index, 4, 0).split()
        profile_word = max(deep_words, key=len)
        config = CrawlerConfig(max_additional_states=4)
        focused = FocusedAjaxCrawler(
            site, InterestProfile([profile_word]), config=config, cost_model=cost()
        )
        result = focused.crawl_page(url)
        assert result.model.num_states <= 5

    def test_focused_preserves_profile_recall(self, site):
        """Focused crawling keeps a larger share of profile results than
        of arbitrary results — the point of personalization."""
        from repro.search import SearchEngine

        urls = [site.video_url(i) for i in range(20)]
        profile_terms = ["wow", "dance", "funny"]
        full = AjaxCrawler(site, cost_model=cost()).crawl(urls)
        focused = FocusedAjaxCrawler(
            site, InterestProfile(profile_terms), min_relevance=0.0, cost_model=cost()
        ).crawl(urls)
        full_engine = SearchEngine.build(full.models)
        focused_engine = SearchEngine.build(focused.models)
        for term in profile_terms:
            full_count = full_engine.result_count(term)
            focused_count = focused_engine.result_count(term)
            if full_count:
                assert focused_count / full_count > 0.5


class TestFrontierExhaustion:
    """The best-first frontier draining before the state cap is hit."""

    def test_impossible_gate_exhausts_frontier_and_terminates(self, site):
        # min_relevance = 1.0 is an impossible bar (relevance must be
        # *strictly* greater), so only the initial state expands: the
        # frontier fills with its depth-1 neighbours, every one is
        # refused expansion, and the crawl drains the frontier without
        # ever reaching the (generous) state cap.
        config = CrawlerConfig(max_additional_states=500)
        crawler = FocusedAjaxCrawler(
            site,
            InterestProfile(["wow", "dance"]),
            config=config,
            min_relevance=1.0,
            cost_model=cost(),
        )
        result = crawler.crawl_page(site.video_url(0))
        assert result.metrics.states_capped == 0
        assert result.model.num_states < config.max_states
        assert all(state.depth <= 1 for state in result.model.states())

    def test_eventless_page_yields_single_state(self):
        from repro.net import Response, RoutedServer

        server = RoutedServer()

        @server.route(r"/static")
        def static(request, match):
            return Response(body="<html><body><p>plain text only</p></body></html>")

        crawler = FocusedAjaxCrawler(
            server, InterestProfile(["plain"]), cost_model=cost()
        )
        result = crawler.crawl_page("http://t.test/static")
        assert result.model.num_states == 1
        assert result.model.num_transitions == 0

    def test_generous_profile_recovers_generated_ground_truth(self):
        """With every marker in the profile, focused == exhaustive: the
        frontier only exhausts once the whole spec graph is recovered."""
        from repro.testgen import GeneratedSite, conformance_config, spec_for_seed

        spec = spec_for_seed(0, num_pages=1)
        page = spec.pages[0]
        crawler = FocusedAjaxCrawler(
            GeneratedSite(spec),
            InterestProfile(page.markers),
            config=conformance_config(spec),
            min_relevance=0.0,
            cost_model=cost(),
        )
        result = crawler.crawl_page(spec.page_url(0))
        assert result.model.num_states == page.num_states
        assert result.model.num_transitions == len(page.transitions)
