"""Tests for the form-filling crawler on the SimSuggest application."""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig, FormFillingAjaxCrawler
from repro.search import ResultAggregator, SearchEngine
from repro.sites import SyntheticSuggest


@pytest.fixture
def site():
    return SyntheticSuggest()


def cost():
    return CostModel(network_jitter=0.0)


DICTIONARY = ("dance", "funny", "zzz")


class TestSuggestServer:
    def test_page_serves(self, site):
        from repro.net import Request

        assert site.handle(Request("GET", site.search_url)).ok

    def test_completions(self, site):
        assert site.completions_for("dance") == [
            "dance music", "dance tutorial", "dance battle",
        ]
        assert site.completions_for("") == []
        assert site.completions_for("zzz") == []

    def test_suggest_endpoint(self, site):
        from repro.net import Request

        body = site.handle(
            Request("GET", f"{site.base_url}/suggest?q=funny")
        ).body
        assert "funny cats" in body
        none = site.handle(Request("GET", f"{site.base_url}/suggest?q=zzz")).body
        assert "no suggestions" in none


class TestBasicCrawlerCannotSeeSuggestions:
    def test_no_states_beyond_initial(self, site):
        """The thesis' limitation: without form input, Suggest-style apps
        expose nothing to crawl."""
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        assert result.model.num_states == 1


class TestFormFillingCrawler:
    def test_probes_dictionary_values(self, site):
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        texts = [state.text for state in result.model.states()]
        assert any("dance tutorial" in t for t in texts)
        assert any("funny cats" in t for t in texts)
        assert any("no suggestions" in t for t in texts)  # the zzz probe

    def test_one_state_per_distinct_result(self, site):
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        # initial + dance + funny + no-suggestions = 4 states...
        # plus deeper states reached by re-probing from result states.
        assert result.model.num_states >= 4

    def test_transitions_annotated_with_value(self, site):
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        values = {
            t.event.input_value
            for t in result.model.transitions()
            if t.event.input_value is not None
        }
        assert values == set(DICTIONARY)

    def test_model_round_trip_keeps_values(self, site):
        from repro.model import ApplicationModel

        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        clone = ApplicationModel.from_dict(result.model.to_dict())
        values = {
            t.event.input_value
            for t in clone.transitions()
            if t.event.input_value is not None
        }
        assert values == set(DICTIONARY)

    def test_search_finds_form_gated_content(self, site):
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        engine = SearchEngine.build([result.model])
        hits = engine.search("tutorial")
        assert hits
        assert hits[0].uri == site.search_url

    def test_result_aggregation_replays_typed_value(self, site):
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        target = next(
            s for s in result.model.states() if "funny cats" in s.text
        )
        aggregator = ResultAggregator(Browser(site, cost_model=cost()))
        page = aggregator.reconstruct(result.model, target.state_id)
        assert "funny cats" in page.text

    def test_respects_state_cap(self, site):
        config = CrawlerConfig(max_additional_states=2)
        crawler = FormFillingAjaxCrawler(site, DICTIONARY, config, cost_model=cost())
        result = crawler.crawl_page(site.search_url)
        assert result.model.num_states <= 3

    def test_non_text_inputs_not_probed(self):
        from repro.net import Response, RoutedServer

        server = RoutedServer()

        @server.route(r"/page")
        def page(request, match):
            return Response(
                body="""<html><body>
                <input id="cb" type="checkbox" onchange="toggle()">
                <div id="out">x</div>
                <script>function toggle() {
                    document.getElementById('out').innerHTML = 'toggled';
                }</script>
                </body></html>"""
            )

        crawler = FormFillingAjaxCrawler(server, ("a", "b"), cost_model=cost())
        result = crawler.crawl_page("http://t.test/page")
        # The checkbox is not a text input: no value probes were issued.
        assert all(
            t.event.input_value is None for t in result.model.transitions()
        )


class TestEmptyFormPaths:
    def test_empty_dictionary_degenerates_to_basic_crawl(self, site):
        """No values to probe: the form-filling crawler must behave
        exactly like the base crawler (suggestions stay invisible)."""
        filler = FormFillingAjaxCrawler(site, (), cost_model=cost())
        filled = filler.crawl_page(site.search_url)
        basic = AjaxCrawler(site, cost_model=cost()).crawl_page(site.search_url)
        assert filled.model.num_states == basic.model.num_states == 1
        assert filled.model.num_transitions == basic.model.num_transitions
        assert all(
            t.event.input_value is None for t in filled.model.transitions()
        )

    def test_no_op_form_handler_records_no_transition(self):
        """Typing into a form whose handler never mutates the DOM is an
        'empty submit': no new state and no transition may appear."""
        from repro.net import Response, RoutedServer

        server = RoutedServer()

        @server.route(r"/form")
        def form(request, match):
            return Response(
                body="""<html><body>
                <input id="q" type="text" onkeyup="noop()">
                <div id="out">stable</div>
                <script>function noop() { var x = 1; }</script>
                </body></html>"""
            )

        crawler = FormFillingAjaxCrawler(server, ("alpha", "beta"), cost_model=cost())
        result = crawler.crawl_page("http://t.test/form")
        assert result.model.num_states == 1
        assert result.model.num_transitions == 0


class TestDuplicateSubmitPaths:
    def test_duplicate_dictionary_values_dedupe_states(self, site):
        """Probing the same value twice must not mint duplicate states."""
        once = FormFillingAjaxCrawler(
            site, ("dance",), cost_model=cost()
        ).crawl_page(site.search_url)
        twice = FormFillingAjaxCrawler(
            site, ("dance", "dance"), cost_model=cost()
        ).crawl_page(site.search_url)
        assert twice.model.num_states == once.model.num_states
        assert {
            t.event.input_value for t in twice.model.transitions()
        } == {"dance"}

    def test_duplicate_values_reach_identical_content(self, site):
        result = FormFillingAjaxCrawler(
            site, ("funny", "funny"), cost_model=cost()
        ).crawl_page(site.search_url)
        hashes = [s.content_hash for s in result.model.states()]
        assert len(hashes) == len(set(hashes))
