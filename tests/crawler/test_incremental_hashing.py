"""Merkle hashing at the crawler level: mode equivalence and tracing.

``incremental_hashing=True`` (the default) must be observationally
identical to the seed full-rewalk baseline — same models, same hashes,
same virtual-clock accounting — while doing far less hashing work.
"""

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.obs import HASH_FULL, HASH_INCREMENTAL, Recorder
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube


def crawl_webmail(config):
    site = SyntheticWebmail()
    crawler = AjaxCrawler(site, config, clock=SimClock(), cost_model=CostModel())
    return crawler.crawl_page(site.inbox_url)


def model_fingerprint(model):
    return (
        sorted(state.content_hash for state in model.states()),
        sorted(
            (t.from_state, t.to_state, t.event.source, t.modified)
            for t in model.transitions()
        ),
    )


class TestModeEquivalence:
    def test_webmail_models_and_timings_identical(self):
        merkle = crawl_webmail(CrawlerConfig(incremental_hashing=True))
        legacy = crawl_webmail(CrawlerConfig(incremental_hashing=False))
        assert model_fingerprint(merkle.model) == model_fingerprint(legacy.model)
        assert merkle.metrics.crawl_time_ms == legacy.metrics.crawl_time_ms
        assert merkle.metrics.states == legacy.metrics.states
        assert merkle.metrics.duplicates_detected == legacy.metrics.duplicates_detected

    def test_merkle_hashes_fewer_bytes(self):
        merkle = crawl_webmail(CrawlerConfig(incremental_hashing=True))
        legacy = crawl_webmail(CrawlerConfig(incremental_hashing=False))
        assert merkle.metrics.hash_bytes_hashed < legacy.metrics.hash_bytes_hashed
        assert merkle.metrics.hash_incremental_passes > 0
        assert legacy.metrics.hash_nodes_skipped == 0  # seed never skips

    def test_youtube_models_identical(self):
        site = SyntheticYouTube(SiteConfig(num_videos=3, seed=7))
        urls = [site.video_url(i) for i in range(3)]

        def run(incremental):
            crawler = AjaxCrawler(
                site,
                CrawlerConfig(incremental_hashing=incremental),
                clock=SimClock(),
                cost_model=CostModel(),
            )
            result = crawler.crawl(urls)
            return [model_fingerprint(m) for m in result.models], (
                result.report.total_states,
                result.report.total_time_ms,
            )

        assert run(True) == run(False)

    def test_text_identity_mode_equivalent(self):
        config = CrawlerConfig(state_identity="text")
        merkle = crawl_webmail(
            CrawlerConfig(state_identity="text", incremental_hashing=True)
        )
        legacy = crawl_webmail(
            CrawlerConfig(state_identity="text", incremental_hashing=False)
        )
        assert config.incremental_hashing  # default stays on
        assert model_fingerprint(merkle.model) == model_fingerprint(legacy.model)


class TestHashTracing:
    def trace(self, config):
        site = SyntheticWebmail()
        recorder = Recorder(clock=SimClock())
        crawler = AjaxCrawler(
            site, config, clock=recorder.clock, cost_model=CostModel(), recorder=recorder
        )
        crawler.crawl_page(site.inbox_url)
        return recorder.events

    def test_default_config_emits_no_hash_events(self):
        events = self.trace(CrawlerConfig())
        assert not [e for e in events if e.kind in (HASH_FULL, HASH_INCREMENTAL)]

    def test_trace_hashing_emits_pass_events(self):
        events = self.trace(CrawlerConfig(trace_hashing=True))
        passes = [e for e in events if e.kind in (HASH_FULL, HASH_INCREMENTAL)]
        assert passes
        assert any(e.kind == HASH_INCREMENTAL for e in passes)
        for event in passes:
            assert set(event.fields) >= {
                "url",
                "nodes_hashed",
                "nodes_skipped",
                "bytes_hashed",
                "regions",
            }
        # The non-hash part of the trace is unchanged by the flag.
        baseline = [e.kind for e in self.trace(CrawlerConfig())]
        filtered = [
            e.kind
            for e in events
            if e.kind not in (HASH_FULL, HASH_INCREMENTAL)
        ]
        assert filtered == baseline
