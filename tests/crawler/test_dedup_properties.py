"""Property-based tests for the simhash/LSH near-duplicate layer.

Three guarantees carry the whole collapse design, so each is pinned as
a law over randomized inputs rather than as examples:

* :func:`~repro.dom.simhash.hamming` is a metric on 64-bit
  fingerprints (the collapse threshold test is meaningless otherwise);
* banded lookup has **recall 1** at its covering threshold — any pair
  within Hamming distance ``bands - 1`` shares a full band, so the LSH
  probe can never miss a mergeable candidate (merges may only be missed
  by the threshold, never by the index);
* greedy collapse is **order-insensitive on clustered inputs**: when
  clusters are separated by more than twice the threshold, the
  partition into canonical groups does not depend on observation order
  (so crawl scheduling, retries and backend choice cannot change the
  model).
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.crawler.dedup import BandedLshTable, StateCollapser
from repro.dom.simhash import (
    FINGERPRINT_BITS,
    band_keys,
    bands_for_threshold,
    hamming,
    simhash64,
)

fingerprints = st.integers(min_value=0, max_value=(1 << FINGERPRINT_BITS) - 1)


def flip_bits(fingerprint, positions):
    for position in positions:
        fingerprint ^= 1 << position
    return fingerprint


def distinct_positions(rng, count):
    return rng.sample(range(FINGERPRINT_BITS), count)


class TestHammingIsAMetric:
    @given(fingerprints, fingerprints)
    def test_symmetry_and_identity(self, a, b):
        assert hamming(a, b) == hamming(b, a)
        assert hamming(a, a) == 0
        assert (hamming(a, b) == 0) == (a == b)

    @given(fingerprints, fingerprints, fingerprints)
    def test_triangle_inequality(self, a, b, c):
        assert hamming(a, c) <= hamming(a, b) + hamming(b, c)

    @given(fingerprints, st.integers(min_value=0), st.integers(min_value=1, max_value=63))
    def test_flipping_k_bits_moves_exactly_k(self, fingerprint, seed, k):
        rng = random.Random(seed)
        other = flip_bits(fingerprint, distinct_positions(rng, k))
        assert hamming(fingerprint, other) == k


class TestSimhashIsASetFunction:
    @given(st.lists(st.text(alphabet="abcxyz0189!_", min_size=1, max_size=12)))
    def test_order_and_multiplicity_irrelevant(self, features):
        shuffled = list(features)
        random.Random(0).shuffle(shuffled)
        assert simhash64(features) == simhash64(shuffled)
        assert simhash64(features) == simhash64(features * 2)
        assert simhash64(features) == simhash64(frozenset(features))


class TestBandedRecall:
    @given(
        fingerprints,
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0),
    )
    def test_pairs_within_threshold_share_a_band(self, fingerprint, threshold, seed):
        bands = bands_for_threshold(threshold)
        rng = random.Random(seed)
        distance = rng.randint(0, threshold)
        twin = flip_bits(fingerprint, distinct_positions(rng, distance))
        shared = set(enumerate(band_keys(fingerprint, bands))) & set(
            enumerate(band_keys(twin, bands))
        )
        assert shared, (fingerprint, twin, bands)

    @given(
        fingerprints,
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0),
    )
    def test_table_lookup_never_misses_a_mergeable_candidate(
        self, fingerprint, threshold, seed
    ):
        table = BandedLshTable(bands_for_threshold(threshold))
        table.insert(fingerprint, "canonical")
        rng = random.Random(seed)
        twin = flip_bits(
            fingerprint, distinct_positions(rng, rng.randint(0, threshold))
        )
        assert "canonical" in table.candidates(twin)


class TestCollapseOrderInsensitivity:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
    def test_partition_invariant_under_observation_order(
        self, threshold, num_clusters, layout_seed, shuffle_seed
    ):
        rng = random.Random(layout_seed)
        centers = [
            rng.getrandbits(FINGERPRINT_BITS) for _ in range(num_clusters)
        ]
        # Clustered regime: any cross-cluster pair sits beyond 2t, so a
        # variant of one cluster can never be within t of another
        # cluster's members regardless of which variant became the
        # canonical.  (Unclustered inputs are *defined* to be
        # order-dependent under greedy collapse.)
        assume(
            all(
                hamming(a, b) > 2 * threshold + 1
                for i, a in enumerate(centers)
                for b in centers[i + 1 :]
            )
        )
        observations = []
        for cluster, center in enumerate(centers):
            observations.append((center, f"c{cluster}v0"))
            for variant in range(1, rng.randint(1, 4) + 1):
                flips = rng.randint(0, threshold // 2)
                observations.append(
                    (
                        flip_bits(center, distinct_positions(rng, flips)),
                        f"c{cluster}v{variant}",
                    )
                )

        def collapse(order):
            collapser = StateCollapser(threshold)
            for fingerprint, content_hash in order:
                collapser.observe_fingerprint(
                    content_hash, fingerprint, regions={}
                )
            return collapser.partition()

        baseline = collapse(observations)
        shuffled = list(observations)
        random.Random(shuffle_seed).shuffle(shuffled)
        assert collapse(shuffled) == baseline
        # And the partition is exactly one group per cluster.
        assert len(baseline) == num_clusters
        for group in baseline:
            clusters = {name[1] for name in group}
            assert len(clusters) == 1, baseline
