"""Property-based tests of crawler invariants on randomized AJAX apps.

A parametric tabbed application is generated from a hypothesis-drawn
spec (tab names and contents, possibly duplicated); the crawler must
discover exactly the distinct states, keep the transition graph
consistent, and never exceed its budget — for every generated app.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net import Response, RoutedServer

tab_contents = st.lists(
    st.text(alphabet="abcdefgh ", min_size=1, max_size=12).map(str.strip).filter(bool),
    min_size=1,
    max_size=5,
)


def build_tabbed_app(contents):
    """A page with one clickable tab per content string."""
    server = RoutedServer()
    tabs = "\n".join(
        f'<a id="tab{i}" onclick="openTab({i})">tab {i}</a>'
        for i in range(len(contents))
    )

    @server.route(r"/app")
    def app(request, match):
        return Response(
            body=f"""<html><body>
            <div id="tabs">{tabs}</div>
            <div id="content">start</div>
            <script>
            function fetchTab(i) {{
                var req = new XMLHttpRequest();
                req.open("GET", "/tab?i=" + i, true);
                req.send(null);
                return req.responseText;
            }}
            function openTab(i) {{
                document.getElementById("content").innerHTML = fetchTab(i);
            }}
            </script>
            </body></html>"""
        )

    @server.route(r"/tab")
    def tab(request, match):
        index = int(request.query.get("i", "0"))
        return Response(body=f"<p>{contents[index]}</p>")

    return server


@given(tab_contents)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_crawler_discovers_exactly_distinct_states(contents):
    server = build_tabbed_app(contents)
    crawler = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0))
    result = crawler.crawl_page("http://t.test/app")
    model = result.model
    # One state per *distinct* tab content, plus the initial state.
    assert model.num_states == len(set(contents)) + 1
    texts = [state.text for state in model.states()]
    for content in set(contents):
        assert any(content in text for text in texts)


@given(tab_contents)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_transition_graph_is_consistent(contents):
    server = build_tabbed_app(contents)
    crawler = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0))
    model = crawler.crawl_page("http://t.test/app").model
    state_ids = {state.state_id for state in model.states()}
    for transition in model.transitions():
        assert transition.from_state in state_ids
        assert transition.to_state in state_ids
    # Every state is reachable from the initial state by recorded events.
    for state in model.states():
        path = model.event_path_to(state.state_id)
        assert len(path) <= model.num_states


@given(tab_contents)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_network_calls_bounded_by_distinct_tabs(contents):
    """The hot-node cache guarantees one fetch per distinct tab index."""
    server = build_tabbed_app(contents)
    crawler = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0))
    result = crawler.crawl_page("http://t.test/app")
    assert result.metrics.ajax_calls <= len(contents)


@given(tab_contents, st.integers(min_value=0, max_value=3))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_state_cap_never_exceeded(contents, cap):
    server = build_tabbed_app(contents)
    config = CrawlerConfig(max_additional_states=cap)
    crawler = AjaxCrawler(server, config, cost_model=CostModel(network_jitter=0.0))
    model = crawler.crawl_page("http://t.test/app").model
    assert model.num_states <= cap + 1


@given(tab_contents)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_crawl_is_deterministic(contents):
    server = build_tabbed_app(contents)
    one = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0)).crawl_page(
        "http://t.test/app"
    )
    two = AjaxCrawler(server, cost_model=CostModel(network_jitter=0.0)).crawl_page(
        "http://t.test/app"
    )
    assert sorted(s.content_hash for s in one.model.states()) == sorted(
        s.content_hash for s in two.model.states()
    )
    assert one.metrics.crawl_time_ms == two.metrics.crawl_time_ms
