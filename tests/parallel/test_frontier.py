"""The sharded work-stealing frontier: discipline, bounds, races.

The frontier's contract has three load-bearing parts — FIFO over the
owner's shard, steal-from-the-back of the longest other shard, and
``pop`` returning ``None`` only after close-and-drain — plus two
concurrency properties the barrier tests hammer: no task is ever lost
or duplicated under contention, and bounded shards block producers
instead of buffering unboundedly.
"""

import threading

import pytest

from repro.parallel import PartitionTask, ShardedFrontier


class TestDiscipline:
    def test_owner_pops_fifo(self):
        frontier = ShardedFrontier(2)
        for n in (1, 2, 3):
            frontier.push(n, shard=0)
        frontier.close()
        assert [frontier.pop(0) for _ in range(3)] == [1, 2, 3]
        assert frontier.pop(0) is None
        assert frontier.steals == 0

    def test_round_robin_default_deal(self):
        frontier = ShardedFrontier(3)
        for n in range(6):
            frontier.push(n)
        assert frontier.queue_lengths() == [2, 2, 2]

    def test_steals_from_back_of_longest_shard(self):
        frontier = ShardedFrontier(3)
        for n in (10, 11, 12):
            frontier.push(n, shard=1)  # longest
        frontier.push(20, shard=2)
        frontier.close()
        # Shard 0 is empty: its owner steals the *back* of shard 1.
        assert frontier.pop(0) == 12
        assert frontier.steals == 1
        # Shard 1's owner still sees its own front, untouched.
        assert frontier.pop(1) == 10

    def test_pop_none_only_after_close_and_drain(self):
        frontier = ShardedFrontier(1)
        frontier.push("a")
        frontier.close()
        assert frontier.pop(0) == "a"
        assert frontier.pop(0) is None
        assert frontier.closed

    def test_push_after_close_rejected(self):
        frontier = ShardedFrontier(1)
        frontier.close()
        with pytest.raises(ValueError):
            frontier.push("late")

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedFrontier(0)
        with pytest.raises(ValueError):
            ShardedFrontier(1, capacity=0)

    def test_partition_task_is_hashable_value(self):
        task = PartitionTask(3, ("u1", "u2"))
        assert task == PartitionTask(3, ("u1", "u2"))
        assert task.number == 3 and task.urls == ("u1", "u2")


class TestBlockedPopWakesUp:
    def test_pop_blocks_until_push_arrives(self):
        frontier = ShardedFrontier(1)
        got = []

        def consume():
            got.append(frontier.pop(0))

        thread = threading.Thread(target=consume)
        thread.start()
        frontier.push("late-item")
        frontier.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == ["late-item"]

    def test_pop_blocks_until_close(self):
        frontier = ShardedFrontier(2)
        got = []

        def consume():
            got.append(frontier.pop(1))

        thread = threading.Thread(target=consume)
        thread.start()
        frontier.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]


class TestBoundedShards:
    def test_push_blocks_at_capacity_until_pop(self):
        frontier = ShardedFrontier(1, capacity=2)
        frontier.push(1, shard=0)
        frontier.push(2, shard=0)
        unblocked = threading.Event()

        def produce():
            frontier.push(3, shard=0)  # must block: shard is full
            unblocked.set()

        thread = threading.Thread(target=produce)
        thread.start()
        assert not unblocked.wait(timeout=0.2), "push did not respect capacity"
        assert frontier.pop(0) == 1
        assert unblocked.wait(timeout=5), "push never unblocked after a pop"
        thread.join(timeout=5)
        frontier.close()
        assert frontier.pop(0) == 2
        assert frontier.pop(0) == 3

    def test_steal_also_unblocks_a_full_shard(self):
        frontier = ShardedFrontier(2, capacity=1)
        frontier.push("a", shard=0)
        unblocked = threading.Event()

        def produce():
            frontier.push("b", shard=0)
            unblocked.set()

        thread = threading.Thread(target=produce)
        thread.start()
        # The *other* worker steals shard 0's item, freeing capacity.
        assert frontier.pop(1) == "a"
        assert unblocked.wait(timeout=5)
        thread.join(timeout=5)


class TestConcurrencyBarrier:
    """Barrier-style races: all workers released at once, exact accounting."""

    def test_no_task_lost_or_duplicated(self):
        workers, tasks = 4, 400
        frontier = ShardedFrontier(workers, capacity=8)
        barrier = threading.Barrier(workers + 1)
        taken: list[list[int]] = [[] for _ in range(workers)]

        def consume(worker_id):
            barrier.wait()
            while True:
                item = frontier.pop(worker_id)
                if item is None:
                    return
                taken[worker_id].append(item)

        def produce():
            barrier.wait()
            try:
                for n in range(tasks):
                    frontier.push(n)
            finally:
                frontier.close()

        threads = [
            threading.Thread(target=consume, args=(i,)) for i in range(workers)
        ] + [threading.Thread(target=produce)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "frontier deadlocked"
        everything = [item for bucket in taken for item in bucket]
        assert sorted(everything) == list(range(tasks))

    def test_skewed_deal_is_rebalanced_by_stealing(self):
        """Every task dealt to one shard; the other workers steal."""
        workers, tasks = 4, 200
        frontier = ShardedFrontier(workers)
        for n in range(tasks):
            frontier.push(n, shard=0)
        frontier.close()
        barrier = threading.Barrier(workers)
        counts = [0] * workers

        def consume(worker_id):
            barrier.wait()
            while frontier.pop(worker_id) is not None:
                counts[worker_id] += 1

        threads = [
            threading.Thread(target=consume, args=(i,)) for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "frontier deadlocked"
        assert sum(counts) == tasks
        assert frontier.steals == sum(counts[1:])
        assert frontier.steals > 0, "no worker ever stole from the hot shard"
