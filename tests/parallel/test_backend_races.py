"""Race regressions for the per-worker metrics merge.

Two angles on the same claim — partitioned metric accounting is
lossless under real concurrency:

* a barrier-style test where N threads book into their own registries
  simultaneously and the merged result equals a sequential single
  registry applying every operation;
* a hypothesis property that the merge is insensitive to how a booking
  sequence is split across workers and to the order the worker
  registries are folded back together.  Integer values keep counter
  equality exact (float addition is order-sensitive).
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry

NAMES = ("crawl.pages", "net.bytes", "cache.hits")
LABELS = ({}, {"url": "a"}, {"url": "b"}, {"kind": "page"})


def apply_ops(registry, ops):
    for op, name, value, labels in ops:
        if op == "inc":
            registry.inc(name, value, **labels)
        elif op == "gauge":
            registry.set_gauge(name, value, **labels)
        else:
            registry.observe(name, value, **labels)


class TestBarrierMerge:
    def test_eight_thread_merge_equals_sequential_booking(self):
        workers, each = 8, 300
        ops_per_worker = [
            [
                (
                    ("inc", "gauge", "observe")[(w + i) % 3],
                    NAMES[i % len(NAMES)],
                    # Gauge merge keeps the max; make values increase
                    # with the global op index so sequential
                    # last-write-wins and merged max coincide.
                    w * each + i,
                    LABELS[(w + i) % len(LABELS)],
                )
                for i in range(each)
            ]
            for w in range(workers)
        ]
        registries = [MetricsRegistry() for _ in range(workers)]
        barrier = threading.Barrier(workers)

        def book(worker_id):
            barrier.wait()
            apply_ops(registries[worker_id], ops_per_worker[worker_id])

        threads = [
            threading.Thread(target=book, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        merged = MetricsRegistry()
        for registry in registries:
            merged.merge(registry)
        sequential = MetricsRegistry()
        for worker_ops in ops_per_worker:
            apply_ops(sequential, worker_ops)
        assert merged.snapshot() == sequential.snapshot()

    def test_concurrent_booking_into_one_registry_loses_nothing(self):
        """The registry's own lock: 8 threads hammer one instance."""
        registry = MetricsRegistry()
        workers, each = 8, 500
        barrier = threading.Barrier(workers)

        def hammer(worker_id):
            barrier.wait()
            for i in range(each):
                registry.inc("crawl.pages", 1)
                registry.observe("net.time_ms", float(i % 7))

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert registry.counter("crawl.pages") == workers * each
        assert registry.histogram("net.time_ms").count == workers * each


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["inc", "observe"]),
        st.sampled_from(NAMES),
        st.integers(min_value=0, max_value=1_000),
        st.sampled_from(LABELS),
    ),
    max_size=60,
)


class TestMergeProperty:
    @given(
        ops=ops_strategy,
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=6),
        fold_reversed=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_split_and_fold_order_insensitive(
        self, ops, cuts, fold_reversed
    ):
        """However a booking sequence is split across N workers, and in
        whatever order the worker registries fold together, the merge
        equals one worker booking everything."""
        bounds = sorted({min(c, len(ops)) for c in cuts})
        pieces = []
        previous = 0
        for bound in bounds + [len(ops)]:
            pieces.append(ops[previous:bound])
            previous = bound
        workers = []
        for piece in pieces:
            registry = MetricsRegistry()
            apply_ops(registry, piece)
            workers.append(registry)
        if fold_reversed:
            workers.reverse()
        merged = MetricsRegistry()
        for registry in workers:
            merged.merge(registry)
        single = MetricsRegistry()
        apply_ops(single, ops)
        assert merged.snapshot() == single.snapshot()
