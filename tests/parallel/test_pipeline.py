"""Tests of the end-to-end SearchPipeline (Figure 6.1)."""

import pytest

from repro.clock import CostModel
from repro.crawler import CrawlerConfig
from repro.parallel import SearchPipeline
from repro.search import SearchEngine
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=24, seed=29))


@pytest.fixture(scope="module")
def outcome(site):
    pipeline = SearchPipeline(
        site,
        num_proc_lines=3,
        partition_size=8,
        cost_model=CostModel(network_jitter=0.0),
    )
    return pipeline.run(site.video_url(0), max_pages=24)


class TestPipelinePhases:
    def test_precrawl_found_everything(self, outcome):
        assert len(outcome.precrawl.urls) == 24

    def test_crawl_covered_all_pages(self, outcome):
        assert outcome.crawl.result.report.num_pages == 24

    def test_sharding_matches_partitions(self, outcome):
        assert outcome.num_shards == 3  # 24 urls / 8 per partition

    def test_timings_populated(self, outcome):
        timings = outcome.timings
        assert timings.precrawl_ms > 0
        assert timings.crawl_makespan_ms > timings.precrawl_ms / 10
        assert timings.indexing_ms > 0
        assert timings.total_ms == pytest.approx(
            timings.precrawl_ms + timings.crawl_makespan_ms + timings.indexing_ms
        )

    def test_indexing_time_scales_with_states(self, outcome):
        states = outcome.crawl.result.report.total_states
        cost = CostModel().index_state_ms
        # Indexing is per shard, overlapped: bounded by total and by the
        # largest shard.
        assert outcome.timings.indexing_ms <= states * cost
        assert outcome.timings.indexing_ms >= states * cost / 3 / 2


class TestPipelineQueries:
    def test_engine_answers_queries(self, outcome):
        hits = outcome.engine.search("wow")
        assert hits
        assert all(hit.uri.startswith("http://simtube.test/") for hit in hits)

    def test_ranking_matches_single_index(self, outcome, site):
        """The sharded pipeline engine ranks like one big engine."""
        single = SearchEngine.build(
            outcome.crawl.result.models, pageranks=outcome.precrawl.pageranks
        )
        for query in ("wow", "dance", "our song"):
            mine = [(r.uri, r.state_id) for r in outcome.engine.search(query)]
            reference = [(r.uri, r.state_id) for r in single.search(query)]
            assert mine == reference, query

    def test_pageranks_flow_into_results(self, outcome):
        hits = outcome.engine.search("wow", limit=1)
        assert hits[0].components["pagerank"] > 0
