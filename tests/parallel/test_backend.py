"""Execution backends: registry, dispatch, and the parity contract.

The central claim of :mod:`repro.parallel.backend` is that the engine is
an implementation detail: the simulated and the threaded backend must
produce the same merged crawl — report, models (order included), network
counters, per-partition results — on the same partitions.  Only the
scheduling/wall-clock fields may differ.
"""

import pytest

from repro.clock import CostModel
from repro.obs import Recorder, merge_partition_traces, to_jsonl
from repro.parallel import (
    BACKENDS,
    MPAjaxCrawler,
    SimulatedBackend,
    ThreadedBackend,
    partition_cost_model,
    partition_urls,
    resolve_backend,
)
from repro.sites import SiteConfig, SyntheticYouTube

NUM_VIDEOS = 9


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=NUM_VIDEOS, seed=19))


def cost():
    return CostModel(network_jitter=0.0)


def report_dict(report):
    """The report's exact identity: its registry snapshot."""
    return report.registry.snapshot()


def make_partitions(site, size=3):
    return partition_urls([site.video_url(i) for i in range(NUM_VIDEOS)], size)


class TestRegistry:
    def test_registry_names(self):
        assert set(BACKENDS) == {"simulated", "threads"}

    def test_resolve_by_name(self):
        assert isinstance(resolve_backend("simulated"), SimulatedBackend)
        assert isinstance(resolve_backend("threads"), ThreadedBackend)

    def test_resolve_passes_instances_through(self):
        backend = ThreadedBackend(shard_capacity=2)
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("processes")


class TestDispatch:
    def test_run_defaults_to_simulated(self, site):
        controller = MPAjaxCrawler(site, num_proc_lines=2, cost_model=cost())
        run = controller.run(make_partitions(site))
        assert run.backend == "simulated"
        assert run.wall_time_ms == 0.0

    def test_wrappers_tag_their_backend(self, site):
        partitions = make_partitions(site)
        controller = MPAjaxCrawler(site, num_proc_lines=2, cost_model=cost())
        assert controller.run_simulated(partitions).backend == "simulated"
        assert controller.run_threaded(partitions).backend == "threads"


class TestBackendParity:
    def run_both(self, site, lines=3):
        partitions = make_partitions(site)

        def controller():
            return MPAjaxCrawler(site, num_proc_lines=lines, cost_model=cost())

        simulated = controller().run(partitions, backend="simulated")
        threaded = controller().run(partitions, backend="threads")
        return simulated, threaded

    def test_merged_reports_identical(self, site):
        simulated, threaded = self.run_both(site)
        assert report_dict(simulated.result.report) == report_dict(
            threaded.result.report
        )

    def test_model_lists_identical_in_order(self, site):
        simulated, threaded = self.run_both(site)
        assert [m.url for m in simulated.result.models] == [
            m.url for m in threaded.result.models
        ]
        sim_hashes = [
            [s.content_hash for s in m.states()] for m in simulated.result.models
        ]
        thr_hashes = [
            [s.content_hash for s in m.states()] for m in threaded.result.models
        ]
        assert sim_hashes == thr_hashes

    def test_network_registries_identical(self, site):
        simulated, threaded = self.run_both(site)
        assert (
            simulated.stats.registry.snapshot() == threaded.stats.registry.snapshot()
        )

    def test_partition_results_identical(self, site):
        simulated, threaded = self.run_both(site)
        assert sorted(simulated.partition_results) == sorted(
            threaded.partition_results
        )
        for number, sim_result in simulated.partition_results.items():
            thr_result = threaded.partition_results[number]
            assert report_dict(sim_result.report) == report_dict(thr_result.report)

    def test_wall_fields_are_engine_specific(self, site):
        simulated, threaded = self.run_both(site)
        assert threaded.wall_time_ms > 0.0
        assert len(threaded.worker_wall_ms) == 3
        assert simulated.worker_wall_ms == []
        # Virtual makespan is populated by both engines (for figures).
        assert simulated.makespan_ms > 0.0
        assert threaded.makespan_ms > 0.0

    def test_threaded_deterministic_across_reruns(self, site):
        def fingerprint():
            run = MPAjaxCrawler(site, num_proc_lines=4, cost_model=cost()).run(
                make_partitions(site, size=2), backend="threads"
            )
            return (
                report_dict(run.result.report),
                [m.url for m in run.result.models],
                run.stats.registry.snapshot(),
            )

        assert fingerprint() == fingerprint()

    def test_more_workers_than_partitions(self, site):
        run = MPAjaxCrawler(site, num_proc_lines=8, cost_model=cost()).run(
            make_partitions(site), backend="threads"
        )
        assert run.total_pages == NUM_VIDEOS

    def test_empty_partition_list(self, site):
        controller = MPAjaxCrawler(site, num_proc_lines=2, cost_model=cost())
        for backend in ("simulated", "threads"):
            run = controller.run([], backend=backend)
            assert run.total_pages == 0
            assert run.makespan_ms == 0.0

    def test_tiny_bounded_queues_still_complete(self, site):
        """Capacity-1 shards and results: pure backpressure, no deadlock."""
        backend = ThreadedBackend(shard_capacity=1, result_capacity=1)
        run = MPAjaxCrawler(site, num_proc_lines=2, cost_model=cost()).run(
            make_partitions(site, size=1), backend=backend
        )
        assert run.total_pages == NUM_VIDEOS
        assert len(run.partition_results) == NUM_VIDEOS


class TestPartitionCostModel:
    def test_none_passes_through(self):
        assert partition_cost_model(None, 3) is None

    def test_clone_shares_constants_not_rng(self):
        base = CostModel(network_jitter=0.25)
        clone_a = partition_cost_model(base, 1)
        clone_b = partition_cost_model(base, 2)
        assert clone_a.network_jitter == base.network_jitter
        assert clone_a.rng is not base.rng
        assert clone_a.rng is not clone_b.rng

    def test_clone_is_deterministic_per_partition(self):
        base = CostModel(network_jitter=0.25)
        draws_one = [partition_cost_model(base, 5).rng.random() for _ in range(3)]
        draws_two = [partition_cost_model(base, 5).rng.random() for _ in range(3)]
        assert draws_one == draws_two


class TestWorkerErrorPropagation:
    def test_partition_failure_surfaces_after_join(self, site):
        class Exploding:
            def fetch_page(self, url):
                raise RuntimeError("boom")

            def fetch_fragment(self, url):  # pragma: no cover
                raise RuntimeError("boom")

        controller = MPAjaxCrawler(Exploding(), num_proc_lines=2, cost_model=cost())
        with pytest.raises(Exception):
            controller.run([["http://x/a"], ["http://x/b"]], backend="threads")


class TestTraceMerging:
    def test_merged_partition_traces_equal_simulated_stream(self, site):
        """Per-partition recorders on the threads backend, merged, give
        the same canonical JSONL as the one shared recorder the
        simulated path streams through — byte for byte."""
        partitions = make_partitions(site)

        single = Recorder()
        controller = MPAjaxCrawler(
            site,
            num_proc_lines=2,
            cost_model=cost(),
            recorder_factory=lambda partition: single,
        )
        controller.run(partitions, backend="simulated")

        recorders = {}

        def factory(partition):
            recorders[partition] = Recorder()
            return recorders[partition]

        controller = MPAjaxCrawler(
            site, num_proc_lines=2, cost_model=cost(), recorder_factory=factory
        )
        controller.run(partitions, backend="threads")
        merged = merge_partition_traces(
            {p: r.events for p, r in recorders.items()}
        )
        assert to_jsonl(merged) == to_jsonl(single.events)

    def test_merge_renumbers_span_ids_into_disjoint_ranges(self, site):
        recorders = {}

        def factory(partition):
            recorders[partition] = Recorder(spans=True)
            return recorders[partition]

        controller = MPAjaxCrawler(
            site, num_proc_lines=3, cost_model=cost(), recorder_factory=factory
        )
        controller.run(make_partitions(site), backend="threads")
        merged = merge_partition_traces(
            {p: r.events for p, r in recorders.items()}
        )
        starts = [e for e in merged if e.kind == "span_start"]
        span_ids = [e.fields["span_id"] for e in starts]
        assert len(span_ids) == len(set(span_ids)), "span ids collide after merge"
        assert [e.seq for e in merged] == list(range(len(merged)))
