"""Stress: the threads backend under seeded fault injection.

Generated sites from the testgen corpus are crawled on the real-thread
backend while a seeded :class:`FaultPlan` injects 5xx responses into the
fragment endpoints.  The run must terminate (no deadlock in the
frontier / result queue under retry-lengthened partitions), lose no
pages, and account for every injected fault exactly:
``retries + failed_requests == plan.num_injected == len(plan.log)``.
"""

import dataclasses

import pytest

from repro.clock import CostModel
from repro.net import FaultInjector, FaultPlan, FaultRule
from repro.parallel import MPAjaxCrawler, ThreadedBackend
from repro.testgen.conformance import (
    _partition,
    conformance_config,
    spec_for_seed,
)
from repro.testgen.site import GeneratedSite

pytestmark = pytest.mark.slow


def run_threads_under_faults(seed, rate, workers=4, num_partitions=4):
    spec = spec_for_seed(seed)
    plan = FaultPlan([FaultRule(r"/fragment", rate=rate)], seed=seed)
    controller = MPAjaxCrawler(
        FaultInjector(GeneratedSite(spec), plan),
        num_proc_lines=workers,
        config=dataclasses.replace(
            conformance_config(spec), retry_max_attempts=3
        ),
        cost_model=CostModel(network_jitter=0.0),
    )
    urls = spec.all_urls()
    run = controller.run(
        _partition(urls, num_partitions),
        backend=ThreadedBackend(shard_capacity=2, result_capacity=2),
    )
    return spec, plan, urls, run


class TestThreadsBackendUnderFaults:
    @pytest.mark.parametrize("seed", range(0, 12))
    def test_no_deadlock_no_lost_pages_exact_fault_accounting(self, seed):
        spec, plan, urls, run = run_threads_under_faults(seed, rate=0.2)
        # Terminated (we are here) and every URL is accounted for:
        # either a crawled page or a terminal failure.
        assert run.total_pages + run.total_failed_pages == len(urls)
        assert len(run.summaries) == len(run.partition_results)
        # Exact fault bookkeeping across worker threads.
        assert (
            run.stats.retries + run.stats.failed_requests == plan.num_injected
        )
        assert plan.num_injected == len(plan.log)
        assert run.stats.failed_attempts == plan.num_injected

    def test_total_fault_rate_kills_fragment_pages_not_the_run(self):
        spec, plan, urls, run = run_threads_under_faults(3, rate=1.0)
        assert run.total_pages + run.total_failed_pages == len(urls)
        assert run.stats.retries + run.stats.failed_requests == plan.num_injected
        assert plan.num_injected == len(plan.log)

    def test_repeated_runs_terminate(self):
        """Hammer the bounded queues: many short faulted runs in a row."""
        for round_index in range(5):
            spec, plan, urls, run = run_threads_under_faults(
                seed=20 + round_index, rate=0.3, workers=6, num_partitions=6
            )
            assert run.total_pages + run.total_failed_pages == len(urls)
            assert (
                run.stats.retries + run.stats.failed_requests
                == plan.num_injected
                == len(plan.log)
            )
