"""Oracle tests: sharded ranking and distributed aggregation over a
*crawled* corpus must match a single-process single-index run.

``ShardedSearchEngine`` recombines idf from shipped state counts and
document frequencies (§6.5.2); ``DistributedResultAggregator`` routes a
result to the partition holding its model (§6.6).  Both claims are
checked against the obvious oracle — build one index over everything,
reconstruct with the ordinary :class:`ResultAggregator` — on models
produced by real crawls, not hand-built fixtures.
"""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.parallel import (
    DistributedResultAggregator,
    ShardedSearchEngine,
    SimpleAjaxCrawler,
    partition_urls,
)
from repro.search import SearchEngine
from repro.search.aggregation import ResultAggregator
from repro.sites import SiteConfig, SyntheticYouTube

QUERIES = ["wow", "comments", "video", "first"]


@pytest.fixture(scope="module")
def corpus():
    site = SyntheticYouTube(SiteConfig(num_videos=9, seed=11))
    partitions = partition_urls(site.all_video_urls(), 3)
    model_partitions = []
    for number, urls in enumerate(partitions, start=1):
        worker = SimpleAjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        result, _ = worker.crawl_urls(urls, partition=number)
        model_partitions.append(result.models)
    sharded = ShardedSearchEngine.build(model_partitions)
    oracle = SearchEngine.build(
        [model for models in model_partitions for model in models]
    )
    return site, model_partitions, sharded, oracle


class TestShardedRankingOracle:
    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results_same_order(self, corpus, query):
        _, _, sharded, oracle = corpus
        sharded_hits = sharded.search(query)
        oracle_hits = oracle.search(query)
        assert [(h.uri, h.state_id) for h in sharded_hits] == [
            (h.uri, h.state_id) for h in oracle_hits
        ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_scores_match_global_idf_correction(self, corpus, query):
        _, _, sharded, oracle = corpus
        for mine, truth in zip(sharded.search(query), oracle.search(query)):
            assert mine.score == pytest.approx(truth.score, rel=1e-12)
            assert mine.components["tfidf"] == pytest.approx(
                truth.components["tfidf"], rel=1e-12
            )

    @pytest.mark.parametrize("query", QUERIES)
    def test_result_count_matches(self, corpus, query):
        _, _, sharded, oracle = corpus
        assert sharded.result_count(query) == oracle.result_count(query)

    def test_corpus_actually_hits(self, corpus):
        _, _, _, oracle = corpus
        assert any(oracle.search(query) for query in QUERIES)


class TestDistributedAggregationOracle:
    def test_routing_matches_crawl_partitions(self, corpus):
        site, model_partitions, _, _ = corpus
        aggregator = DistributedResultAggregator(
            Browser(site, cost_model=CostModel(network_jitter=0.0)), model_partitions
        )
        for number, models in enumerate(model_partitions):
            for model in models:
                assert aggregator.partition_of(model.url) == number

    def test_reconstruction_matches_single_process_oracle(self, corpus):
        site, model_partitions, sharded, _ = corpus
        aggregator = DistributedResultAggregator(
            Browser(site, cost_model=CostModel(network_jitter=0.0)), model_partitions
        )
        oracle_browser = Browser(site, cost_model=CostModel(network_jitter=0.0))
        oracle_aggregator = ResultAggregator(oracle_browser)
        models_by_url = {
            model.url: model for models in model_partitions for model in models
        }
        hits = sharded.search("wow", limit=3)
        assert hits
        for hit in hits:
            distributed = aggregator.reconstruct(hit)
            single = oracle_aggregator.reconstruct(models_by_url[hit.uri], hit.state_id)
            assert distributed.content_hash() == single.content_hash()
