"""Tests for distributed indexes and query shipping (§6.5)."""

import math

import pytest

from repro.model import ApplicationModel, EventAnnotation
from repro.search import RankingWeights, SearchEngine
from repro.parallel import ShardedSearchEngine


def pagination_model(url, page_texts):
    model = ApplicationModel(url)
    states = []
    for offset, text in enumerate(page_texts):
        state, _ = model.add_state(f"{url}-h{offset}", text, depth=offset)
        states.append(state)
    for offset in range(len(states) - 1):
        model.add_transition(
            states[offset], states[offset + 1], EventAnnotation("#next", "onclick", "nextPage()")
        )
        model.add_transition(
            states[offset + 1], states[offset], EventAnnotation("#prev", "onclick", "prevPage()")
        )
    return model


@pytest.fixture
def corpus():
    return [
        pagination_model("u1", ["keyword alpha beta", "gamma delta keyword"]),
        pagination_model("u2", ["keyword keyword epsilon"]),
        pagination_model("u3", ["zeta eta theta", "iota kappa"]),
        pagination_model("u4", ["keyword lambda", "mu nu", "xi omicron keyword"]),
    ]


@pytest.fixture
def pageranks():
    return {"u1": 0.4, "u2": 0.3, "u3": 0.2, "u4": 0.1}


class TestGlobalIdf:
    def test_worked_example(self):
        """§6.5.2: Idx1 10 states / 4 with k; Idx2 13 states / 6 with k;
        idf = log(23/10)."""
        shard_a_states = [
            "keyword a" if i < 4 else f"filler{i}" for i in range(10)
        ]
        shard_b_states = [
            "keyword b" if i < 6 else f"other{i}" for i in range(13)
        ]
        shard_a = [pagination_model("a", shard_a_states)]
        shard_b = [pagination_model("b", shard_b_states)]
        sharded = ShardedSearchEngine.build([shard_a, shard_b])
        # Compare with a single engine over everything.
        single = SearchEngine.build(shard_a + shard_b)
        assert single.index.idf("keyword") == pytest.approx(math.log(23 / 10))
        sharded_results = sharded.search("keyword")
        single_results = single.search("keyword")
        assert [
            (r.uri, r.state_id, pytest.approx(r.score)) for r in single_results
        ] == [(r.uri, r.state_id, r.score) for r in sharded_results]


class TestShardingEquivalence:
    """Sharded ranking must equal single-index ranking exactly."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_scores_identical(self, corpus, pageranks, num_shards):
        partitions = [corpus[i::num_shards] for i in range(num_shards)]
        partitions = [p for p in partitions if p]
        sharded = ShardedSearchEngine.build(partitions, pageranks=pageranks)
        single = SearchEngine.build(corpus, pageranks=pageranks)
        sharded_results = sharded.search("keyword")
        single_results = single.search("keyword")
        assert len(sharded_results) == len(single_results)
        for mine, reference in zip(sharded_results, single_results):
            assert (mine.uri, mine.state_id) == (reference.uri, reference.state_id)
            assert mine.score == pytest.approx(reference.score)

    def test_conjunction_equivalence(self, corpus, pageranks):
        partitions = [corpus[:2], corpus[2:]]
        sharded = ShardedSearchEngine.build(partitions, pageranks=pageranks)
        single = SearchEngine.build(corpus, pageranks=pageranks)
        for query in ("keyword alpha", "mu nu", "keyword epsilon"):
            mine = [(r.uri, r.state_id) for r in sharded.search(query)]
            reference = [(r.uri, r.state_id) for r in single.search(query)]
            assert mine == reference, query

    def test_result_count(self, corpus):
        sharded = ShardedSearchEngine.build([corpus[:2], corpus[2:]])
        assert sharded.result_count("keyword") == 5
        assert sharded.result_count("nothinghere") == 0

    def test_num_states(self, corpus):
        sharded = ShardedSearchEngine.build([corpus[:2], corpus[2:]])
        assert sharded.num_states == 8

    def test_limit(self, corpus):
        sharded = ShardedSearchEngine.build([corpus[:2], corpus[2:]])
        assert len(sharded.search("keyword", limit=2)) == 2

    def test_weights_respected(self, corpus, pageranks):
        weights = RankingWeights(pagerank=1.0, ajaxrank=0.0, tfidf=0.0, proximity=0.0)
        sharded = ShardedSearchEngine.build(
            [corpus[:2], corpus[2:]], pageranks=pageranks, weights=weights
        )
        results = sharded.search("keyword")
        assert results[0].uri == "u1"  # highest PageRank among matches
