"""Tests for the precrawling phase and URL partitioning."""

import pytest

from repro.clock import CostModel
from repro.errors import PartitionError
from repro.parallel import (
    Precrawler,
    PrecrawlResult,
    URLPartitioner,
    partition_urls,
)
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=25, seed=17))


@pytest.fixture(scope="module")
def precrawl(site):
    precrawler = Precrawler(site, max_pages=25, cost_model=CostModel(network_jitter=0.0))
    return precrawler.run(site.video_url(0))


class TestPrecrawler:
    def test_discovers_all_videos(self, precrawl, site):
        assert len(precrawl.urls) == 25
        assert set(precrawl.urls) == set(site.all_video_urls())

    def test_start_url_first(self, precrawl, site):
        assert precrawl.urls[0] == site.video_url(0)

    def test_link_graph_matches_ground_truth(self, precrawl, site):
        url = site.video_url(0)
        expected = {site.video_url(i) for i in site.related_indexes(0)}
        assert set(precrawl.link_graph[url]) == expected

    def test_pagerank_computed_for_every_page(self, precrawl):
        assert set(precrawl.pageranks) == set(precrawl.urls)
        assert sum(precrawl.pageranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_max_pages_respected(self, site):
        small = Precrawler(site, max_pages=7, cost_model=CostModel(network_jitter=0.0))
        result = small.run(site.video_url(0))
        assert len(result.urls) == 7

    def test_no_javascript_needed(self, site):
        """Precrawling must not trigger any AJAX call."""
        precrawler = Precrawler(site, max_pages=5, cost_model=CostModel(network_jitter=0.0))
        precrawler.run(site.video_url(0))
        assert precrawler.browser.stats.ajax_calls == 0

    def test_save_load_round_trip(self, precrawl, tmp_path):
        precrawl.save(tmp_path)
        loaded = PrecrawlResult.load(tmp_path)
        assert loaded.urls == precrawl.urls
        assert loaded.link_graph == precrawl.link_graph
        assert loaded.pageranks == pytest.approx(precrawl.pageranks)


class TestPartitioning:
    def test_partition_urls_chunks(self):
        chunks = partition_urls(["a", "b", "c", "d", "e"], 2)
        assert chunks == [["a", "b"], ["c", "d"], ["e"]]

    def test_partition_exact_division(self):
        assert partition_urls(["a", "b"], 2) == [["a", "b"]]

    def test_partition_empty(self):
        assert partition_urls([], 3) == []

    def test_invalid_size_rejected(self):
        with pytest.raises(PartitionError):
            partition_urls(["a"], 0)
        with pytest.raises(PartitionError):
            URLPartitioner(-1)

    def test_write_creates_numbered_directories(self, tmp_path):
        """The §8.1.2 example: 107 pages, size 20 -> 6 directories."""
        urls = [f"http://x/{i}" for i in range(107)]
        directories = URLPartitioner(20).write(urls, tmp_path)
        assert [d.name for d in directories] == ["1", "2", "3", "4", "5", "6"]
        assert len(URLPartitioner.read(directories[0])) == 20
        assert len(URLPartitioner.read(directories[5])) == 7

    def test_read_round_trip(self, tmp_path):
        urls = ["http://x/a", "http://x/b", "http://x/c"]
        (directory,) = URLPartitioner(5).write(urls, tmp_path)
        assert URLPartitioner.read(directory) == urls

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(PartitionError):
            URLPartitioner.read(tmp_path)

    def test_list_partitions_numeric_order(self, tmp_path):
        urls = [f"http://x/{i}" for i in range(25)]
        URLPartitioner(2).write(urls, tmp_path)
        listed = URLPartitioner.list_partitions(tmp_path)
        assert [d.name for d in listed] == [str(i) for i in range(1, 14)]
