"""Tests for distributed result aggregation (§6.6)."""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.errors import SearchError
from repro.parallel import DistributedResultAggregator, ShardedSearchEngine, SimpleAjaxCrawler, partition_urls
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def setting():
    site = SyntheticYouTube(SiteConfig(num_videos=12, seed=37))
    partitions = partition_urls(site.all_video_urls(), 4)
    model_partitions = []
    for number, urls in enumerate(partitions, start=1):
        worker = SimpleAjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        result, _ = worker.crawl_urls(urls, partition=number)
        model_partitions.append(result.models)
    engine = ShardedSearchEngine.build(model_partitions)
    aggregator = DistributedResultAggregator(
        Browser(site, cost_model=CostModel(network_jitter=0.0)), model_partitions
    )
    return site, engine, aggregator


class TestRouting:
    def test_partition_lookup(self, setting):
        site, _, aggregator = setting
        assert aggregator.partition_of(site.video_url(0)) == 0
        assert aggregator.partition_of(site.video_url(5)) == 1
        assert aggregator.partition_of(site.video_url(11)) == 2

    def test_unknown_url_raises(self, setting):
        _, _, aggregator = setting
        with pytest.raises(SearchError):
            aggregator.partition_of("http://elsewhere/")


class TestDistributedReconstruction:
    def test_reconstruct_search_result(self, setting):
        site, engine, aggregator = setting
        hits = engine.search("wow")
        assert hits
        page = aggregator.reconstruct(hits[0])
        assert "wow" in page.text.lower()

    def test_reconstruct_deep_state(self, setting):
        site, engine, aggregator = setting
        deep = next(
            (hit for hit in engine.search("wow") if hit.state_id != "s0"), None
        )
        if deep is None:
            pytest.skip("no deep hit in this corpus sample")
        page = aggregator.reconstruct(deep)
        assert "wow" in page.text.lower()

    def test_unknown_result_raises(self, setting):
        from repro.search import SearchResult

        _, _, aggregator = setting
        bogus = SearchResult(uri="http://elsewhere/", state_id="s0", score=0.0)
        with pytest.raises(SearchError):
            aggregator.reconstruct(bogus)
