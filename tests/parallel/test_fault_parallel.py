"""Parallel crawling under injected faults: the crawl must complete.

The acceptance scenario for the fault-tolerance layer: a deterministic
20% 5xx rate on the AJAX endpoints, four partitions, and the run has to
finish with every failure accounted for — the bookkeeping invariant
``failed_requests + retries == faults injected`` must hold exactly.
"""

import threading

import pytest

from repro.clock import CostModel
from repro.crawler import CrawlerConfig
from repro.net import FaultInjector, FaultPlan, FaultRule, NetworkStats
from repro.parallel import MPAjaxCrawler, partition_urls
from repro.sites import SiteConfig, SyntheticYouTube


NUM_VIDEOS = 12


@pytest.fixture
def site():
    return SyntheticYouTube(SiteConfig(num_videos=NUM_VIDEOS, seed=19))


def cost():
    return CostModel(network_jitter=0.0)


def make_run(site, plan, max_attempts=3, lines=4):
    server = FaultInjector(site, plan)
    controller = MPAjaxCrawler(
        server,
        num_proc_lines=lines,
        config=CrawlerConfig(retry_max_attempts=max_attempts),
        cost_model=cost(),
    )
    urls = [site.video_url(i) for i in range(NUM_VIDEOS)]
    return controller, partition_urls(urls, 3)


class TestSimulatedRunUnderFaults:
    def test_completes_and_books_every_injected_fault(self, site):
        plan = FaultPlan([FaultRule(r"/comments", rate=0.2)], seed=5)
        controller, partitions = make_run(site, plan)
        run = controller.run_simulated(partitions)  # must not raise
        assert len(run.summaries) == 4
        assert run.total_pages + run.total_failed_pages == NUM_VIDEOS
        assert plan.num_injected > 0
        # The invariant: every injected fault became a retry or
        # exhausted a request — none vanished from the stats.
        assert run.stats.retries + run.stats.failed_requests == plan.num_injected
        assert run.stats.failed_attempts == plan.num_injected
        assert run.stats.retry_time_ms > 0

    def test_failed_pages_reported_with_attempts(self, site):
        # Kill one watch page outright: its URL must appear in the
        # report with the full attempt count, and the rest must crawl.
        dead = site.video_url(0)
        plan = FaultPlan(
            [
                FaultRule(r"watch\?v=v00000", rate=1.0),
                FaultRule(r"/comments", rate=0.2),
            ],
            seed=5,
        )
        controller, partitions = make_run(site, plan, max_attempts=3)
        run = controller.run_simulated(partitions)
        assert run.result.failed_urls == [dead]
        (failure,) = run.result.failures
        assert failure.url == dead
        assert failure.attempts == 3
        assert failure.elapsed_ms > 0
        assert run.total_pages == NUM_VIDEOS - 1
        assert run.stats.retries + run.stats.failed_requests == plan.num_injected

    def test_deterministic_across_reruns(self, site):
        def one_run():
            plan = FaultPlan([FaultRule(r"/comments", rate=0.2)], seed=5)
            controller, partitions = make_run(site, plan)
            run = controller.run_simulated(partitions)
            return (
                plan.num_injected,
                run.stats.retries,
                run.stats.failed_requests,
                run.makespan_ms,
                sorted(s.content_hash for m in run.result.models for s in m.states()),
            )

        assert one_run() == one_run()

    def test_zero_fault_plan_matches_plain_run(self, site):
        plan = FaultPlan([FaultRule(r"/comments", rate=0.0)], seed=5)
        controller, partitions = make_run(site, plan)
        faulted = controller.run_simulated(partitions)
        plain = MPAjaxCrawler(
            site, num_proc_lines=4, cost_model=cost()
        ).run_simulated(partitions)
        assert plan.num_injected == 0
        assert faulted.makespan_ms == pytest.approx(plain.makespan_ms)
        assert faulted.stats.retries == 0
        assert faulted.stats.network_time_ms == pytest.approx(
            plain.stats.network_time_ms
        )


class TestThreadedRunUnderFaults:
    def test_threaded_run_books_every_injected_fault(self, site):
        """Partitions race on a shared server and a shared plan; the
        per-worker stats still account for every injected fault."""
        plan = FaultPlan([FaultRule(r"/comments", rate=0.2)], seed=5)
        controller, partitions = make_run(site, plan)
        run = controller.run_threaded(partitions)
        assert run.total_pages + run.total_failed_pages == NUM_VIDEOS
        assert run.stats.retries + run.stats.failed_requests == plan.num_injected

    def test_threaded_merged_counters_consistent(self, site):
        """Merged NetworkStats equal the per-partition sums (no lost
        updates), and the model set matches the fault-free serial run."""
        controller = MPAjaxCrawler(site, num_proc_lines=4, cost_model=cost())
        partitions = partition_urls(
            [site.video_url(i) for i in range(NUM_VIDEOS)], 3
        )
        run = controller.run_threaded(partitions)
        assert run.stats.ajax_calls == sum(
            s.network.ajax_calls for s in run.summaries
        )
        assert run.stats.page_fetches == sum(
            s.network.page_fetches for s in run.summaries
        )
        assert run.stats.bytes_transferred == sum(
            s.network.bytes_transferred for s in run.summaries
        )
        assert run.stats.failed_requests == 0


class TestNetworkStatsThreadSafety:
    def test_concurrent_records_lose_no_updates(self):
        stats = NetworkStats()
        workers, each = 8, 500

        def hammer(index):
            for i in range(each):
                stats.record("ajax", f"http://s/u{index}", 10, 1.0)
                stats.record_failure("ajax", f"http://s/u{index}", 5, 1.0)
                stats.record_retry(2.0)
                stats.record_cache_hit()

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = workers * each
        assert stats.ajax_calls == total
        assert stats.failed_attempts == total
        assert stats.retries == total
        assert stats.cached_hits == total
        assert stats.bytes_transferred == total * 15
        assert stats.network_time_ms == pytest.approx(total * 4.0)
        assert sum(stats.requests_by_url.values()) == total * 2

    def test_concurrent_merges_lose_no_updates(self):
        merged = NetworkStats()
        part = NetworkStats()
        part.record("page", "u", 100, 10.0)
        part.record_retry(1.0)
        part.record_exhausted()
        workers = 8

        def merge_many():
            for _ in range(100):
                merged.merge(part)

        threads = [threading.Thread(target=merge_many) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert merged.page_fetches == 800
        assert merged.retries == 800
        assert merged.failed_requests == 800
        assert merged.network_time_ms == pytest.approx(800 * 11.0)
