"""Tests for SimpleAjaxCrawler, the process-line scheduler and persistence."""

import pytest

from repro.clock import CostModel
from repro.crawler import CrawlerConfig
from repro.parallel import (
    MachineModel,
    MPAjaxCrawler,
    SimpleAjaxCrawler,
    URLPartitioner,
    load_models,
    partition_urls,
)
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=24, seed=19))


def cost():
    return CostModel(network_jitter=0.0)


class TestSimpleAjaxCrawler:
    def test_crawls_url_list(self, site):
        worker = SimpleAjaxCrawler(site, cost_model=cost())
        urls = [site.video_url(i) for i in range(4)]
        result, summary = worker.crawl_urls(urls, partition=3)
        assert summary.partition == 3
        assert summary.num_pages == 4
        assert summary.total_states == result.report.total_states
        assert summary.network_time_ms > 0
        assert summary.cpu_time_ms > 0
        assert summary.crawl_time_ms == pytest.approx(
            summary.network_time_ms + summary.cpu_time_ms
        )

    def test_traditional_mode(self, site):
        worker = SimpleAjaxCrawler(site, traditional=True, cost_model=cost())
        result, summary = worker.crawl_urls([site.video_url(0)])
        assert summary.total_states == 1
        assert result.models[0].num_states == 1

    def test_partition_dir_round_trip(self, site, tmp_path):
        urls = [site.video_url(i) for i in range(3)]
        (directory,) = URLPartitioner(10).write(urls, tmp_path)
        worker = SimpleAjaxCrawler(site, cost_model=cost())
        result, _ = worker.crawl_partition_dir(directory)
        loaded = load_models(directory)
        assert [m.url for m in loaded] == [m.url for m in result.models]
        assert sum(m.num_states for m in loaded) == result.report.total_states

    def test_independent_clocks(self, site):
        """Two workers must not share time: the SPMD independence of §6.1."""
        worker = SimpleAjaxCrawler(site, cost_model=cost())
        _, first = worker.crawl_urls([site.video_url(0)])
        _, second = worker.crawl_urls([site.video_url(0)])
        assert first.crawl_time_ms == pytest.approx(second.crawl_time_ms)


class TestMPAjaxCrawler:
    def partitions(self, site, count=12, size=3):
        return partition_urls([site.video_url(i) for i in range(count)], size)

    def test_all_pages_crawled(self, site):
        controller = MPAjaxCrawler(site, num_proc_lines=4, cost_model=cost())
        run = controller.run_simulated(self.partitions(site))
        assert run.total_pages == 12
        assert len(run.summaries) == 4  # 12 urls / 3 per partition

    def test_parallel_faster_than_serial(self, site):
        partitions = self.partitions(site)
        serial = MPAjaxCrawler(site, num_proc_lines=1, cost_model=cost()).run_simulated(partitions)
        parallel = MPAjaxCrawler(site, num_proc_lines=4, cost_model=cost()).run_simulated(partitions)
        assert parallel.makespan_ms < serial.makespan_ms

    def test_speedup_bounded_by_contention(self, site):
        """Four lines on two cores cannot approach a 4x speedup (Fig. 7.8)."""
        partitions = self.partitions(site)
        machine = MachineModel(cores=2)
        serial = MPAjaxCrawler(site, 1, machine=machine, cost_model=cost()).run_simulated(partitions)
        parallel = MPAjaxCrawler(site, 4, machine=machine, cost_model=cost()).run_simulated(partitions)
        speedup = serial.makespan_ms / parallel.makespan_ms
        assert 1.0 < speedup < 3.0

    def test_line_loads_balanced(self, site):
        controller = MPAjaxCrawler(site, num_proc_lines=4, cost_model=cost())
        run = controller.run_simulated(self.partitions(site))
        assert len(run.line_finish_ms) == 4
        assert max(run.line_finish_ms) == run.makespan_ms
        assert all(t > 0 for t in run.line_finish_ms)

    def test_same_models_as_serial_crawl(self, site):
        """Parallelization must not change what is crawled."""
        partitions = self.partitions(site, count=6, size=2)
        parallel = MPAjaxCrawler(site, 3, cost_model=cost()).run_simulated(partitions)
        serial_worker = SimpleAjaxCrawler(site, cost_model=cost())
        serial, _ = serial_worker.crawl_urls([site.video_url(i) for i in range(6)])
        parallel_states = sorted(
            s.content_hash for m in parallel.result.models for s in m.states()
        )
        serial_states = sorted(
            s.content_hash for m in serial.models for s in m.states()
        )
        assert parallel_states == serial_states

    def test_threaded_run_equivalent_models(self, site):
        partitions = self.partitions(site, count=6, size=2)
        threaded = MPAjaxCrawler(site, 3, cost_model=cost()).run_threaded(partitions)
        simulated = MPAjaxCrawler(site, 3, cost_model=cost()).run_simulated(partitions)
        threaded_states = sorted(
            s.content_hash for m in threaded.result.models for s in m.states()
        )
        simulated_states = sorted(
            s.content_hash for m in simulated.result.models for s in m.states()
        )
        assert threaded_states == simulated_states

    def test_zero_lines_rejected(self, site):
        with pytest.raises(ValueError):
            MPAjaxCrawler(site, num_proc_lines=0)

    def test_empty_partitions(self, site):
        run = MPAjaxCrawler(site, 2, cost_model=cost()).run_simulated([])
        assert run.makespan_ms == 0.0
        assert run.total_pages == 0

    def test_traditional_parallel(self, site):
        controller = MPAjaxCrawler(site, 4, traditional=True, cost_model=cost())
        run = controller.run_simulated(self.partitions(site, count=8, size=2))
        assert run.result.report.total_states == 8


class TestMachineModel:
    def test_single_line_no_stretch(self):
        assert MachineModel(cores=2, serial_fraction=0.0).cpu_stretch(1) == 1.0

    def test_more_lines_than_cores_stretches(self):
        machine = MachineModel(cores=2, serial_fraction=0.0)
        assert machine.cpu_stretch(4) == pytest.approx(2.0)

    def test_serial_fraction_adds_cost(self):
        relaxed = MachineModel(cores=2, serial_fraction=0.0)
        contended = MachineModel(cores=2, serial_fraction=0.5)
        assert contended.cpu_stretch(4) > relaxed.cpu_stretch(4)
