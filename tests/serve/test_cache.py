"""Unit tests for the LRU+TTL query cache."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import QueryCache

from tests.serve.conftest import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestLru:
    def test_get_miss_then_hit(self, clock, registry):
        cache = QueryCache(max_entries=2, ttl_s=None, clock=clock, registry=registry)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_evicts_least_recently_used(self, clock, registry):
        cache = QueryCache(max_entries=2, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert registry.counter("serve.cache_evicted") == 1

    def test_put_existing_key_updates_without_evicting(self, clock, registry):
        cache = QueryCache(max_entries=2, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert registry.counter("serve.cache_evicted") == 0

    def test_size_gauge_tracks_entries(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        cache.put("b", 2)
        assert registry.gauge("serve.cache_size") == 2

    def test_zero_entries_disables_caching(self, clock, registry):
        cache = QueryCache(max_entries=0, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert registry.gauge("serve.cache_size") == 0


class TestTtl:
    def test_entry_expires_after_ttl(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=10.0, clock=clock, registry=registry)
        cache.put("a", 1)
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.001)  # exactly at the deadline: expired
        assert cache.get("a") is None
        assert registry.counter("serve.cache_expired") == 1

    def test_expiry_counts_as_miss_in_hit_accounting(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=5.0, clock=clock, registry=registry)
        cache.put("a", 1)
        assert cache.get("a") == 1  # hit
        clock.advance(6.0)
        assert cache.get("a") is None  # expired -> miss
        assert cache.hits == 1
        assert cache.misses == 1
        assert registry.counter("serve.cache_expired") == 1
        # The expired entry is gone, not resurrected on the next probe.
        assert cache.get("a") is None
        assert cache.misses == 2
        assert registry.counter("serve.cache_expired") == 1

    def test_reinsert_after_expiry_restarts_ttl(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=5.0, clock=clock, registry=registry)
        cache.put("a", 1)
        clock.advance(6.0)
        assert cache.get("a") is None
        cache.put("a", 2)
        clock.advance(4.0)
        assert cache.get("a") == 2

    def test_none_ttl_never_expires(self, clock, registry):
        cache = QueryCache(max_entries=4, ttl_s=None, clock=clock, registry=registry)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1


class TestValidation:
    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=-1)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(ttl_s=0.0)
