"""Shared fixtures for the serving-layer tests."""

import pytest

from repro.model import ApplicationModel, EventAnnotation
from repro.search import SearchEngine


class FakeClock:
    """A manually advanced seconds clock (cache TTL / bucket refill)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def pagination_model(url, page_texts):
    """A linear next/prev pagination model with given state texts."""
    model = ApplicationModel(url)
    states = []
    for offset, text in enumerate(page_texts):
        state, _ = model.add_state(f"{url}-h{offset}", text, depth=offset)
        states.append(state)
    for offset in range(len(states) - 1):
        model.add_transition(
            states[offset],
            states[offset + 1],
            EventAnnotation("#next", "onclick", "nextPage()"),
        )
    return model


@pytest.fixture
def models():
    return [
        pagination_model(
            "url1",
            [
                "morcheeba enjoy the ride official video",
                "the new morcheeba singer is amazing",
            ],
        ),
        pagination_model("url2", ["morcheeba live concert morcheeba fans"]),
    ]


@pytest.fixture
def engine(models):
    return SearchEngine.build(models, pageranks={"url1": 0.6, "url2": 0.4})


@pytest.fixture
def fake_clock():
    return FakeClock()
