"""The make obs-live-smoke gate, at test size."""


def test_live_smoke_passes():
    from repro.serve.live_smoke import run_smoke

    assert run_smoke(verbose=False) == 0
