"""Tests for the closed-loop load-test harness."""

import random

import pytest

from repro.obs.sketch import QuantileSketch, merge_sketches
from repro.serve import (
    LoadTestConfig,
    SearchServer,
    SearchService,
    ServeConfig,
    percentile,
    run_loadtest,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSketchEstimator:
    """The report's percentiles now come from per-worker sketches; the
    estimator must stay within the sketch's relative-error bound of the
    exact nearest-rank values the old sort-based path reported."""

    def test_merged_worker_sketches_match_exact_percentiles(self):
        rng = random.Random(7)
        latencies = [rng.lognormvariate(1.0, 1.2) for _ in range(5000)]
        # Round-robin across 4 "workers", like run_loadtest does.
        sketches = [QuantileSketch() for _ in range(4)]
        for index, value in enumerate(latencies):
            sketches[index % 4].observe(value)
        merged = merge_sketches(sketches)
        exact = sorted(latencies)
        for fraction in (0.5, 0.95, 0.99):
            truth = percentile(exact, fraction)
            estimate = merged.quantile(fraction)
            assert abs(estimate - truth) <= merged.relative_accuracy * truth
        assert merged.count == len(latencies)
        assert merged.mean == pytest.approx(sum(latencies) / len(latencies))


class TestRunLoadtest:
    @pytest.fixture
    def server(self, engine):
        with SearchServer(SearchService(engine)) as running:
            yield running

    def test_closed_loop_run(self, server):
        config = LoadTestConfig(workers=2, requests_per_worker=15)
        report = run_loadtest(
            server.url, ["morcheeba", "singer", "concert"], config
        )
        assert report.requests == 30
        assert report.errors == 0
        assert report.status_counts == {200: 30}
        # Three distinct (query, limit) keys: everything after the first
        # pass is a cache hit.
        assert report.cached_responses >= 20
        assert report.cache_hit_rate > 0.5
        assert report.rps > 0
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_report_round_trips_to_json(self, server):
        report = run_loadtest(
            server.url,
            ["morcheeba"],
            LoadTestConfig(workers=1, requests_per_worker=5),
        )
        data = report.to_dict()
        assert data["requests"] == 5
        assert data["status_counts"] == {"200": 5}
        assert data["rps"] == pytest.approx(report.rps)
        assert report.summary()

    def test_rate_limited_server_reports_429s(self, engine):
        config = ServeConfig(rate_limit_rps=0.001, rate_limit_burst=3.0)
        with SearchServer(SearchService(engine, config)) as server:
            report = run_loadtest(
                server.url,
                ["morcheeba"],
                LoadTestConfig(workers=1, requests_per_worker=10),
            )
        assert report.rate_limited == 7
        assert report.status_counts[200] == 3

    def test_mixed_status_queries(self, engine):
        """400s are counted per status, not as transport errors."""
        with SearchServer(SearchService(engine)) as server:
            report = run_loadtest(
                server.url,
                ["morcheeba", "!!!"],
                LoadTestConfig(workers=1, requests_per_worker=10),
            )
        assert report.errors == 0
        assert report.status_counts[200] == 5
        assert report.status_counts[400] == 5

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            run_loadtest("http://127.0.0.1:1", [])


def test_smoke_sequence_passes():
    """The make serve-smoke gate, at test size."""
    from repro.serve.smoke import run_smoke

    assert run_smoke(num_videos=6, verbose=False) == 0
