"""CLI surface tests for ``repro-ajax serve``, ``loadtest`` and ``top``."""

import json

import pytest

from repro.cli import main
from repro.serve import SearchServer, SearchService, ServeConfig, TelemetryConfig


class TestServeArgs:
    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve", "--index", "x.json", "--site", "webmail"])

    def test_serves_saved_index(self, engine, tmp_path, monkeypatch, capsys):
        """``serve --index`` boots from a saved inverted file; we stub
        the blocking accept loop and probe the configured service."""
        index_file = tmp_path / "index.json"
        engine.index.save(index_file)
        booted = {}

        def fake_serve_forever(self):
            booted["service"] = self.service

        monkeypatch.setattr(SearchServer, "serve_forever", fake_serve_forever)
        assert main(
            ["serve", "--index", str(index_file), "--port", "0",
             "--rate-limit", "5", "--cache-ttl", "0"]
        ) == 0
        service = booted["service"]
        assert service.engine.index.num_states == 3
        assert service.limiter is not None and service.limiter.rate == 5.0
        assert service.cache.ttl_s is None
        assert service.search({"q": "morcheeba"})["total"] == 3
        assert "serving on" in capsys.readouterr().out

    def test_serves_crawled_site_with_models(self, monkeypatch, capsys):
        booted = {}
        monkeypatch.setattr(
            SearchServer,
            "serve_forever",
            lambda self: booted.update(service=self.service),
        )
        assert main(
            ["serve", "--site", "simtube:6:13", "--pages", "4", "--port", "0",
             "--latency-ms", "5", "--latency-shape", "const"]
        ) == 0
        service = booted["service"]
        assert len(service.models) == 4
        assert service.site is not None
        assert "replay enabled" in capsys.readouterr().out


class TestLoadtestCommand:
    def test_loadtest_against_live_server(self, engine, tmp_path, capsys):
        out = tmp_path / "report.json"
        with SearchServer(SearchService(engine)) as server:
            code = main(
                ["loadtest", "--url", server.url, "--workers", "2",
                 "--requests", "5", "--queries", "4", "--out", str(out)]
            )
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["requests"] == 10
        assert report["errors"] == 0
        captured = capsys.readouterr().out
        assert "req/s" in captured
        assert "report written" in captured


class TestTopCommand:
    def test_top_renders_live_vars(self, engine, capsys):
        config = ServeConfig(telemetry=TelemetryConfig())
        with SearchServer(SearchService(engine, config)) as server:
            server.service.search({"q": "morcheeba"})
            server.service.search({"q": "morcheeba"})
            code = main(
                ["top", "--url", server.url, "--iterations", "1"]
            )
        assert code == 0
        screen = capsys.readouterr().out
        assert "repro-ajax top" in screen
        assert "search" in screen
        assert "hit rate" in screen

    def test_top_fails_cleanly_when_server_is_gone(self, capsys):
        code = main(
            ["top", "--url", "http://127.0.0.1:1", "--iterations", "1",
             "--timeout", "0.5"]
        )
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_top_fails_cleanly_when_telemetry_disabled(self, engine, capsys):
        config = ServeConfig(telemetry=TelemetryConfig(enabled=False))
        with SearchServer(SearchService(engine, config)) as server:
            code = main(["top", "--url", server.url, "--iterations", "1"])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err
