"""Unit tests for the transport-agnostic serving core (no sockets)."""

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler
from repro.net.latency import ConstantLatency
from repro.obs import MetricsRegistry, Recorder
from repro.search import ENGLISH_STOPWORDS, InvertedFile, SearchEngine
from repro.serve import (
    BadRequest,
    NotFound,
    RateLimited,
    SearchService,
    ServeConfig,
    UpstreamFailed,
)
from repro.sites import SiteConfig, SyntheticYouTube

from tests.serve.conftest import FakeClock, pagination_model


@pytest.fixture
def service(engine, fake_clock):
    return SearchService(engine, clock=fake_clock)


class TestSearchValidation:
    def test_missing_q_is_bad_request(self, service):
        with pytest.raises(BadRequest):
            service.search({})

    def test_blank_q_is_bad_request(self, service):
        with pytest.raises(BadRequest):
            service.search({"q": "   "})

    def test_punctuation_only_query_maps_to_400_not_500(self, service):
        """SearchError('empty query') from the engine is a client error."""
        with pytest.raises(BadRequest, match="empty query"):
            service.search({"q": "!!! ???"})

    def test_stopword_only_query_succeeds_via_fallback(self, models, fake_clock):
        """With a stopword index, 'the the' falls back to the raw terms
        and answers 200 with zero hits — never a 500."""
        index = InvertedFile(stopwords=ENGLISH_STOPWORDS).build(models)
        service = SearchService(SearchEngine(index), clock=fake_clock)
        page = service.search({"q": "the the"})
        assert page["total"] == 0
        assert page["results"] == []

    @pytest.mark.parametrize("raw", ["abc", "1.5", "-1", "0"])
    def test_bad_limit_is_bad_request(self, service, raw):
        with pytest.raises(BadRequest):
            service.search({"q": "morcheeba", "limit": raw})

    def test_limit_above_max_is_bad_request(self, engine, fake_clock):
        service = SearchService(
            engine, ServeConfig(max_limit=50), clock=fake_clock
        )
        with pytest.raises(BadRequest, match="maximum"):
            service.search({"q": "morcheeba", "limit": "51"})

    def test_negative_offset_is_bad_request(self, service):
        with pytest.raises(BadRequest):
            service.search({"q": "morcheeba", "offset": "-1"})

    def test_non_integer_offset_is_bad_request(self, service):
        with pytest.raises(BadRequest):
            service.search({"q": "morcheeba", "offset": "two"})


class TestPagination:
    def test_default_page(self, service):
        page = service.search({"q": "morcheeba"})
        assert page["total"] == 3
        assert len(page["results"]) == 3
        assert page["offset"] == 0
        assert page["cached"] is False

    def test_limit_slices(self, service):
        page = service.search({"q": "morcheeba", "limit": "2"})
        assert page["total"] == 3
        assert len(page["results"]) == 2

    def test_offset_walks_pages_without_overlap(self, service):
        first = service.search({"q": "morcheeba", "limit": "2"})
        second = service.search({"q": "morcheeba", "limit": "2", "offset": "2"})
        keys = [(r["uri"], r["state"]) for r in first["results"]] + [
            (r["uri"], r["state"]) for r in second["results"]
        ]
        assert len(keys) == 3
        assert len(set(keys)) == 3

    def test_offset_beyond_total_is_empty_200(self, service):
        page = service.search({"q": "morcheeba", "offset": "99"})
        assert page["total"] == 3
        assert page["results"] == []

    def test_results_carry_score_components(self, service):
        page = service.search({"q": "morcheeba"})
        top = page["results"][0]
        assert set(top) == {"uri", "state", "score", "components"}


class TestCacheIntegration:
    def test_second_identical_query_is_cached(self, service):
        assert service.search({"q": "morcheeba"})["cached"] is False
        assert service.search({"q": "morcheeba"})["cached"] is True
        assert service.cache.hits == 1
        assert service.cache.misses == 1

    def test_cached_payload_identical_to_fresh(self, service):
        fresh = service.search({"q": "morcheeba", "limit": "2"})
        cached = service.search({"q": "morcheeba", "limit": "2"})
        assert {k: v for k, v in cached.items() if k != "cached"} == {
            k: v for k, v in fresh.items() if k != "cached"
        }

    def test_distinct_limit_offset_are_distinct_keys(self, service):
        service.search({"q": "morcheeba", "limit": "1"})
        page = service.search({"q": "morcheeba", "limit": "2"})
        assert page["cached"] is False

    def test_ttl_expiry_accounting_on_virtual_clock(self, engine, fake_clock):
        service = SearchService(
            engine, ServeConfig(cache_ttl_s=30.0), clock=fake_clock
        )
        service.search({"q": "morcheeba"})
        fake_clock.advance(29.0)
        assert service.search({"q": "morcheeba"})["cached"] is True
        fake_clock.advance(2.0)
        assert service.search({"q": "morcheeba"})["cached"] is False
        assert service.cache.hits == 1
        assert service.cache.misses == 2
        assert service.registry.counter("serve.cache_expired") == 1

    def test_cache_disabled(self, engine, fake_clock):
        service = SearchService(
            engine, ServeConfig(cache_entries=0), clock=fake_clock
        )
        assert service.search({"q": "morcheeba"})["cached"] is False
        assert service.search({"q": "morcheeba"})["cached"] is False


class TestRateLimiting:
    def test_admit_unlimited_by_default(self, service):
        for _ in range(1000):
            service.admit("anyone")

    def test_admit_raises_with_retry_after(self, engine, fake_clock):
        service = SearchService(
            engine,
            ServeConfig(rate_limit_rps=2.0, rate_limit_burst=1.0),
            clock=fake_clock,
        )
        service.admit("c")
        with pytest.raises(RateLimited) as info:
            service.admit("c")
        assert info.value.status == 429
        assert info.value.retry_after_s == pytest.approx(0.5)

    def test_bucket_refills_on_clock(self, engine, fake_clock):
        service = SearchService(
            engine,
            ServeConfig(rate_limit_rps=2.0, rate_limit_burst=1.0),
            clock=fake_clock,
        )
        service.admit("c")
        fake_clock.advance(0.6)
        service.admit("c")  # does not raise


class TestLatencyInjection:
    def test_disabled_by_default(self, engine, fake_clock):
        slept = []
        service = SearchService(
            engine, clock=fake_clock, sleep=slept.append
        )
        service.search({"q": "morcheeba"})
        assert slept == []

    def test_injects_deterministic_latency(self, engine, fake_clock):
        slept = []
        service = SearchService(
            engine,
            ServeConfig(
                latency_ms=100.0, latency_distribution=ConstantLatency(2.0)
            ),
            clock=fake_clock,
            sleep=slept.append,
        )
        service.search({"q": "morcheeba"})
        assert slept == [pytest.approx(0.2)]
        assert service.registry.counter("serve.latency_injected_ms") == (
            pytest.approx(200.0)
        )

    def test_cache_hits_skip_injection(self, engine, fake_clock):
        slept = []
        service = SearchService(
            engine,
            ServeConfig(
                latency_ms=100.0, latency_distribution=ConstantLatency(1.0)
            ),
            clock=fake_clock,
            sleep=slept.append,
        )
        service.search({"q": "morcheeba"})
        service.search({"q": "morcheeba"})
        assert len(slept) == 1


class TestObservability:
    def test_requests_counted_by_endpoint_and_status(self, service):
        service.search({"q": "morcheeba"})
        with pytest.raises(BadRequest):
            service.search({"q": ""})
        registry = service.registry
        assert registry.counter("serve.requests", endpoint="search", status=200) == 1
        assert registry.counter("serve.requests", endpoint="search", status=400) == 1
        histogram = registry.histogram("serve.request_ms", endpoint="search")
        assert histogram is not None and histogram.count == 2

    def test_serve_request_events_emitted(self, engine, fake_clock):
        recorder = Recorder()
        service = SearchService(
            engine, clock=fake_clock, recorder=recorder
        )
        service.search({"q": "morcheeba"}, client="alice")
        kinds = [event.kind for event in recorder.events]
        assert "serve_request" in kinds
        event = next(e for e in recorder.events if e.kind == "serve_request")
        assert event.fields["endpoint"] == "search"
        assert event.fields["status"] == 200
        assert event.fields["client"] == "alice"

    def test_metrics_text_is_prometheus(self, service):
        service.search({"q": "morcheeba"})
        text = service.metrics_text()
        assert "serve_requests" in text
        assert "# TYPE serve_requests counter" in text

    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["states"] == 3


class TestResultEndpoint:
    @pytest.fixture(scope="class")
    def yt(self):
        site = SyntheticYouTube(SiteConfig(num_videos=6, seed=13))
        crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        crawled = crawler.crawl([site.video_url(i) for i in range(6)])
        return site, crawled.models

    @pytest.fixture
    def yt_service(self, yt, fake_clock):
        site, models = yt
        return SearchService(
            SearchEngine.build(models),
            models=models,
            site=site,
            clock=fake_clock,
        )

    def test_missing_params_is_bad_request(self, yt_service):
        with pytest.raises(BadRequest):
            yt_service.result({"uri": "x"})
        with pytest.raises(BadRequest):
            yt_service.result({"state": "s0"})

    def test_not_configured_is_not_found(self, service):
        with pytest.raises(NotFound, match="not configured"):
            service.result({"uri": "url1", "state": "s0"})

    def test_unknown_uri_is_not_found(self, yt_service):
        with pytest.raises(NotFound):
            yt_service.result({"uri": "http://nope.test/", "state": "s0"})

    def test_unknown_state_is_not_found(self, yt_service):
        uri = next(iter(yt_service.models))
        with pytest.raises(NotFound, match="unknown state"):
            yt_service.result({"uri": uri, "state": "s999"})

    def test_replays_a_deep_state(self, yt_service):
        uri, model = next(
            (url, m)
            for url, m in yt_service.models.items()
            if any(s.depth >= 1 for s in m.states())
        )
        deep = max(model.states(), key=lambda s: s.depth)
        response = yt_service.result({"uri": uri, "state": deep.state_id})
        assert response["uri"] == uri
        assert response["state"] == deep.state_id
        assert "<html" in response["html"].lower()

    def test_drifted_site_maps_to_upstream_failed(self, yt_service):
        uri, model = next(iter(yt_service.models.items()))
        state = model.states()[0]
        original = state.content_hash
        state.content_hash = "0" * 64
        try:
            with pytest.raises(UpstreamFailed) as info:
                yt_service.result({"uri": uri, "state": state.state_id})
            assert info.value.status == 502
        finally:
            state.content_hash = original

    def test_result_failures_counted(self, yt_service):
        with pytest.raises(BadRequest):
            yt_service.result({})
        assert (
            yt_service.registry.counter(
                "serve.requests", endpoint="result", status=400
            )
            == 1
        )


def test_unexpected_engine_failure_counts_as_500(models, fake_clock):
    """A non-ServeError escaping the handler body is booked as 500."""

    class ExplodingEngine(SearchEngine):
        def search(self, query, limit=None):
            raise RuntimeError("boom")

    engine = ExplodingEngine(InvertedFile().build(models))
    service = SearchService(engine, clock=fake_clock)
    with pytest.raises(RuntimeError):
        service.search({"q": "morcheeba"})
    assert service.registry.counter(
        "serve.requests", endpoint="search", status=500
    ) == 1


class TestServingLatencyBuckets:
    """serve.request_ms must use the sub-millisecond serving bounds, not
    the generic 1ms-floor defaults that collapsed every cache hit into
    the first bucket."""

    def test_service_histogram_uses_serving_bounds(self, engine):
        from repro.obs import SERVE_LATENCY_BUCKETS

        service = SearchService(engine)
        service.search({"q": "morcheeba"})
        histogram = service.registry.histogram(
            "serve.request_ms", endpoint="search"
        )
        assert histogram.bounds == SERVE_LATENCY_BUCKETS
        assert histogram.bounds[0] == 0.05

    def test_sub_ms_cache_hits_resolve_across_buckets(self):
        from repro.obs import MetricsRegistry, SERVE_LATENCY_BUCKETS

        registry = MetricsRegistry()
        # A 30µs cache hit, a 400µs miss, a 300ms replay: with the old
        # 1ms-floor bounds all three of these landed in bucket 0.
        for value in (0.03, 0.4, 300.0):
            registry.observe("serve.request_ms", value, endpoint="search")
        histogram = registry.histogram("serve.request_ms", endpoint="search")
        occupied = [
            bound
            for bound, count in zip(histogram.bounds, histogram.bucket_counts)
            if count
        ]
        assert len(occupied) == 3
        assert occupied[0] < 1.0  # the cache hit resolved below 1ms
        assert histogram.bucket_counts[0] == 1  # and only it is in bucket 0

    def test_other_histograms_keep_default_bounds(self):
        from repro.obs import DEFAULT_BUCKETS, MetricsRegistry

        registry = MetricsRegistry()
        registry.observe("net.latency_ms", 3.0)
        assert registry.histogram("net.latency_ms").bounds == DEFAULT_BUCKETS
