"""Unit tests for the token-bucket rate limiter (virtual clock)."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import TokenBucketLimiter

from tests.serve.conftest import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


class TestBucket:
    def test_burst_admitted_then_rejected(self, clock):
        limiter = TokenBucketLimiter(rate=1.0, burst=3.0, clock=clock)
        decisions = [limiter.check("c") for _ in range(4)]
        assert [d.allowed for d in decisions] == [True, True, True, False]

    def test_retry_after_is_exact_on_virtual_clock(self, clock):
        limiter = TokenBucketLimiter(rate=2.0, burst=1.0, clock=clock)
        assert limiter.check("c").allowed
        denied = limiter.check("c")
        assert not denied.allowed
        # Empty bucket at rate 2/s: the next token is 0.5 s away.
        assert denied.retry_after_s == pytest.approx(0.5)

    def test_refill_is_deterministic(self, clock):
        limiter = TokenBucketLimiter(rate=2.0, burst=1.0, clock=clock)
        assert limiter.check("c").allowed
        assert not limiter.check("c").allowed
        clock.advance(0.49)
        assert not limiter.check("c").allowed
        clock.advance(0.02)  # past the 0.5 s refill point
        assert limiter.check("c").allowed

    def test_refill_caps_at_burst(self, clock):
        limiter = TokenBucketLimiter(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)  # a long idle period refills to burst, not more
        assert limiter.tokens("c") == pytest.approx(2.0)
        assert limiter.check("c").allowed
        assert limiter.check("c").allowed
        assert not limiter.check("c").allowed

    def test_clients_have_independent_buckets(self, clock):
        limiter = TokenBucketLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.check("a").allowed
        assert limiter.check("b").allowed
        assert not limiter.check("a").allowed
        assert not limiter.check("b").allowed

    def test_rejections_counted(self, clock):
        registry = MetricsRegistry()
        limiter = TokenBucketLimiter(
            rate=1.0, burst=1.0, clock=clock, registry=registry
        )
        limiter.check("c")
        limiter.check("c")
        limiter.check("c")
        assert limiter.rejections == 2
        assert registry.counter("serve.admitted") == 1

    def test_bucket_map_is_bounded(self, clock):
        limiter = TokenBucketLimiter(
            rate=1.0, burst=1.0, clock=clock, max_clients=4
        )
        for client in "abcdefgh":
            limiter.check(client)
        assert len(limiter._buckets) == 4


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0.0, burst=1.0)

    def test_bad_burst(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=0.5)

    def test_bad_max_clients(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=1.0, max_clients=0)
