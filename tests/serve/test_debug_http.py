"""The /debug/* endpoints and X-Request-Id, over real HTTP sockets."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    REQUEST_ID_HEADER,
    SearchServer,
    SearchService,
    ServeConfig,
    TelemetryConfig,
)


def get(url, client="tester", request_id=None):
    """(status, parsed JSON, headers); 4xx/5xx do not raise."""
    headers = {"X-Client-Id": client}
    if request_id is not None:
        headers[REQUEST_ID_HEADER] = request_id
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture
def server(engine):
    config = ServeConfig(
        telemetry=TelemetryConfig(sample_every=1, slow_ms=10_000.0)
    )
    with SearchServer(SearchService(engine, config)) as running:
        yield running


class TestRequestId:
    def test_client_request_id_is_echoed_and_traceable(self, server):
        status, _, headers = get(
            f"{server.url}/search?q=morcheeba", request_id="my-req-1"
        )
        assert status == 200
        assert headers[REQUEST_ID_HEADER] == "my-req-1"
        status, trace, _ = get(f"{server.url}/debug/trace?id=my-req-1")
        assert status == 200
        assert trace["request_id"] == "my-req-1"
        assert trace["endpoint"] == "search"
        assert trace["fields"]["query"] == "morcheeba"
        assert trace["fields"]["cached"] is False
        assert trace["fields"]["matches"] == 3

    def test_server_assigns_an_id_when_client_sends_none(self, server):
        status, _, headers = get(f"{server.url}/search?q=morcheeba")
        assert status == 200
        assigned = headers[REQUEST_ID_HEADER]
        assert assigned.startswith("req-")
        status, trace, _ = get(f"{server.url}/debug/trace?id={assigned}")
        assert status == 200
        assert trace["client"] == "tester"

    def test_error_requests_are_retained_in_the_tail(self, engine):
        # sample_every huge: only the tail ring can retain the 400.
        config = ServeConfig(telemetry=TelemetryConfig(sample_every=10**6))
        with SearchServer(SearchService(engine, config)) as server:
            status, _, _ = get(f"{server.url}/search?q=", request_id="bad-1")
            assert status == 400
            status, trace, _ = get(f"{server.url}/debug/trace?id=bad-1")
        assert status == 200
        assert trace["status"] == 400


class TestDebugEndpoints:
    def test_vars_reflects_traffic(self, server):
        get(f"{server.url}/search?q=morcheeba")
        get(f"{server.url}/search?q=morcheeba")  # cache hit
        status, data, _ = get(f"{server.url}/debug/vars")
        assert status == 200
        assert data["endpoints"]["search"]["requests"] == 2.0
        assert data["cache"]["hits"] == 1.0
        assert data["cache"]["misses"] == 1.0
        assert data["endpoints"]["search"]["latency_ms"]["p50"] > 0.0

    def test_slo_endpoint_shape(self, server):
        get(f"{server.url}/search?q=morcheeba")
        status, data, _ = get(f"{server.url}/debug/slo")
        assert status == 200
        assert {entry["name"] for entry in data["slos"]} == {
            "availability",
            "latency-p99",
        }
        assert data["findings"] == []

    def test_slow_log_over_http(self, engine):
        # slow_ms=0: every request counts as slow and lands in the log.
        config = ServeConfig(telemetry=TelemetryConfig(slow_ms=0.0))
        with SearchServer(SearchService(engine, config)) as server:
            get(f"{server.url}/search?q=morcheeba")
            status, data, _ = get(f"{server.url}/debug/slow")
        assert status == 200
        assert len(data["slow"]) == 1
        assert data["slow"][0]["query"] == "morcheeba"

    def test_trace_lookup_errors(self, server):
        status, body, _ = get(f"{server.url}/debug/trace?id=never-seen")
        assert status == 404
        assert "no retained trace" in body["error"]
        status, body, _ = get(f"{server.url}/debug/trace")
        assert status == 400

    def test_throttled_requests_are_counted(self, engine):
        config = ServeConfig(
            rate_limit_rps=0.001,
            rate_limit_burst=2.0,
            telemetry=TelemetryConfig(),
        )
        with SearchServer(SearchService(engine, config)) as server:
            statuses = [
                get(f"{server.url}/search?q=morcheeba", client="burster")[0]
                for _ in range(5)
            ]
            _, data, _ = get(f"{server.url}/debug/vars")
        assert statuses.count(429) == 3
        assert data["admissions"]["throttled"] == 3.0
        # 2 admitted + 3 rejected (/debug/* itself is not admitted).
        assert data["admissions"]["requests"] == 5.0

    def test_disabled_telemetry_turns_debug_into_404(self, engine):
        config = ServeConfig(telemetry=TelemetryConfig(enabled=False))
        with SearchServer(SearchService(engine, config)) as server:
            status, _, headers = get(f"{server.url}/search?q=morcheeba")
            assert status == 200
            assert REQUEST_ID_HEADER not in headers
            for path in ("/debug/vars", "/debug/slo", "/debug/slow"):
                status, body, _ = get(f"{server.url}{path}")
                assert status == 404
                assert "disabled" in body["error"]
