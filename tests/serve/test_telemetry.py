"""Unit tests for the live serving telemetry (virtual clock, no HTTP)."""

import pytest

from repro.obs.reqtrace import RequestTrace
from repro.obs.slo import BURN_RATE_RULE, SLO
from repro.serve.telemetry import (
    DEFAULT_SLOS,
    LiveDoctorConfig,
    ServingTelemetry,
    TelemetryConfig,
    format_top,
    sample_request,
)

from tests.serve.conftest import FakeClock


def telemetry(**overrides) -> tuple[ServingTelemetry, FakeClock]:
    clock = FakeClock(1000.0)
    config = TelemetryConfig(**overrides)
    return ServingTelemetry(config, clock=clock), clock


def finish_one(
    tel,
    endpoint="search",
    status=200,
    duration_ms=1.0,
    request_id=None,
    **fields,
):
    trace = tel.begin(endpoint, "client", request_id)
    if fields:
        trace.annotate(**fields)
    tel.finish(trace, status, duration_ms)
    return trace


class TestSampling:
    def test_deterministic_and_roughly_one_in_n(self):
        decisions = [sample_request(f"req-{i:08d}", 16) for i in range(1600)]
        assert decisions == [sample_request(f"req-{i:08d}", 16) for i in range(1600)]
        sampled = sum(decisions)
        assert 50 <= sampled <= 150  # ~100 expected

    def test_sample_every_one_keeps_everything(self):
        assert all(sample_request(f"r{i}", 1) for i in range(20))

    def test_next_request_id_is_sequential(self):
        tel, _ = telemetry()
        assert tel.next_request_id() == "req-00000001"
        assert tel.next_request_id() == "req-00000002"


class TestWindowsAndVars:
    def test_requests_and_latency_are_booked_per_endpoint(self):
        tel, clock = telemetry()
        for duration in (1.0, 2.0, 3.0):
            finish_one(tel, duration_ms=duration)
            clock.advance(1.0)
        finish_one(tel, endpoint="result", status=500, duration_ms=50.0)
        data = tel.vars()
        search = data["endpoints"]["search"]
        assert search["requests"] == 3.0
        assert search["errors"] == 0.0
        assert search["latency_ms"]["count"] == 3
        result = data["endpoints"]["result"]
        assert result["errors"] == 1.0
        assert data["lifetime_latency_ms"]["count"] == 4
        assert data["admissions"]["requests"] == 4.0

    def test_cache_and_index_accounting(self):
        tel, _ = telemetry()
        finish_one(tel, cached=True)
        finish_one(tel, cached=False)
        trace = tel.begin("search", "c")
        trace.annotate(cached=False)
        trace.add_index_stats(10, 30, 500)
        tel.finish(trace, 200, 1.0)
        data = tel.vars()
        assert data["cache"]["hits"] == 1.0
        assert data["cache"]["misses"] == 2.0
        assert data["index"]["blocks_decoded"] == 10.0
        assert data["index"]["blocks_skipped"] == 30.0
        assert data["index"]["decode_fraction"] == pytest.approx(0.25)

    def test_windows_expire_on_the_clock(self):
        tel, clock = telemetry(window_s=60.0)
        finish_one(tel)
        clock.advance(61.0)
        data = tel.vars()
        assert data["endpoints"]["search"]["requests"] == 0.0


class TestTraceRetention:
    def test_sampled_ring_keeps_and_evicts_lru(self):
        tel, _ = telemetry(sample_every=1, trace_capacity=3)
        for index in range(5):
            finish_one(tel, request_id=f"r-{index}")
        assert tel.trace("r-0") is None
        assert tel.trace("r-4")["request_id"] == "r-4"
        assert tel.vars()["traces"]["sampled"] == 3

    def test_tail_always_retains_slow_and_error_requests(self):
        # sample_every huge: nothing is hash-sampled, so retention must
        # come from the tail ring alone.
        tel, _ = telemetry(sample_every=10**6, slow_ms=100.0)
        finish_one(tel, request_id="fast", duration_ms=1.0)
        finish_one(tel, request_id="slow", duration_ms=150.0)
        finish_one(tel, request_id="boom", status=502, duration_ms=1.0)
        assert tel.trace("fast") is None
        assert tel.trace("slow")["duration_ms"] == 150.0
        assert tel.trace("boom")["status"] == 502

    def test_slowlog_is_newest_first_and_bounded(self):
        tel, _ = telemetry(slow_ms=10.0, slowlog_capacity=2)
        for index in range(4):
            finish_one(
                tel, request_id=f"s-{index}", duration_ms=20.0, query=f"q{index}"
            )
        slow = tel.slow_queries()
        assert [entry["request_id"] for entry in slow] == ["s-3", "s-2"]
        assert slow[0]["query"] == "q3"

    def test_trace_includes_index_stats(self):
        tel, _ = telemetry(sample_every=1)
        trace = tel.begin("search", "c", "rid")
        trace.add_index_stats(4, 12, 100)
        tel.finish(trace, 200, 1.0)
        found = tel.trace("rid")
        assert found["index"]["decode_fraction"] == pytest.approx(0.25)


class TestLiveDoctor:
    def test_healthy_traffic_yields_no_findings(self):
        tel, clock = telemetry()
        for index in range(30):
            finish_one(tel, duration_ms=1.0, cached=index % 2 == 0)
            clock.advance(0.5)
        assert tel.diagnose() == []
        assert tel.slo_status()["findings"] == []

    def test_cache_collapse_fires_below_hit_rate_floor(self):
        tel, _ = telemetry()
        for _ in range(25):
            finish_one(tel, cached=False)
        rules = {f.rule for f in tel.diagnose()}
        assert "serve-cache-collapse" in rules

    def test_throttle_storm_fires_on_429_share(self):
        tel, _ = telemetry()
        for _ in range(10):
            finish_one(tel)
        for _ in range(10):
            tel.record_rejection("search", "noisy")
        findings = {f.rule: f for f in tel.diagnose()}
        assert "throttle-storm" in findings
        assert findings["throttle-storm"].signal == pytest.approx(0.5)

    def test_read_amplification_fires_when_skipping_disengages(self):
        tel, _ = telemetry()
        trace = tel.begin("search", "c")
        trace.add_index_stats(300, 100, 5000)
        tel.finish(trace, 200, 1.0)
        rules = {f.rule for f in tel.diagnose()}
        assert "segment-read-amplification" in rules

    def test_burn_rate_findings_flow_through(self):
        tel, clock = telemetry(
            slos=(SLO("availability", objective=0.999),),
        )
        for _ in range(20):
            finish_one(tel, status=500)
            clock.advance(1.0)
        rules = [f.rule for f in tel.diagnose()]
        assert BURN_RATE_RULE in rules

    def test_slo_status_lists_every_configured_objective(self):
        tel, _ = telemetry()
        names = [entry["name"] for entry in tel.slo_status()["slos"]]
        assert names == [slo.name for slo in DEFAULT_SLOS]

    def test_doctor_thresholds_are_configurable(self):
        tel, _ = telemetry(doctor=LiveDoctorConfig(cache_min_lookups=5))
        for _ in range(6):
            finish_one(tel, cached=False)
        assert any(f.rule == "serve-cache-collapse" for f in tel.diagnose())


class TestFormatTop:
    def test_renders_endpoints_and_rates(self):
        tel, _ = telemetry()
        finish_one(tel, duration_ms=3.0, cached=True)
        finish_one(tel, endpoint="result", duration_ms=8.0)
        screen = format_top(tel.vars())
        assert "repro-ajax top" in screen
        assert "search" in screen and "result" in screen
        assert "hit rate" in screen
        assert "slo budget spent" in screen

    def test_renders_empty_vars(self):
        tel, _ = telemetry()
        assert "repro-ajax top" in format_top(tel.vars())
