"""End-to-end HTTP tests: a real server on an ephemeral port."""

import json
import urllib.error
import urllib.request
from urllib.parse import urlencode

import pytest

from repro.serve import CLIENT_HEADER, SearchServer, SearchService, ServeConfig


def get(url, client="test"):
    """(status, parsed JSON or text, headers); 4xx/5xx don't raise."""
    request = urllib.request.Request(url, headers={CLIENT_HEADER: client})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            status, body, headers = (
                response.status,
                response.read(),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        status, body, headers = error.code, error.read(), dict(error.headers)
    text = body.decode("utf-8")
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, json.loads(text), headers
    return status, text, headers


@pytest.fixture
def server(engine):
    with SearchServer(SearchService(engine)) as running:
        yield running


class TestEndpoints:
    def test_search_200(self, server):
        status, body, headers = get(
            f"{server.url}/search?{urlencode({'q': 'morcheeba'})}"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body["total"] == 3
        assert body["results"][0]["uri"]

    def test_search_conjunction(self, server):
        status, body, _ = get(
            f"{server.url}/search?{urlencode({'q': 'morcheeba singer'})}"
        )
        assert status == 200
        assert [(r["uri"], r["state"]) for r in body["results"]] == [("url1", "s1")]

    def test_healthz(self, server):
        status, body, _ = get(f"{server.url}/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_metrics_exposition(self, server):
        get(f"{server.url}/search?q=morcheeba")
        status, text, headers = get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "serve_requests" in text
        assert 'endpoint="search"' in text

    def test_repeated_query_served_from_cache(self, server):
        get(f"{server.url}/search?q=morcheeba")
        status, body, _ = get(f"{server.url}/search?q=morcheeba")
        assert status == 200
        assert body["cached"] is True


class TestErrorMapping:
    def test_blank_query_400(self, server):
        status, body, _ = get(f"{server.url}/search?q=")
        assert status == 400
        assert "q" in body["error"]

    def test_punctuation_query_400(self, server):
        status, body, _ = get(f"{server.url}/search?{urlencode({'q': '!!!'})}")
        assert status == 400

    def test_bad_limit_400(self, server):
        status, _, _ = get(f"{server.url}/search?q=morcheeba&limit=banana")
        assert status == 400

    def test_unknown_endpoint_404(self, server):
        status, body, _ = get(f"{server.url}/bogus")
        assert status == 404
        assert body["status"] == 404

    def test_result_not_configured_404(self, server):
        status, _, _ = get(f"{server.url}/result?uri=url1&state=s0")
        assert status == 404


class TestRateLimiting:
    @pytest.fixture
    def limited(self, engine):
        config = ServeConfig(rate_limit_rps=0.001, rate_limit_burst=2.0)
        with SearchServer(SearchService(engine, config)) as running:
            yield running

    def test_429_with_retry_after(self, limited):
        statuses = []
        for _ in range(3):
            status, _, headers = get(f"{limited.url}/search?q=morcheeba", "alice")
            statuses.append((status, headers))
        assert [s for s, _ in statuses] == [200, 200, 429]
        _, headers = statuses[-1]
        assert int(headers["Retry-After"]) >= 1

    def test_clients_limited_independently(self, limited):
        assert get(f"{limited.url}/search?q=morcheeba", "a")[0] == 200
        assert get(f"{limited.url}/search?q=morcheeba", "a")[0] == 200
        assert get(f"{limited.url}/search?q=morcheeba", "a")[0] == 429
        assert get(f"{limited.url}/search?q=morcheeba", "b")[0] == 200

    def test_metrics_not_rate_limited(self, limited):
        for _ in range(4):
            get(f"{limited.url}/search?q=morcheeba", "c")
        status, _, _ = get(f"{limited.url}/metrics", "c")
        assert status == 200


class TestLifecycle:
    def test_ephemeral_port_bound(self, engine):
        server = SearchServer(SearchService(engine)).start()
        try:
            assert server.port > 0
            assert get(f"{server.url}/healthz")[0] == 200
        finally:
            assert server.stop() is True

    def test_clean_shutdown_joins_thread(self, engine):
        server = SearchServer(SearchService(engine)).start()
        assert server.stop() is True
        assert server._thread is None

    def test_double_start_rejected(self, engine):
        server = SearchServer(SearchService(engine)).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()
