"""Tests for the XMLHttpRequest host object and its hot-call hooks."""

import pytest

from repro.clock import CostModel, SimClock
from repro.errors import NetworkError
from repro.js import Interpreter
from repro.net import NetworkGateway, StaticServer, make_xhr_constructor
from repro.net.xhr import HotCallPolicy


def make_interp(pages, policy=None, observer=None, base_url="http://s/"):
    clock = SimClock()
    gateway = NetworkGateway(StaticServer(pages), clock, CostModel(network_jitter=0.0))
    interp = Interpreter()
    interp.define_global(
        "XMLHttpRequest",
        make_xhr_constructor(gateway, base_url=base_url, policy=policy, observer=observer),
    )
    return interp, gateway


FETCH_SCRIPT = """
function getUrl(url, async) {
    var req = new XMLHttpRequest();
    req.open("GET", url, async);
    req.send(null);
    return req.responseText;
}
"""


class DictPolicy(HotCallPolicy):
    def __init__(self):
        self.cache = {}
        self.stored = []

    def lookup(self, signature):
        return self.cache.get(signature)

    def store(self, signature, response_body):
        self.cache[signature] = response_body
        self.stored.append(signature)


class TestBasicXhr:
    def test_fetch_returns_response_text(self):
        interp, _ = make_interp({"http://s/data": "payload"})
        interp.run(FETCH_SCRIPT)
        assert interp.eval_expression("getUrl('http://s/data', true)") == "payload"

    def test_relative_url_resolved_against_base(self):
        interp, _ = make_interp({"http://s/comments?p=2": "page2"}, base_url="http://s/watch")
        interp.run(FETCH_SCRIPT)
        assert interp.eval_expression("getUrl('/comments?p=2', true)") == "page2"

    def test_status_and_ready_state(self):
        interp, _ = make_interp({"http://s/x": "ok"})
        result = interp.run(
            FETCH_SCRIPT
            + """
            var r = new XMLHttpRequest();
            r.open('GET', 'http://s/x', true);
            r.send(null);
            [r.status, r.readyState];
            """
        )
        assert result.elements == [200.0, 4.0]

    def test_send_before_open_raises(self):
        interp, _ = make_interp({})
        with pytest.raises(NetworkError):
            interp.run("var r = new XMLHttpRequest(); r.send(null);")

    def test_each_call_counts_in_stats(self):
        interp, gateway = make_interp({"http://s/a": "x"})
        interp.run(FETCH_SCRIPT)
        interp.eval_expression("getUrl('http://s/a', true)")
        interp.eval_expression("getUrl('http://s/a', true)")
        assert gateway.stats.ajax_calls == 2


class TestHotCallPolicy:
    def test_miss_then_hit(self):
        policy = DictPolicy()
        interp, gateway = make_interp({"http://s/c?p=2": "page two"}, policy=policy)
        interp.run(FETCH_SCRIPT)
        first = interp.eval_expression("getUrl('http://s/c?p=2', true)")
        second = interp.eval_expression("getUrl('http://s/c?p=2', true)")
        assert first == second == "page two"
        assert gateway.stats.ajax_calls == 1
        assert gateway.stats.cached_hits == 1

    def test_signature_is_hot_function_with_args(self):
        policy = DictPolicy()
        interp, _ = make_interp({"http://s/c?p=2": "x"}, policy=policy)
        interp.run(FETCH_SCRIPT)
        interp.eval_expression("getUrl('http://s/c?p=2', true)")
        assert policy.stored == ["getUrl(http://s/c?p=2, true)"]

    def test_different_arguments_are_different_hot_calls(self):
        policy = DictPolicy()
        interp, gateway = make_interp(
            {"http://s/c?p=2": "two", "http://s/c?p=3": "three"}, policy=policy
        )
        interp.run(FETCH_SCRIPT)
        interp.eval_expression("getUrl('http://s/c?p=2', true)")
        interp.eval_expression("getUrl('http://s/c?p=3', true)")
        assert gateway.stats.ajax_calls == 2
        assert gateway.stats.cached_hits == 0

    def test_cached_call_does_not_touch_network(self):
        policy = DictPolicy()
        policy.cache["getUrl(http://s/never, true)"] = "from cache"
        interp, gateway = make_interp({}, policy=policy)
        interp.run(FETCH_SCRIPT)
        assert interp.eval_expression("getUrl('http://s/never', true)") == "from cache"
        assert gateway.stats.ajax_calls == 0

    def test_error_responses_not_cached(self):
        policy = DictPolicy()
        interp, gateway = make_interp({}, policy=policy)  # everything 404s
        interp.run(FETCH_SCRIPT)
        interp.eval_expression("getUrl('http://s/missing', true)")
        assert policy.cache == {}

    def test_toplevel_send_uses_fallback_signature(self):
        policy = DictPolicy()
        interp, _ = make_interp({"http://s/x": "ok"}, policy=policy)
        interp.run(
            "var r = new XMLHttpRequest(); r.open('GET', 'http://s/x', true); r.send(null);"
        )
        (signature,) = policy.stored
        assert signature.startswith("<toplevel>(")


class TestObserver:
    def test_observer_sees_cache_flag(self):
        seen = []
        policy = DictPolicy()
        interp, _ = make_interp(
            {"http://s/c?p=2": "x"},
            policy=policy,
            observer=lambda sig, url, cached: seen.append((sig, url, cached)),
        )
        interp.run(FETCH_SCRIPT)
        interp.eval_expression("getUrl('http://s/c?p=2', true)")
        interp.eval_expression("getUrl('http://s/c?p=2', true)")
        assert [cached for _, _, cached in seen] == [False, True]
        assert all(url == "http://s/c?p=2" for _, url, _ in seen)
