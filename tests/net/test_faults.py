"""Tests for fault injection, retry/backoff and gateway failure booking."""

import pytest

from repro.clock import CostModel, SimClock
from repro.errors import NetworkError, RetriesExhausted
from repro.js import Interpreter
from repro.net import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    NetworkGateway,
    NETWORK_ACCOUNT,
    Request,
    RetryPolicy,
    StaticServer,
    make_xhr_constructor,
)
from repro.net.faults import TIMEOUT_HEADER


def make_gateway(pages, plan=None, policy=None):
    clock = SimClock()
    server = StaticServer(pages)
    if plan is not None:
        server = FaultInjector(server, plan)
    gateway = NetworkGateway(
        server, clock, CostModel(network_jitter=0.0), retry_policy=policy
    )
    return gateway, clock


class TestFaultRule:
    def test_matches_is_regex_search(self):
        rule = FaultRule(r"/comments")
        assert rule.matches("http://s/comments?p=2")
        assert not rule.matches("http://s/watch?v=1")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultRule("x", rate=1.5)

    def test_rejects_non_5xx_error(self):
        with pytest.raises(ValueError):
            FaultRule("x", status=404)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule("x", kind="gremlin")


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def run(seed):
            plan = FaultPlan([FaultRule(r"/c", rate=0.5)], seed=seed)
            return [
                plan.decide(Request("GET", f"http://s/c?p={i}")) is not None
                for i in range(50)
            ]

        assert run(3) == run(3)
        assert run(3) != run(4)  # astronomically unlikely to collide

    def test_rate_one_always_injects_and_logs(self):
        plan = FaultPlan([FaultRule(r"/c", rate=1.0, status=503)])
        for i in range(5):
            response = plan.decide(Request("GET", f"http://s/c?p={i}"))
            assert response.status == 503
        assert plan.num_injected == 5
        assert [event.seq for event in plan.log] == [0, 1, 2, 3, 4]
        assert all(event.status == 503 for event in plan.log)

    def test_non_matching_urls_pass_through(self):
        plan = FaultPlan([FaultRule(r"/c", rate=1.0)])
        assert plan.decide(Request("GET", "http://s/watch")) is None
        assert plan.num_injected == 0

    def test_fail_first_then_recover(self):
        plan = FaultPlan([FaultRule(r"/flaky", fail_first=2)])
        request = Request("GET", "http://s/flaky")
        assert plan.decide(request) is not None
        assert plan.decide(request) is not None
        assert plan.decide(request) is None  # recovered
        assert plan.decide(request) is None
        assert plan.num_injected == 2

    def test_fail_first_counts_per_url(self):
        plan = FaultPlan([FaultRule(r"/flaky", fail_first=1)])
        assert plan.decide(Request("GET", "http://s/flaky?a")) is not None
        assert plan.decide(Request("GET", "http://s/flaky?b")) is not None
        assert plan.decide(Request("GET", "http://s/flaky?a")) is None

    def test_timeout_fault_carries_latency_header(self):
        plan = FaultPlan([FaultRule(r"/slow", rate=1.0, kind="timeout", timeout_ms=9000.0)])
        response = plan.decide(Request("GET", "http://s/slow"))
        assert response.status == 504
        assert response.headers[TIMEOUT_HEADER] == "9000.0"

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultRule(r"/c", rate=0.5)], seed=11)
        first = [plan.decide(Request("GET", f"u/c{i}")) is not None for i in range(20)]
        plan.reset()
        second = [plan.decide(Request("GET", f"u/c{i}")) is not None for i in range(20)]
        assert first == second
        assert plan.num_injected == sum(second)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_ms=100.0, backoff_multiplier=2.0, jitter=0.0)
        assert policy.backoff_ms(1) == 100.0
        assert policy.backoff_ms(2) == 200.0
        assert policy.backoff_ms(3) == 400.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_ms=100.0, jitter=0.1)
        first = policy.backoff_ms(1, "http://s/a")
        assert first == policy.backoff_ms(1, "http://s/a")
        assert 90.0 <= first <= 110.0
        # Distinct URLs retry at distinct offsets (no thundering herd).
        assert first != policy.backoff_ms(1, "http://s/b")

    def test_should_retry_respects_budget_and_status(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, 500)
        assert policy.should_retry(2, 503)
        assert not policy.should_retry(3, 500)  # budget exhausted
        assert not policy.should_retry(1, 404)  # not retryable

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestGatewayRetries:
    def test_flaky_endpoint_recovers_after_retry(self):
        plan = FaultPlan([FaultRule(r"/c", fail_first=1)])
        gateway, clock = make_gateway(
            {"http://s/c": "payload"}, plan, RetryPolicy(max_attempts=2, jitter=0.0)
        )
        response = gateway.ajax_request("GET", "http://s/c")
        assert response.body == "payload"
        stats = gateway.stats
        assert stats.retries == 1
        assert stats.failed_attempts == 1
        assert stats.failed_requests == 0
        assert stats.ajax_calls == 1
        assert stats.requests_by_url == {"http://s/c": 2}
        assert stats.retry_time_ms > 0
        # Failed attempt + backoff + successful attempt all on the clock.
        assert clock.spent_on(NETWORK_ACCOUNT) == pytest.approx(stats.network_time_ms)

    def test_exhaustion_raises_with_attempt_count(self):
        plan = FaultPlan([FaultRule(r"/c", rate=1.0, status=502)])
        gateway, _ = make_gateway({"http://s/c": "x"}, plan, RetryPolicy(max_attempts=3))
        with pytest.raises(RetriesExhausted) as excinfo:
            gateway.ajax_request("GET", "http://s/c")
        assert excinfo.value.attempts == 3
        assert excinfo.value.status == 502
        stats = gateway.stats
        assert stats.failed_attempts == 3
        assert stats.retries == 2
        assert stats.failed_requests == 1
        assert stats.retries + stats.failed_requests == plan.num_injected

    def test_failure_charged_and_booked_without_retries(self):
        """Regression: a 5xx must cost latency and appear in the stats
        even on the legacy no-retry path (it used to vanish)."""
        plan = FaultPlan([FaultRule(r"/c", rate=1.0)])
        gateway, clock = make_gateway({"http://s/c": "x"}, plan)  # no policy
        with pytest.raises(NetworkError):
            gateway.ajax_request("GET", "http://s/c")
        assert clock.spent_on(NETWORK_ACCOUNT) > 0
        assert gateway.stats.requests_by_url == {"http://s/c": 1}
        assert gateway.stats.failed_attempts == 1
        assert gateway.stats.failed_requests == 1
        assert gateway.stats.network_time_ms == pytest.approx(
            clock.spent_on(NETWORK_ACCOUNT)
        )

    def test_timeout_charges_advertised_latency(self):
        plan = FaultPlan(
            [FaultRule(r"/slow", rate=1.0, kind="timeout", timeout_ms=7500.0)]
        )
        gateway, clock = make_gateway({"http://s/slow": "x"}, plan)
        with pytest.raises(NetworkError):
            gateway.ajax_request("GET", "http://s/slow")
        assert clock.spent_on(NETWORK_ACCOUNT) == pytest.approx(7500.0)

    def test_timeouts_are_retryable(self):
        plan = FaultPlan(
            [FaultRule(r"/slow", fail_first=1, kind="timeout", timeout_ms=1000.0)]
        )
        gateway, _ = make_gateway(
            {"http://s/slow": "late"}, plan, RetryPolicy(max_attempts=2)
        )
        assert gateway.ajax_request("GET", "http://s/slow").body == "late"
        assert gateway.stats.retries == 1

    def test_zero_fault_plan_with_retries_is_noop(self):
        """Retry layer enabled + no faults == legacy behaviour, exactly."""
        pages = {"http://s/a": "hello", "http://s/b": "world"}
        plain, plain_clock = make_gateway(pages)
        retrying, retry_clock = make_gateway(
            pages, FaultPlan([FaultRule(r"/", rate=0.0)]), RetryPolicy(max_attempts=5)
        )
        for gateway in (plain, retrying):
            gateway.fetch_page("http://s/a")
            gateway.ajax_request("GET", "http://s/b")
        assert plain_clock.now_ms == retry_clock.now_ms
        assert plain.stats.network_time_ms == retrying.stats.network_time_ms
        assert plain.stats.requests_by_url == retrying.stats.requests_by_url
        assert retrying.stats.retries == 0
        assert retrying.stats.retry_time_ms == 0.0


class TestXhrDegradation:
    def make_interp(self, pages, plan, policy):
        clock = SimClock()
        server = FaultInjector(StaticServer(pages), plan)
        gateway = NetworkGateway(
            server, clock, CostModel(network_jitter=0.0), retry_policy=policy
        )
        interp = Interpreter()
        interp.define_global(
            "XMLHttpRequest", make_xhr_constructor(gateway, base_url="http://s/")
        )
        return interp, gateway

    def test_exhausted_send_surfaces_status_not_exception(self):
        plan = FaultPlan([FaultRule(r"/dead", rate=1.0, status=503)])
        interp, gateway = self.make_interp(
            {"http://s/dead": "x"}, plan, RetryPolicy(max_attempts=2)
        )
        result = interp.run(
            """
            var r = new XMLHttpRequest();
            r.open('GET', 'http://s/dead', true);
            r.send(null);
            [r.status, r.readyState, r.responseText];
            """
        )
        assert result.elements == [503.0, 4.0, ""]
        assert gateway.stats.failed_requests == 1

    def test_recovered_send_is_transparent(self):
        plan = FaultPlan([FaultRule(r"/flaky", fail_first=1)])
        interp, gateway = self.make_interp(
            {"http://s/flaky": "ok"}, plan, RetryPolicy(max_attempts=2)
        )
        result = interp.run(
            """
            var r = new XMLHttpRequest();
            r.open('GET', 'http://s/flaky', true);
            r.send(null);
            [r.status, r.responseText];
            """
        )
        assert result.elements == [200.0, "ok"]
        assert gateway.stats.retries == 1
