"""Unit tests for the network gateway and statistics."""

import pytest

from repro.clock import CostModel, SimClock
from repro.errors import NetworkError
from repro.net import NETWORK_ACCOUNT, NetworkGateway, NetworkStats, Request, Response, StaticServer
from repro.net.server import SimulatedServer


def make_gateway(pages=None, jitter=0.0):
    clock = SimClock()
    model = CostModel(network_jitter=jitter)
    gateway = NetworkGateway(StaticServer(pages or {}), clock, model)
    return gateway, clock, model


class TestGateway:
    def test_fetch_page_returns_body(self):
        gateway, _, _ = make_gateway({"http://s/a": "hello"})
        assert gateway.fetch_page("http://s/a").body == "hello"

    def test_page_fetch_charges_clock(self):
        gateway, clock, model = make_gateway({"http://s/a": "hello"})
        gateway.fetch_page("http://s/a")
        assert clock.now_ms > 0
        assert clock.spent_on(NETWORK_ACCOUNT) == pytest.approx(clock.now_ms)

    def test_ajax_cheaper_than_page(self):
        gateway, clock, _ = make_gateway({"u": "x"})
        gateway.fetch_page("u")
        page_time = clock.spent_on(NETWORK_ACCOUNT)
        gateway.ajax_request("GET", "u")
        ajax_time = clock.spent_on(NETWORK_ACCOUNT) - page_time
        assert ajax_time < page_time

    def test_stats_counters(self):
        gateway, _, _ = make_gateway({"u": "abcd", "v": "efgh"})
        gateway.fetch_page("u")
        gateway.ajax_request("GET", "v")
        gateway.ajax_request("GET", "v")
        stats = gateway.stats
        assert stats.page_fetches == 1
        assert stats.ajax_calls == 2
        assert stats.total_requests == 3
        assert stats.bytes_transferred == 12
        assert stats.requests_by_url == {"u": 1, "v": 2}
        assert stats.network_time_ms > 0

    def test_server_error_raises(self):
        class Broken(SimulatedServer):
            def handle(self, request):
                return Response(status=500, body="boom")

        clock = SimClock()
        gateway = NetworkGateway(Broken(), clock, CostModel())
        with pytest.raises(NetworkError):
            gateway.fetch_page("u")

    def test_404_is_returned_not_raised(self):
        gateway, _, _ = make_gateway({})
        assert gateway.fetch_page("missing").status == 404


class TestNetworkStats:
    def test_attempted_includes_cache_hits(self):
        stats = NetworkStats()
        stats.record("ajax", "u", 10, 5.0)
        stats.record_cache_hit()
        stats.record_cache_hit()
        assert stats.ajax_calls == 1
        assert stats.cached_hits == 2
        assert stats.attempted_ajax_calls == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats().record("smoke-signal", "u", 0, 0.0)

    def test_merge(self):
        a = NetworkStats()
        a.record("page", "u", 100, 10.0)
        b = NetworkStats()
        b.record("ajax", "u", 50, 5.0)
        b.record_cache_hit()
        a.merge(b)
        assert a.page_fetches == 1
        assert a.ajax_calls == 1
        assert a.cached_hits == 1
        assert a.bytes_transferred == 150
        assert a.network_time_ms == pytest.approx(15.0)
        assert a.requests_by_url == {"u": 2}
