"""Tests for the latency distribution models."""

import statistics

import pytest

from repro.clock import CostModel, SimClock
from repro.net import (
    ConstantLatency,
    LognormalLatency,
    NetworkGateway,
    SpikyLatency,
    StaticServer,
    UniformJitter,
)


class TestConstantLatency:
    def test_always_same(self):
        dist = ConstantLatency(1.5)
        assert [dist.sample() for _ in range(5)] == [1.5] * 5

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ConstantLatency(0)


class TestUniformJitter:
    def test_bounds(self):
        dist = UniformJitter(spread=0.3, seed=1)
        samples = [dist.sample() for _ in range(500)]
        assert all(0.7 <= s <= 1.3 for s in samples)

    def test_deterministic_under_seed(self):
        one = UniformJitter(seed=9)
        two = UniformJitter(seed=9)
        assert [one.sample() for _ in range(10)] == [two.sample() for _ in range(10)]

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            UniformJitter(spread=1.0)


class TestLognormalLatency:
    def test_positive(self):
        dist = LognormalLatency(sigma=0.8, seed=2)
        assert all(dist.sample() > 0 for _ in range(500))

    def test_heavy_tail(self):
        """The lognormal produces rare large factors a uniform cannot."""
        dist = LognormalLatency(sigma=0.8, seed=2)
        samples = [dist.sample() for _ in range(2000)]
        assert max(samples) > 3.0
        assert statistics.median(samples) == pytest.approx(1.0, abs=0.2)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LognormalLatency(sigma=0)


class TestSpikyLatency:
    def test_mostly_fast(self):
        dist = SpikyLatency(spike_probability=0.1, spike_factor=5.0, seed=3)
        samples = [dist.sample() for _ in range(1000)]
        spikes = sum(1 for s in samples if s == 5.0)
        assert 40 < spikes < 200
        assert all(s in (1.0, 5.0) for s in samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikyLatency(spike_probability=2.0)
        with pytest.raises(ValueError):
            SpikyLatency(spike_factor=-1)


class TestCostModelIntegration:
    def test_distribution_overrides_jitter(self):
        model = CostModel(latency_distribution=ConstantLatency(2.0))
        latency = model.network_latency_ms("ajax", body_bytes=0)
        assert latency == pytest.approx(model.ajax_call_ms * 2.0)

    def test_gateway_uses_distribution(self):
        clock = SimClock()
        model = CostModel(latency_distribution=ConstantLatency(1.0))
        gateway = NetworkGateway(StaticServer({"u": ""}), clock, model)
        gateway.ajax_request("GET", "u")
        assert clock.now_ms == pytest.approx(model.ajax_call_ms)

    def test_heavy_tail_spreads_crawl_times(self):
        """A spiky network widens the per-page crawl-time distribution
        (the Figure 7.3 sensitivity the latency models exist for)."""
        from repro.crawler import AjaxCrawler
        from repro.sites import SiteConfig, SyntheticYouTube

        site = SyntheticYouTube(SiteConfig(num_videos=12, seed=5))
        urls = [site.video_url(i) for i in range(12)]
        flat = AjaxCrawler(
            site, cost_model=CostModel(latency_distribution=ConstantLatency(1.0))
        ).crawl(urls)
        spiky = AjaxCrawler(
            site,
            cost_model=CostModel(
                latency_distribution=SpikyLatency(spike_probability=0.3, spike_factor=10.0)
            ),
        ).crawl(urls)
        flat_times = [p.crawl_time_ms for p in flat.report.pages]
        spiky_times = [p.crawl_time_ms for p in spiky.report.pages]
        assert statistics.pstdev(spiky_times) > statistics.pstdev(flat_times)
