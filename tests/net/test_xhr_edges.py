"""Edge-case tests for XMLHttpRequest host behaviour."""

import pytest

from repro.clock import CostModel, SimClock
from repro.js import Interpreter, UNDEFINED
from repro.net import NetworkGateway, StaticServer, make_xhr_constructor


def make_interp(pages):
    clock = SimClock()
    gateway = NetworkGateway(StaticServer(pages), clock, CostModel(network_jitter=0.0))
    interp = Interpreter()
    interp.define_global(
        "XMLHttpRequest", make_xhr_constructor(gateway, base_url="http://s/")
    )
    return interp, gateway


class TestXhrEdges:
    def test_onreadystatechange_accepted(self):
        interp, _ = make_interp({"http://s/x": "ok"})
        interp.run(
            """
            var r = new XMLHttpRequest();
            r.onreadystatechange = function () {};
            r.open('GET', 'http://s/x', true);
            r.send(null);
            """
        )

    def test_unknown_property_is_undefined(self):
        interp, _ = make_interp({})
        assert interp.run("new XMLHttpRequest().responseXML;") is UNDEFINED

    def test_unknown_property_set_raises(self):
        from repro.errors import JsTypeError

        interp, _ = make_interp({})
        with pytest.raises(JsTypeError):
            interp.run("new XMLHttpRequest().withCredentials = true;")

    def test_open_requires_two_arguments(self):
        from repro.errors import JsTypeError

        interp, _ = make_interp({})
        with pytest.raises(JsTypeError):
            interp.run("new XMLHttpRequest().open('GET');")

    def test_404_sets_status_without_raising(self):
        interp, _ = make_interp({})
        result = interp.run(
            """
            var r = new XMLHttpRequest();
            r.open('GET', 'http://s/missing', true);
            r.send(null);
            r.status;
            """
        )
        assert result == 404.0

    def test_sync_flag_accepted(self):
        interp, _ = make_interp({"http://s/x": "sync"})
        result = interp.run(
            """
            var r = new XMLHttpRequest();
            r.open('GET', 'http://s/x', false);
            r.send(null);
            r.responseText;
            """
        )
        assert result == "sync"

    def test_post_body_forwarded(self):
        from repro.net import Response
        from repro.net.server import SimulatedServer

        captured = {}

        class Echo(SimulatedServer):
            def handle(self, request):
                captured["method"] = request.method
                captured["body"] = request.body
                return Response(body="echoed")

        clock = SimClock()
        gateway = NetworkGateway(Echo(), clock, CostModel(network_jitter=0.0))
        interp = Interpreter()
        interp.define_global("XMLHttpRequest", make_xhr_constructor(gateway))
        interp.run(
            """
            var r = new XMLHttpRequest();
            r.open('POST', 'http://s/submit', true);
            r.send('q=morcheeba');
            """
        )
        assert captured == {"method": "POST", "body": "q=morcheeba"}

    def test_for_in_over_xhr_keys(self):
        interp, _ = make_interp({})
        result = interp.run(
            """
            var r = new XMLHttpRequest();
            var keys = [];
            for (var k in r) { keys.push(k); }
            keys.join(',');
            """
        )
        assert "open" in result and "send" in result
