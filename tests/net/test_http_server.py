"""Unit tests for request/response types and simulated servers."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    Request,
    Response,
    RoutedServer,
    StatelessnessChecker,
    StaticServer,
)


class TestRequest:
    def test_path_extraction(self):
        assert Request("GET", "http://x.test/watch?v=1").path == "/watch"

    def test_query_parsing(self):
        request = Request("GET", "http://x.test/c?v=abc&p=2")
        assert request.query == {"v": "abc", "p": "2"}

    def test_empty_query(self):
        assert Request("GET", "http://x.test/").query == {}


class TestResponse:
    def test_ok(self):
        assert Response(status=200).ok
        assert Response(status=204).ok
        assert not Response(status=404).ok

    def test_body_bytes(self):
        assert Response(body="abcd").body_bytes == 4
        assert Response(body="é").body_bytes == 2  # UTF-8


class TestStaticServer:
    def test_serves_registered_page(self):
        server = StaticServer({"http://x.test/a": "<p>A</p>"})
        response = server.handle(Request("GET", "http://x.test/a"))
        assert response.ok
        assert response.body == "<p>A</p>"

    def test_unknown_url_is_404(self):
        server = StaticServer()
        assert server.handle(Request("GET", "http://x.test/nope")).status == 404

    def test_add_page(self):
        server = StaticServer()
        server.add_page("http://x.test/b", "B")
        assert server.handle(Request("GET", "http://x.test/b")).body == "B"


class TestRoutedServer:
    def make(self):
        server = RoutedServer()

        @server.route(r"/watch")
        def watch(request, match):
            return Response(body=f"video {request.query.get('v', '?')}")

        @server.route(r"/comments")
        def comments(request, match):
            return Response(body=f"page {request.query.get('p', '1')}")

        return server

    def test_dispatch_by_path(self):
        server = self.make()
        assert server.handle(Request("GET", "http://y.test/watch?v=9")).body == "video 9"
        assert server.handle(Request("GET", "http://y.test/comments?p=3")).body == "page 3"

    def test_unmatched_path_is_404(self):
        assert self.make().handle(Request("GET", "http://y.test/other")).status == 404


class TestStatelessnessChecker:
    class FlakyServer(StaticServer):
        def __init__(self):
            super().__init__()
            self.counter = 0

        def handle(self, request):
            self.counter += 1
            return Response(body=f"call {self.counter}")

    def test_consistent_server_passes(self):
        checker = StatelessnessChecker(StaticServer({"u": "same"}))
        checker.handle(Request("GET", "u"))
        checker.handle(Request("GET", "u"))  # must not raise

    def test_changing_response_detected(self):
        checker = StatelessnessChecker(self.FlakyServer())
        checker.handle(Request("GET", "u"))
        with pytest.raises(NetworkError):
            checker.handle(Request("GET", "u"))

    def test_different_urls_not_conflated(self):
        checker = StatelessnessChecker(StaticServer({"a": "A", "b": "B"}))
        checker.handle(Request("GET", "a"))
        checker.handle(Request("GET", "b"))  # must not raise
