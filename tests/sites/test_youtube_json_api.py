"""The JSON-API (client-side rendering) variant of SimTube."""

import json

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler
from repro.net import Request
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def json_site():
    return SyntheticYouTube(SiteConfig(num_videos=20, seed=11, json_api=True))


@pytest.fixture(scope="module")
def html_site():
    return SyntheticYouTube(SiteConfig(num_videos=20, seed=11, json_api=False))


def cost():
    return CostModel(network_jitter=0.0)


def multi_page_index(site):
    return next(
        i for i in range(site.config.num_videos) if 3 <= site.comment_pages_of(i) <= 8
    )


class TestJsonEndpoint:
    def test_comments_endpoint_returns_json(self, json_site):
        index = multi_page_index(json_site)
        vid = json_site.corpus.video_identity(index).video_id
        response = json_site.handle(
            Request("GET", f"{json_site.config.base_url}/comments?v={vid}&p=2")
        )
        assert response.content_type == "application/json"
        payload = json.loads(response.body)
        assert payload["page"] == 2
        assert len(payload["comments"]) == 10
        assert payload["comments"][0]["text"] == json_site.comment_text(index, 2, 0)

    def test_watch_page_uses_json_script(self, json_site):
        body = json_site.handle(Request("GET", json_site.video_url(0))).body
        assert "JSON.parse" in body
        assert "renderComments" in body


class TestJsonCrawl:
    def test_crawler_discovers_same_states_as_html_variant(self, json_site, html_site):
        """Client-side rendering is invisible to the crawler: the same
        comment pages become the same number of states."""
        index = multi_page_index(json_site)
        json_result = AjaxCrawler(json_site, cost_model=cost()).crawl_page(
            json_site.video_url(index)
        )
        html_result = AjaxCrawler(html_site, cost_model=cost()).crawl_page(
            html_site.video_url(index)
        )
        assert json_result.model.num_states == html_result.model.num_states
        assert (
            json_result.model.num_transitions == html_result.model.num_transitions
        )

    def test_dedup_works_across_js_rendering(self, json_site):
        """Reaching page 1 via a JS-rendered fragment must hash equal to
        the inline initial state (the Python mirror of renderComments)."""
        index = multi_page_index(json_site)
        result = AjaxCrawler(json_site, cost_model=cost()).crawl_page(
            json_site.video_url(index)
        )
        assert result.metrics.duplicates_detected > 0
        prev_to_initial = [
            t
            for t in result.model.transitions()
            if t.event.handler == "prevPage()"
            and t.to_state == result.model.initial_state_id
        ]
        assert prev_to_initial

    def test_comment_text_indexed(self, json_site):
        from repro.search import SearchEngine

        index = multi_page_index(json_site)
        result = AjaxCrawler(json_site, cost_model=cost()).crawl_page(
            json_site.video_url(index)
        )
        engine = SearchEngine.build([result.model])
        deep_word = max(json_site.comment_text(index, 2, 0).split(), key=len)
        assert engine.search(deep_word)

    def test_hot_node_still_getUrl(self, json_site):
        index = multi_page_index(json_site)
        crawler = AjaxCrawler(json_site, cost_model=cost())
        crawler.crawl_page(json_site.video_url(index))
        assert "getUrl" in crawler.hot_cache.hot_nodes

    def test_network_calls_still_bounded(self, json_site):
        index = multi_page_index(json_site)
        pages = json_site.comment_pages_of(index)
        result = AjaxCrawler(json_site, cost_model=cost()).crawl_page(
            json_site.video_url(index)
        )
        assert result.metrics.ajax_calls <= pages
