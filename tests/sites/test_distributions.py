"""Tests for the comment-page distribution (Figure 7.1 shape)."""

from repro.sites import CommentPageDistribution


class TestCommentPageDistribution:
    def test_deterministic_per_seed(self):
        one = CommentPageDistribution(seed=5)
        two = CommentPageDistribution(seed=5)
        assert [one.pages_for(i) for i in range(50)] == [two.pages_for(i) for i in range(50)]

    def test_seed_changes_samples(self):
        one = [CommentPageDistribution(seed=1).pages_for(i) for i in range(100)]
        two = [CommentPageDistribution(seed=2).pages_for(i) for i in range(100)]
        assert one != two

    def test_bounds(self):
        dist = CommentPageDistribution(seed=3, max_pages=20)
        samples = [dist.pages_for(i) for i in range(500)]
        assert min(samples) >= 1
        assert max(samples) <= 20

    def test_mode_is_one_page(self):
        """Figure 7.1: most videos have a single comment page."""
        dist = CommentPageDistribution(seed=3)
        histogram = dist.histogram(range(2000))
        assert max(histogram, key=histogram.get) == 1
        assert histogram[1] / 2000 > 0.3

    def test_heavy_tail_exists(self):
        """Figure 7.1: enough videos have many pages to make AJAX crawling
        worthwhile."""
        dist = CommentPageDistribution(seed=3)
        samples = [dist.pages_for(i) for i in range(2000)]
        assert sum(1 for s in samples if s >= 10) > 20

    def test_mean_in_paper_regime(self):
        """YouTube10000: 41572 states / 10000 videos ~= 4.2 (with cap 11);
        the uncapped mean should sit a bit above 3."""
        mean = CommentPageDistribution(seed=3).mean_pages(2000)
        assert 2.5 < mean < 6.5

    def test_monotone_decreasing_head(self):
        dist = CommentPageDistribution(seed=3)
        histogram = dist.histogram(range(5000))
        assert histogram[1] > histogram[2] > histogram.get(3, 0)

    def test_histogram_counts_sum(self):
        dist = CommentPageDistribution(seed=3)
        histogram = dist.histogram(range(123))
        assert sum(histogram.values()) == 123
