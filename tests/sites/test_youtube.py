"""Tests for the SimTube synthetic site: structure, determinism, browsing."""

import pytest

from repro.browser import Browser
from repro.clock import CostModel
from repro.dom import parse_document
from repro.net import Request, StatelessnessChecker
from repro.sites import SiteConfig, SyntheticYouTube


@pytest.fixture(scope="module")
def site():
    return SyntheticYouTube(SiteConfig(num_videos=30, seed=11))


class TestWatchPage:
    def test_serves_watch_page(self, site):
        response = site.handle(Request("GET", site.video_url(0)))
        assert response.ok
        assert "recent_comments" in response.body

    def test_unknown_video_404(self, site):
        assert site.handle(Request("GET", f"{site.config.base_url}/watch?v=v99999")).status == 404
        assert site.handle(Request("GET", f"{site.config.base_url}/watch?v=bogus")).status == 404

    def test_title_present(self, site):
        body = site.handle(Request("GET", site.video_url(3))).body
        identity = site.corpus.video_identity(3)
        assert identity.full_title in body

    def test_first_comment_page_inline(self, site):
        body = site.handle(Request("GET", site.video_url(0))).body
        assert site.comment_text(0, 1, 0) in body

    def test_related_links_are_hyperlinks(self, site):
        doc = parse_document(site.handle(Request("GET", site.video_url(0))).body)
        related = doc.get_element_by_id("related")
        hrefs = [a.get_attribute("href") for a in related.get_elements_by_tag("a")]
        assert site.video_url(1) in hrefs  # i+1 link guarantees connectivity
        assert all(href.startswith(site.config.base_url) for href in hrefs)

    def test_page_is_deterministic(self, site):
        one = site.handle(Request("GET", site.video_url(5))).body
        two = site.handle(Request("GET", site.video_url(5))).body
        assert one == two

    def test_statelessness_assumption_holds(self, site):
        checked = StatelessnessChecker(site)
        for _ in range(3):
            checked.handle(Request("GET", site.video_url(2)))
            checked.handle(Request("GET", f"{site.config.base_url}/comments?v=v00002&p=1"))


class TestCommentsEndpoint:
    def test_valid_page(self, site):
        response = site.handle(Request("GET", f"{site.config.base_url}/comments?v=v00000&p=1"))
        assert response.ok
        assert site.comment_text(0, 1, 3) in response.body

    def test_out_of_range_page_404(self, site):
        max_page = site.comment_pages_of(0)
        url = f"{site.config.base_url}/comments?v=v00000&p={max_page + 1}"
        assert site.handle(Request("GET", url)).status == 404
        assert site.handle(Request("GET", f"{site.config.base_url}/comments?v=v00000&p=0")).status == 404

    def test_malformed_page_404(self, site):
        url = f"{site.config.base_url}/comments?v=v00000&p=abc"
        assert site.handle(Request("GET", url)).status == 404

    def test_page1_fragment_matches_inline(self, site):
        """Crucial for dedup: reaching page 1 by event == initial state."""
        fragment = site.handle(
            Request("GET", f"{site.config.base_url}/comments?v=v00000&p=1")
        ).body
        watch = site.handle(Request("GET", site.video_url(0))).body
        assert fragment in watch

    def test_nav_present_only_for_multipage_videos(self, site):
        multi = next(i for i in range(30) if site.comment_pages_of(i) >= 3)
        single = next(i for i in range(30) if site.comment_pages_of(i) == 1)
        multi_id = site.corpus.video_identity(multi).video_id
        single_id = site.corpus.video_identity(single).video_id
        multi_body = site.handle(
            Request("GET", f"{site.config.base_url}/comments?v={multi_id}&p=1")
        ).body
        single_body = site.handle(
            Request("GET", f"{site.config.base_url}/comments?v={single_id}&p=1")
        ).body
        assert "nextPage()" in multi_body
        assert "onclick" not in single_body

    def test_nav_shape_middle_page(self, site):
        multi = next(i for i in range(30) if site.comment_pages_of(i) >= 5)
        vid = site.corpus.video_identity(multi).video_id
        body = site.handle(
            Request("GET", f"{site.config.base_url}/comments?v={vid}&p=3")
        ).body
        assert "prevPage()" in body
        assert "nextPage()" in body
        assert "jumpToPage(2)" in body
        assert "jumpToPage(4)" in body
        assert "jumpToPage(3)" not in body  # current page is not a link


class TestBrowsing:
    """End-to-end: a JS browser can actually paginate SimTube comments."""

    def test_full_pagination_walk(self, site):
        multi = next(i for i in range(30) if site.comment_pages_of(i) >= 3)
        browser = Browser(site, cost_model=CostModel(network_jitter=0.0))
        page = browser.load(site.video_url(multi))
        assert site.comment_text(multi, 1, 0) in page.text
        next_event = [b for b in page.events() if b.handler == "nextPage()"][0]
        page.dispatch(next_event)
        assert site.comment_text(multi, 2, 0) in page.text
        # The nav re-rendered for page 2: a prev link appeared.
        assert any(b.handler == "prevPage()" for b in page.events())

    def test_jump_and_back_produce_same_hashes(self, site):
        multi = next(i for i in range(30) if site.comment_pages_of(i) >= 3)
        browser = Browser(site, cost_model=CostModel(network_jitter=0.0))
        page = browser.load(site.video_url(multi))
        initial = page.content_hash()
        jump2 = [b for b in page.events() if b.handler == "jumpToPage(2)"][0]
        page.dispatch(jump2)
        prev = [b for b in page.events() if b.handler == "prevPage()"][0]
        page.dispatch(prev)
        assert page.content_hash() == initial

    def test_single_page_video_has_no_events(self, site):
        single = next(i for i in range(30) if site.comment_pages_of(i) == 1)
        browser = Browser(site, cost_model=CostModel(network_jitter=0.0))
        page = browser.load(site.video_url(single))
        assert page.events() == []


class TestGroundTruthHelpers:
    def test_all_video_urls(self, site):
        urls = site.all_video_urls()
        assert len(urls) == 30
        assert urls[0].endswith("v=v00000")

    def test_related_indexes_connectivity(self, site):
        for index in range(30):
            assert (index + 1) % 30 in site.related_indexes(index)

    def test_related_excludes_self(self, site):
        for index in range(30):
            assert index not in site.related_indexes(index)
