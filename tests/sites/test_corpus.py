"""Unit tests for the text corpus and query workload."""

from repro.sites import (
    CommentCorpus,
    PAPER_QUERIES,
    build_query_workload,
    full_workload,
    paper_queries,
)


class TestQueryWorkload:
    def test_paper_queries_first(self):
        workload = build_query_workload()
        assert tuple(workload[:11]) == PAPER_QUERIES

    def test_exactly_100_queries(self):
        assert len(build_query_workload()) == 100

    def test_no_duplicates(self):
        workload = build_query_workload()
        assert len(set(workload)) == len(workload)

    def test_workload_objects(self):
        queries = full_workload()
        assert queries[0].query_id == "Q1"
        assert queries[0].text == "wow"
        assert not queries[0].is_conjunction
        assert queries[3].text == "our song"
        assert queries[3].is_conjunction
        assert queries[3].terms == ("our", "song")

    def test_paper_queries_helper(self):
        assert [q.text for q in paper_queries()] == list(PAPER_QUERIES)

    def test_workload_deterministic(self):
        assert build_query_workload() == build_query_workload()


class TestCommentCorpus:
    def test_comments_deterministic(self):
        one = CommentCorpus(seed=3)
        two = CommentCorpus(seed=3)
        assert one.comment(5, 2, 7) == two.comment(5, 2, 7)

    def test_different_slots_differ(self):
        corpus = CommentCorpus(seed=3)
        texts = {corpus.comment(1, 1, slot) for slot in range(10)}
        assert len(texts) == 10

    def test_different_seeds_differ(self):
        assert CommentCorpus(seed=1).comment(0, 1, 0) != CommentCorpus(seed=2).comment(0, 1, 0)

    def test_comment_is_nonempty_text(self):
        comment = CommentCorpus().comment(0, 1, 0)
        assert len(comment.split()) >= 5

    def test_video_identity_stable_and_distinct(self):
        corpus = CommentCorpus()
        assert corpus.video_identity(3) == corpus.video_identity(3)
        titles = {corpus.video_identity(i).full_title for i in range(200)}
        assert len(titles) == 200

    def test_identity_id_format(self):
        assert CommentCorpus().video_identity(42).video_id == "v00042"

    def test_description_mentions_band(self):
        corpus = CommentCorpus()
        identity = corpus.video_identity(0)
        assert identity.band in corpus.description(0)

    def test_query_terms_do_appear_in_corpus(self):
        """The Zipf injection must actually place query phrases in comments."""
        corpus = CommentCorpus()
        blob = " ".join(
            corpus.comment(video, page, slot)
            for video in range(20)
            for page in range(1, 3)
            for slot in range(10)
        )
        assert "wow" in blob
        assert "our song" in blob  # multiword phrases injected as units

    def test_popular_queries_more_frequent(self):
        """Rank-0 'wow' should clearly outnumber rank-10 'low' (Zipf)."""
        corpus = CommentCorpus()
        words = " ".join(
            corpus.comment(video, page, slot)
            for video in range(60)
            for page in range(1, 4)
            for slot in range(10)
        ).split()
        # Neither word is in the filler vocabulary, so all occurrences
        # come from query injection.
        assert words.count("wow") > words.count("low")
        assert words.count("wow") >= 5

    def test_authors_look_like_users(self):
        author = CommentCorpus().comment_author(0, 1, 0)
        assert author.startswith("user")
