"""SimMail tests: update-event safety (§4.3) and granularity hints."""

import json

import pytest

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.net import Request
from repro.sites import AJAX_ROBOTS_PATH, SyntheticWebmail


@pytest.fixture
def mail():
    return SyntheticWebmail()


def cost():
    return CostModel(network_jitter=0.0)


class TestServer:
    def test_mail_page_serves(self, mail):
        response = mail.handle(Request("GET", mail.inbox_url))
        assert response.ok
        assert "openFolder" in response.body

    def test_folder_endpoint(self, mail):
        response = mail.handle(Request("GET", f"{mail.base_url}/folder?name=spam"))
        assert "urgent business proposal" in response.body

    def test_unknown_folder_404(self, mail):
        assert mail.handle(Request("GET", f"{mail.base_url}/folder?name=x")).status == 404

    def test_delete_endpoint_mutates_state(self, mail):
        assert mail.delete_count == 0
        mail.handle(Request("GET", f"{mail.base_url}/delete?folder=inbox&i=0"))
        assert mail.delete_count == 1
        body = mail.handle(Request("GET", f"{mail.base_url}/folder?name=inbox")).body
        assert "lunch tomorrow" not in body

    def test_granularity_hint_served(self, mail):
        response = mail.handle(Request("GET", mail.base_url + AJAX_ROBOTS_PATH))
        assert response.ok
        assert json.loads(response.body) == {"max_states": 5}


class TestUpdateEventGuard:
    def test_crawler_never_deletes_mail(self, mail):
        """The §4.3 hazard: crawling an inbox must not destroy messages."""
        crawler = AjaxCrawler(mail, cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        assert mail.delete_count == 0
        assert result.metrics.update_events_skipped > 0

    def test_folder_states_still_crawled(self, mail):
        crawler = AjaxCrawler(mail, cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        texts = [state.text for state in result.model.states()]
        assert any("nightly build" in t for t in texts)  # inbox
        assert any("old invoice" in t for t in texts)  # archive
        assert any("urgent business" in t for t in texts)  # spam

    def test_guard_disabled_fires_deletes(self):
        """Without the guard the crawler destroys the mailbox — the
        exact behaviour the thesis rules out."""
        mail = SyntheticWebmail(max_states_hint=50)
        config = CrawlerConfig(update_event_patterns=())
        crawler = AjaxCrawler(mail, config, cost_model=cost())
        crawler.crawl_page(mail.inbox_url)
        assert mail.delete_count > 0

    def test_custom_patterns(self, mail):
        config = CrawlerConfig(update_event_patterns=("openfolder",))
        crawler = AjaxCrawler(mail, config, cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        # With folder-opening treated as destructive nothing is crawled
        # beyond the initial state (but deletes now fire!).
        assert all("openFolder" not in t.event.handler for t in result.model.transitions())


class TestGranularityHints:
    def test_hint_caps_states(self):
        mail = SyntheticWebmail(max_states_hint=2)
        crawler = AjaxCrawler(mail, CrawlerConfig(max_additional_states=10), cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        assert result.model.num_states <= 2

    def test_hint_cannot_raise_cap(self):
        mail = SyntheticWebmail(max_states_hint=99)
        crawler = AjaxCrawler(mail, CrawlerConfig(max_additional_states=1), cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        assert result.model.num_states <= 2  # config cap (1+1) wins

    def test_hint_ignorable(self):
        mail = SyntheticWebmail(max_states_hint=1)
        config = CrawlerConfig(respect_granularity_hints=False)
        crawler = AjaxCrawler(mail, config, cost_model=cost())
        result = crawler.crawl_page(mail.inbox_url)
        assert result.model.num_states == 3  # all folders

    def test_site_without_hint_uses_config(self):
        from repro.sites import SiteConfig, SyntheticYouTube

        site = SyntheticYouTube(SiteConfig(num_videos=5, seed=3))
        crawler = AjaxCrawler(site, cost_model=cost())
        result = crawler.crawl_page(site.video_url(0))
        assert result.model.num_states >= 1  # SimTube serves no hint: no crash

    def test_hint_cached_per_origin(self):
        mail = SyntheticWebmail(max_states_hint=4)
        crawler = AjaxCrawler(mail, cost_model=cost())
        crawler.crawl_page(mail.inbox_url)
        crawler.crawl_page(mail.inbox_url)
        assert crawler._hint_cache == {mail.base_url: 4}
