"""Deterministic text corpus for the synthetic YouTube site.

The thesis crawls real 2008 YouTube comment pages.  We generate a
statistically similar corpus: user comments built from a filler
vocabulary, seeded with popular query phrases (Table 7.4) following a
Zipf-like popularity curve, plus video titles referencing band/topic
names so the "Morcheeba mysterious video" style of cross-state
conjunctive query (section 1.1) is answerable.

Everything is keyed by ``(seed, video, page, slot)``, so any comment can
be regenerated independently and the whole corpus is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Query phrases of Table 7.4, in the paper's popularity order.
PAPER_QUERIES = (
    "wow",
    "dance",
    "funny",
    "our song",
    "sexy can i",
    "american idol",
    "kiss",
    "fight",
    "no air",
    "chris brown",
    "low",
)

#: Additional topical words used to synthesize the rest of the
#: 100-query workload and to flavour comments.
TOPICAL_WORDS = (
    "music", "video", "song", "live", "concert", "cover", "remix", "album",
    "band", "singer", "guitar", "drums", "piano", "voice", "lyrics",
    "amazing", "awesome", "beautiful", "epic", "classic", "legend",
    "tutorial", "trailer", "movie", "game", "goal", "match", "skate",
    "prank", "fail", "cute", "cat", "dog", "baby", "laugh",
    "mysterious", "ride", "enjoy",
)

#: Filler vocabulary for comment bodies.
FILLER_WORDS = (
    "the", "this", "that", "it", "is", "was", "so", "and", "but", "just",
    "really", "very", "totally", "super", "never", "always", "again",
    "here", "there", "when", "who", "what", "why", "how", "love", "like",
    "hate", "watch", "watched", "watching", "listen", "heard", "saw",
    "first", "best", "worst", "great", "good", "bad", "cool", "nice",
    "time", "times", "day", "night", "year", "please", "thanks", "check",
    "out", "new", "old", "one", "two", "three", "every", "people",
    "friend", "everyone", "nobody", "favorite", "comment", "page",
    "part", "second", "minute", "beginning", "end", "middle", "full",
    "version", "quality", "sound", "better", "think", "know", "remember",
    "forgot", "still", "cannot", "believe", "true", "real", "fake",
    "original", "official", "channel", "subscribe", "posted", "upload",
)

#: Band/artist names for video titles.
BAND_NAMES = (
    "Morcheeba", "Nightcrawlers", "Velvet Echo", "Glass Harbor",
    "Paper Lions", "Static Bloom", "Neon Delta", "Crimson Tide",
    "Silver Arcade", "Hollow Pines", "Electric Fern", "Golden Static",
)

#: Song/topic names for video titles.
TITLE_PHRASES = (
    "Enjoy the Ride", "Midnight Run", "Paper Planes", "Silent Storm",
    "Falling Slowly", "Northern Lights", "Echoes of Summer",
    "Broken Compass", "City of Glass", "Last Train Home",
    "Waves and Wires", "Slow Motion",
)


def build_query_workload(count: int = 100) -> list[str]:
    """The evaluation's query set: the 11 paper queries first, padded
    with synthetic single-word and two-word queries up to ``count``."""
    queries = list(PAPER_QUERIES)
    rng = random.Random(0xC0FFEE)
    pool = list(TOPICAL_WORDS)
    while len(queries) < count:
        if rng.random() < 0.6:
            candidate = rng.choice(pool)
        else:
            candidate = f"{rng.choice(pool)} {rng.choice(pool)}"
        if candidate not in queries:
            queries.append(candidate)
    return queries[:count]


@dataclass(frozen=True)
class VideoIdentity:
    """Stable title/description metadata for one video."""

    video_id: str
    band: str
    title: str

    @property
    def full_title(self) -> str:
        return f"{self.band} - {self.title}"


class CommentCorpus:
    """Generates titles, descriptions and comments deterministically."""

    def __init__(self, seed: int = 7, words_per_comment: tuple[int, int] = (8, 18)) -> None:
        self.seed = seed
        self.words_per_comment = words_per_comment
        self.queries = build_query_workload()

    # -- metadata -------------------------------------------------------------

    def video_identity(self, index: int) -> VideoIdentity:
        rng = self._rng("identity", index)
        band = BAND_NAMES[index % len(BAND_NAMES)]
        title = TITLE_PHRASES[(index // len(BAND_NAMES)) % len(TITLE_PHRASES)]
        suffix = f" {rng.randint(2, 99)}" if index >= len(BAND_NAMES) * len(TITLE_PHRASES) else ""
        return VideoIdentity(
            video_id=f"v{index:05d}",
            band=band,
            title=title + suffix,
        )

    def description(self, index: int) -> str:
        identity = self.video_identity(index)
        rng = self._rng("description", index)
        extras = " ".join(rng.choice(TOPICAL_WORDS) for _ in range(6))
        return (
            f"Official video of {identity.band} performing {identity.title}. "
            f"{extras}."
        )

    # -- comments --------------------------------------------------------------

    def comment(self, video_index: int, page: int, slot: int) -> str:
        """The text of comment ``slot`` on comment page ``page``."""
        rng = self._rng("comment", video_index, page, slot)
        low, high = self.words_per_comment
        words = [rng.choice(FILLER_WORDS) for _ in range(rng.randint(low, high))]
        # Zipf-weighted query phrase injection: rank-k query appears with
        # probability proportional to 1/(k+1), ~35% of comments carry one.
        if rng.random() < 0.35:
            rank = self._zipf_rank(rng, len(self.queries))
            position = rng.randrange(len(words) + 1)
            words[position:position] = self.queries[rank].split()
        # Occasionally reference the video itself (band name / title words),
        # enabling conjunctions of static and AJAX content (query Q2/Q3).
        if rng.random() < 0.10:
            identity = self.video_identity(video_index)
            words.insert(0, identity.band.lower())
        if rng.random() < 0.05:
            words.append("mysterious")
            words.append("video")
        return " ".join(words)

    def comment_author(self, video_index: int, page: int, slot: int) -> str:
        rng = self._rng("author", video_index, page, slot)
        return f"user{rng.randint(1, 99999)}"

    # -- internals ----------------------------------------------------------------

    def _rng(self, *key: object) -> random.Random:
        material = "|".join(str(part) for part in (self.seed, *key))
        return random.Random(material)

    @staticmethod
    def _zipf_rank(rng: random.Random, size: int) -> int:
        weights = [1.0 / (rank + 1) for rank in range(size)]
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        for rank, weight in enumerate(weights):
            cumulative += weight
            if pick <= cumulative:
                return rank
        return size - 1
