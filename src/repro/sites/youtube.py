"""The synthetic YouTube-like AJAX application ("SimTube").

This is the experiment substrate: a deterministic
:class:`~repro.net.server.SimulatedServer` that mirrors the structure of
the 2008 YouTube watch page the thesis crawled (section 1.1):

* a watch page per video at ``/watch?v=<id>`` containing the title,
  description, related-video hyperlinks and the **first** page of
  comments inline (what a JavaScript-less browser sees);
* a comment pagination UI whose next/prev/jump links are JavaScript
  events, re-rendered inside the AJAX fragment for every comment page;
* one AJAX endpoint ``/comments?v=<id>&p=<n>`` returning the comment
  fragment for page ``n`` — fetched by a single script function
  ``getUrl``, the page's one **hot node** (Table 4.2/4.3).

Every byte of HTML is a pure function of ``(seed, video, page)``, so the
server is trivially stateless (assumption §4.3) and the corpus is
reproducible across processes — which the parallel crawler relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.http import Request, Response, not_found
from repro.net.server import SimulatedServer
from repro.sites.corpus import CommentCorpus, VideoIdentity
from repro.sites.distributions import CommentPageDistribution

#: How many comments one comment page carries (YouTube showed 10).
COMMENTS_PER_PAGE = 10

#: Jump links shown around the current page (YouTube showed a few).
JUMP_WINDOW = 2

PAGE_SCRIPT_TEMPLATE = """
var currentPage = 1;
var maxPage = {max_page};
function showLoading(div_id) {{
    var d = document.getElementById(div_id);
}}
function urchinTracker(path) {{
}}
function getUrl(url, async) {{
    var req = new XMLHttpRequest();
    req.open("GET", url, async);
    req.send(null);
    return req.responseText;
}}
function getUrlXMLResponseAndFillDiv(url, div_id) {{
    var response = getUrl(url, true);
    var div = document.getElementById(div_id);
    div.innerHTML = response;
}}
function showPage(p) {{
    if (p < 1) {{ p = 1; }}
    if (p > maxPage) {{ p = maxPage; }}
    currentPage = p;
    showLoading('recent_comments');
    getUrlXMLResponseAndFillDiv('/comments?v={video_id}&p=' + p, 'recent_comments');
    urchinTracker('/watch?v={video_id}&p=' + p);
}}
function nextPage() {{ showPage(currentPage + 1); }}
function prevPage() {{ showPage(currentPage - 1); }}
function jumpToPage(p) {{ showPage(p); }}
function init() {{ currentPage = 1; }}
function highlightComments() {{
    var div = document.getElementById('recent_comments');
    div.style.backgroundColor = '#ffffcc';
}}
"""

#: Script used when the site runs in JSON-API mode: the fragment markup
#: is built client-side from a JSON payload (post-2008 AJAX style).
PAGE_SCRIPT_JSON_TEMPLATE = """
var currentPage = 1;
var maxPage = {max_page};
function showLoading(div_id) {{
}}
function urchinTracker(path) {{
}}
function getUrl(url, async) {{
    var req = new XMLHttpRequest();
    req.open("GET", url, async);
    req.send(null);
    return req.responseText;
}}
function renderNav(page, max) {{
    if (max <= 1) {{ return ''; }}
    var parts = [];
    if (page > 1) {{
        parts.push('<a id="prev" onclick="prevPage()">previous</a>');
    }}
    var lo = page - {jump_window}; if (lo < 1) {{ lo = 1; }}
    var hi = page + {jump_window}; if (hi > max) {{ hi = max; }}
    for (var t = lo; t <= hi; t++) {{
        if (t == page) {{
            parts.push('<span>' + t + '</span>');
        }} else {{
            parts.push('<a id="page' + t + '" onclick="jumpToPage(' + t + ')">' + t + '</a>');
        }}
    }}
    if (page < max) {{
        parts.push('<a id="next" onclick="nextPage()">next</a>');
    }}
    return parts.join(' ');
}}
function renderComments(data) {{
    var items = data.comments.map(function (c) {{
        return '<li><b>' + c.author + '</b>: ' + c.text + '</li>';
    }});
    return '<ol class="comment-list" start="' + data.start + '">'
        + items.join('') + '</ol>'
        + '<div id="comment_nav">' + renderNav(data.page, data.max_page) + '</div>';
}}
function showPage(p) {{
    if (p < 1) {{ p = 1; }}
    if (p > maxPage) {{ p = maxPage; }}
    currentPage = p;
    showLoading('recent_comments');
    var data = JSON.parse(getUrl('/comments?v={video_id}&p=' + p, true));
    document.getElementById('recent_comments').innerHTML = renderComments(data);
    urchinTracker('/watch?v={video_id}&p=' + p);
}}
function nextPage() {{ showPage(currentPage + 1); }}
function prevPage() {{ showPage(currentPage - 1); }}
function jumpToPage(p) {{ showPage(p); }}
function init() {{ currentPage = 1; }}
"""


@dataclass(frozen=True)
class SiteConfig:
    """Shape of the generated site."""

    num_videos: int = 100
    seed: int = 7
    base_url: str = "http://simtube.test"
    related_links: int = 4
    comments_per_page: int = COMMENTS_PER_PAGE
    jump_window: int = JUMP_WINDOW
    #: When True, comment fragments carry a decorative ``onmouseover``
    #: that changes styling only (no DOM mutation) — one of the thesis'
    #: "very granular events" that waste crawl effort and that the
    #: incremental recrawler learns to skip.
    decorative_events: bool = False
    #: When True the comments endpoint returns JSON and the page script
    #: renders the HTML client-side (the post-2008 AJAX style).  The
    #: crawler needs no changes: states, events and hot nodes are
    #: identical in structure.
    json_api: bool = False


class SyntheticYouTube(SimulatedServer):
    """The SimTube server: watch pages plus an AJAX comments endpoint."""

    def __init__(self, config: SiteConfig | None = None) -> None:
        self.config = config or SiteConfig()
        self.corpus = CommentCorpus(seed=self.config.seed)
        self.distribution = CommentPageDistribution(seed=self.config.seed)

    # -- public helpers ----------------------------------------------------------

    def video_url(self, index: int) -> str:
        """Absolute URL of video ``index``'s watch page."""
        identity = self.corpus.video_identity(index)
        return f"{self.config.base_url}/watch?v={identity.video_id}"

    def all_video_urls(self) -> list[str]:
        return [self.video_url(i) for i in range(self.config.num_videos)]

    def comment_pages_of(self, index: int) -> int:
        """Ground truth: number of comment pages of video ``index``."""
        return self.distribution.pages_for(index)

    def related_indexes(self, index: int) -> list[int]:
        """Ground-truth hyperlink targets of video ``index``.

        Always includes ``index + 1`` so a breadth-first precrawl from
        video 0 discovers every video; the rest spread pseudo-randomly.
        """
        count = self.config.num_videos
        if count <= 1:
            return []
        related = [(index + 1) % count]
        for step in range(2, self.config.related_links + 1):
            candidate = (index * 31 + step * 17 + 7) % count
            if candidate != index and candidate not in related:
                related.append(candidate)
        return related

    def comment_text(self, index: int, page: int, slot: int) -> str:
        """Ground-truth comment body (used by tests and oracles)."""
        return self.corpus.comment(index, page, slot)

    # -- server interface -----------------------------------------------------------

    def handle(self, request: Request) -> Response:
        if request.path == "/watch":
            return self._handle_watch(request)
        if request.path == "/comments":
            return self._handle_comments(request)
        return not_found(request.url)

    # -- watch page -------------------------------------------------------------------

    def _handle_watch(self, request: Request) -> Response:
        index = self._index_for(request.query.get("v", ""))
        if index is None:
            return not_found(request.url)
        return Response(body=self._render_watch(index))

    def _index_for(self, video_id: str) -> int | None:
        if not video_id.startswith("v"):
            return None
        try:
            index = int(video_id[1:])
        except ValueError:
            return None
        if 0 <= index < self.config.num_videos:
            return index
        return None

    def _render_watch(self, index: int) -> str:
        identity = self.corpus.video_identity(index)
        max_page = self.comment_pages_of(index)
        if self.config.json_api:
            script = PAGE_SCRIPT_JSON_TEMPLATE.format(
                max_page=max_page,
                video_id=identity.video_id,
                jump_window=self.config.jump_window,
            )
        else:
            script = PAGE_SCRIPT_TEMPLATE.format(
                max_page=max_page, video_id=identity.video_id
            )
        related = "\n".join(
            f'<li><a href="{self.video_url(target)}">'
            f"{self.corpus.video_identity(target).full_title}</a></li>"
            for target in self.related_indexes(index)
        )
        first_fragment = self._render_fragment(index, page=1)
        return f"""<html>
<head><title>{identity.full_title} - SimTube</title></head>
<body onload="init()">
<h1 id="video_title">{identity.full_title}</h1>
<div id="description">{self.corpus.description(index)}</div>
<div id="recent_comments">{first_fragment}</div>
<div id="related"><ul>
{related}
</ul></div>
<script type="text/javascript">{script}</script>
</body>
</html>"""

    # -- comments endpoint ---------------------------------------------------------------

    def _handle_comments(self, request: Request) -> Response:
        index = self._index_for(request.query.get("v", ""))
        if index is None:
            return not_found(request.url)
        try:
            page = int(request.query.get("p", "1"))
        except ValueError:
            return not_found(request.url)
        if not 1 <= page <= self.comment_pages_of(index):
            return not_found(request.url)
        if self.config.json_api:
            return Response(
                body=self._render_json_payload(index, page),
                content_type="application/json",
            )
        return Response(body=self._render_fragment(index, page))

    def _render_json_payload(self, index: int, page: int) -> str:
        """The JSON-API response for one comment page."""
        import json

        return json.dumps(
            {
                "page": page,
                "max_page": self.comment_pages_of(index),
                "start": (page - 1) * self.config.comments_per_page + 1,
                "comments": [
                    {
                        "author": self.corpus.comment_author(index, page, slot),
                        "text": self.corpus.comment(index, page, slot),
                    }
                    for slot in range(self.config.comments_per_page)
                ],
            }
        )

    def _render_fragment_json_style(self, index: int, page: int) -> str:
        """Python mirror of the client-side ``renderComments`` output, so
        the inline page-1 markup hashes identically to the JS-built one."""
        items = "".join(
            f"<li><b>{self.corpus.comment_author(index, page, slot)}</b>: "
            f"{self.corpus.comment(index, page, slot)}</li>"
            for slot in range(self.config.comments_per_page)
        )
        start = (page - 1) * self.config.comments_per_page + 1
        return (
            f'<ol class="comment-list" start="{start}">{items}</ol>'
            f'<div id="comment_nav">{self._render_nav(index, page)}</div>'
        )

    def _render_fragment(self, index: int, page: int) -> str:
        """The AJAX fragment: comments of ``page`` plus its pagination UI.

        Page 1's fragment is byte-identical to the markup inlined in the
        watch page, so reaching page 1 through an event produces the
        same state hash as the initial state (duplicate elimination).
        """
        if self.config.json_api:
            return self._render_fragment_json_style(index, page)
        comments = "\n".join(
            f'<li><b>{self.corpus.comment_author(index, page, slot)}</b>: '
            f"{self.corpus.comment(index, page, slot)}</li>"
            for slot in range(self.config.comments_per_page)
        )
        decorative = (
            ' onmouseover="highlightComments()"' if self.config.decorative_events else ""
        )
        return (
            f'<ol class="comment-list"{decorative} '
            f'start="{(page - 1) * self.config.comments_per_page + 1}">\n'
            f"{comments}\n</ol>\n"
            f'<div id="comment_nav">{self._render_nav(index, page)}</div>'
        )

    def _render_nav(self, index: int, page: int) -> str:
        max_page = self.comment_pages_of(index)
        if max_page <= 1:
            return ""
        parts: list[str] = []
        if page > 1:
            parts.append('<a id="prev" onclick="prevPage()">previous</a>')
        window = self.config.jump_window
        for target in range(max(1, page - window), min(max_page, page + window) + 1):
            if target == page:
                parts.append(f"<span>{target}</span>")
            else:
                parts.append(
                    f'<a id="page{target}" onclick="jumpToPage({target})">{target}</a>'
                )
        if page < max_page:
            parts.append('<a id="next" onclick="nextPage()">next</a>')
        return " ".join(parts)


def video_identity_of(server: SyntheticYouTube, index: int) -> VideoIdentity:
    """Convenience accessor for a video's identity."""
    return server.corpus.video_identity(index)
