"""Comment-page-count distribution.

Figure 7.1 of the thesis shows the distribution of YouTube videos per
number of comment pages: most videos have a single page, with a long
heavy tail.  The fitted mixture below reproduces that shape — mode at 1,
mean around 4 pages — which in turn drives the state/event growth curves
of Figure 7.2.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Iterable

#: Head of the distribution: explicit probabilities for 1..5 pages.
_HEAD = {1: 0.42, 2: 0.16, 3: 0.10, 4: 0.07, 5: 0.05}
#: The remaining mass follows a geometric tail from 6 pages on.
_TAIL_START = 6
_TAIL_DECAY = 0.82
_MAX_PAGES = 40


class CommentPageDistribution:
    """Samples "number of comment pages" for videos, deterministically."""

    def __init__(self, seed: int = 7, max_pages: int = _MAX_PAGES) -> None:
        self.seed = seed
        self.max_pages = max_pages
        self._weights = self._build_weights(max_pages)

    @staticmethod
    def _build_weights(max_pages: int) -> list[float]:
        weights = [0.0] * (max_pages + 1)
        for pages, probability in _HEAD.items():
            if pages <= max_pages:
                weights[pages] = probability
        tail_mass = 1.0 - sum(weights)
        raw_tail = [
            _TAIL_DECAY ** (pages - _TAIL_START)
            for pages in range(_TAIL_START, max_pages + 1)
        ]
        scale = tail_mass / sum(raw_tail) if raw_tail else 0.0
        for offset, raw in enumerate(raw_tail):
            weights[_TAIL_START + offset] = raw * scale
        return weights

    def pages_for(self, video_index: int) -> int:
        """Comment-page count of video ``video_index`` (stable per seed)."""
        rng = random.Random(f"{self.seed}|pages|{video_index}")
        pick = rng.random()
        cumulative = 0.0
        for pages in range(1, self.max_pages + 1):
            cumulative += self._weights[pages]
            if pick <= cumulative:
                return pages
        return self.max_pages

    def histogram(self, video_indexes: Iterable[int]) -> dict[int, int]:
        """#videos per page count — the data series of Figure 7.1."""
        return dict(sorted(Counter(self.pages_for(i) for i in video_indexes).items()))

    def mean_pages(self, count: int) -> float:
        """Empirical mean page count over the first ``count`` videos."""
        if count <= 0:
            return 0.0
        return sum(self.pages_for(i) for i in range(count)) / count
