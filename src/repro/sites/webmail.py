"""A webmail-like AJAX application ("SimMail").

Section 4.3 of the thesis warns that a naive event crawler pointed at an
authenticated GMail/Yahoo! Mail "could mean deleting E-mails from the
user's Inbox".  SimMail exists to exercise exactly that hazard: it is a
folder-tabbed inbox whose folders load via AJAX **and whose messages
carry Delete buttons that really mutate server state**.

A correct crawler must (a) enumerate the folder events and (b) *refuse*
to fire the destructive ones — the ``update_event_patterns`` guard of
:class:`~repro.crawler.config.CrawlerConfig`.  The server counts every
delete so tests can prove no message was harmed.

SimMail also serves the crawl-granularity hint file the thesis predicts
("we predict that in the future, AJAX Web Sites will provide a
robots.txt file with information on the possible granularity of search
on their pages", §4.3): ``/ajax-robots.json`` with a per-site
``max_states`` limit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.net.http import Request, Response, not_found
from repro.net.server import SimulatedServer

#: Path of the granularity-hint file (the thesis' predicted robots.txt).
AJAX_ROBOTS_PATH = "/ajax-robots.json"

_FOLDERS = ("inbox", "archive", "spam")

_SUBJECTS = {
    "inbox": [
        ("alice", "lunch tomorrow at noon"),
        ("build-bot", "nightly build succeeded on all platforms"),
        ("carol", "quarterly report draft attached"),
    ],
    "archive": [
        ("dave", "old invoice from january"),
        ("eve", "conference travel reimbursement approved"),
    ],
    "spam": [
        ("prince", "urgent business proposal millions waiting"),
    ],
}


@dataclass
class MailboxState:
    """Mutable server-side mailbox (so deletes are observable)."""

    deleted: list[tuple[str, int]]

    def delete(self, folder: str, index: int) -> None:
        self.deleted.append((folder, index))


class SyntheticWebmail(SimulatedServer):
    """SimMail: AJAX folders + destructive delete buttons."""

    def __init__(self, base_url: str = "http://simmail.test", max_states_hint: int = 5):
        self.base_url = base_url
        self.max_states_hint = max_states_hint
        self.mailbox = MailboxState(deleted=[])

    @property
    def inbox_url(self) -> str:
        return f"{self.base_url}/mail"

    @property
    def delete_count(self) -> int:
        """How many messages crawlers have destroyed so far."""
        return len(self.mailbox.deleted)

    # -- server interface --------------------------------------------------------

    def handle(self, request: Request) -> Response:
        if request.path == "/mail":
            return Response(body=self._render_mail_page())
        if request.path == "/folder":
            return self._handle_folder(request)
        if request.path == "/delete":
            return self._handle_delete(request)
        if request.path == AJAX_ROBOTS_PATH:
            return Response(
                body=json.dumps({"max_states": self.max_states_hint}),
                content_type="application/json",
            )
        return not_found(request.url)

    def _handle_folder(self, request: Request) -> Response:
        folder = request.query.get("name", "")
        if folder not in _FOLDERS:
            return not_found(request.url)
        return Response(body=self._render_folder(folder))

    def _handle_delete(self, request: Request) -> Response:
        folder = request.query.get("folder", "inbox")
        index = int(request.query.get("i", "0"))
        self.mailbox.delete(folder, index)
        return Response(body=self._render_folder(folder))

    # -- rendering -----------------------------------------------------------------

    def _render_folder(self, folder: str) -> str:
        messages = _SUBJECTS[folder]
        alive = [
            (i, sender, subject)
            for i, (sender, subject) in enumerate(messages)
            if (folder, i) not in self.mailbox.deleted
        ]
        rows = "\n".join(
            f"<li>{sender}: {subject} "
            f'<a id="del-{folder}-{i}" onclick="deleteMessage(\'{folder}\', {i})">'
            "delete</a></li>"
            for i, sender, subject in alive
        )
        return f"<h2>{folder}</h2>\n<ul>\n{rows}\n</ul>"

    def _render_mail_page(self) -> str:
        tabs = "\n".join(
            f'<a id="tab-{folder}" onclick="openFolder(\'{folder}\')">{folder}</a>'
            for folder in _FOLDERS
        )
        return f"""<html>
<head><title>SimMail</title></head>
<body onload="openFolder('inbox')">
<h1>SimMail</h1>
<div id="tabs">{tabs}</div>
<div id="messages">loading...</div>
<script>
function fetchUrl(url) {{
    var req = new XMLHttpRequest();
    req.open("GET", url, true);
    req.send(null);
    return req.responseText;
}}
function openFolder(name) {{
    document.getElementById("messages").innerHTML = fetchUrl("/folder?name=" + name);
}}
function deleteMessage(folder, i) {{
    document.getElementById("messages").innerHTML =
        fetchUrl("/delete?folder=" + folder + "&i=" + i);
}}
</script>
</body>
</html>"""
