"""A Google-Suggest-like AJAX application ("SimSuggest").

Section 4.3 names Google Suggest as the canonical *forms* AJAX app the
basic crawler cannot handle: content appears only after the user types
into an input field.  SimSuggest reproduces that structure — a search
box whose ``onkeyup`` fetches prefix completions over XMLHttpRequest —
as the substrate for the form-filling crawler extension.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.http import Request, Response, not_found
from repro.net.server import SimulatedServer

#: The default completion vocabulary (topical, overlaps the workload).
DEFAULT_VOCABULARY = (
    "dance music", "dance tutorial", "dance battle",
    "funny cats", "funny fails", "funny babies",
    "american idol", "american football",
    "chris brown", "chris rock",
    "wow gameplay", "wow guide",
)

PAGE = """<html>
<head><title>SimSuggest</title></head>
<body>
<h1>SimSuggest</h1>
<input id="q" type="text" onkeyup="suggest()">
<div id="suggestions">type to search</div>
<script>
function fetchSuggestions(prefix) {
    var req = new XMLHttpRequest();
    req.open("GET", "/suggest?q=" + encodeURIComponent(prefix), true);
    req.send(null);
    return req.responseText;
}
function suggest() {
    var box = document.getElementById("q");
    document.getElementById("suggestions").innerHTML = fetchSuggestions(box.value);
}
</script>
</body>
</html>"""


class SyntheticSuggest(SimulatedServer):
    """SimSuggest: prefix completion behind a form input."""

    def __init__(
        self,
        vocabulary: Sequence[str] = DEFAULT_VOCABULARY,
        base_url: str = "http://simsuggest.test",
    ) -> None:
        self.vocabulary = tuple(vocabulary)
        self.base_url = base_url

    @property
    def search_url(self) -> str:
        return f"{self.base_url}/search"

    def completions_for(self, prefix: str) -> list[str]:
        """Ground truth: completions for ``prefix`` (case-insensitive)."""
        prefix = prefix.lower()
        if not prefix:
            return []
        return [term for term in self.vocabulary if term.lower().startswith(prefix)]

    def handle(self, request: Request) -> Response:
        if request.path == "/search":
            return Response(body=PAGE)
        if request.path == "/suggest":
            prefix = request.query.get("q", "")
            completions = self.completions_for(prefix)
            if not completions:
                return Response(body="<p>no suggestions</p>")
            items = "\n".join(f"<li>{term}</li>" for term in completions)
            return Response(body=f"<ul>\n{items}\n</ul>")
        return not_found(request.url)
