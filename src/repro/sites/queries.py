"""The evaluation query workload (section 7.5.1, Table 7.4).

The thesis takes the 100 most popular YouTube queries.  We reuse its
published sample (the 11 queries of Table 7.4) verbatim and synthesize
the remainder from the site's topical vocabulary so that the workload
exercises both single keywords and conjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sites.corpus import PAPER_QUERIES, build_query_workload


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of the evaluation workload."""

    query_id: str
    text: str

    @property
    def terms(self) -> tuple[str, ...]:
        return tuple(self.text.split())

    @property
    def is_conjunction(self) -> bool:
        return len(self.terms) > 1


def paper_queries() -> list[WorkloadQuery]:
    """The 11 queries listed in Table 7.4, ids Q1..Q11."""
    return [
        WorkloadQuery(query_id=f"Q{rank + 1}", text=text)
        for rank, text in enumerate(PAPER_QUERIES)
    ]


def full_workload(count: int = 100) -> list[WorkloadQuery]:
    """The full evaluation workload (paper queries first)."""
    return [
        WorkloadQuery(query_id=f"Q{rank + 1}", text=text)
        for rank, text in enumerate(build_query_workload(count))
    ]
