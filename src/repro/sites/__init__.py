"""Synthetic AJAX web sites used as experiment substrate.

The flagship site is :class:`~repro.sites.youtube.SyntheticYouTube`
("SimTube"), a deterministic stand-in for the YouTube subset the thesis
crawled.  See DESIGN.md §2 for why this substitution preserves the
behaviour the experiments measure.
"""

from repro.sites.corpus import (
    CommentCorpus,
    PAPER_QUERIES,
    VideoIdentity,
    build_query_workload,
)
from repro.sites.distributions import CommentPageDistribution
from repro.sites.queries import WorkloadQuery, full_workload, paper_queries
from repro.sites.suggest import SyntheticSuggest
from repro.sites.webmail import AJAX_ROBOTS_PATH, SyntheticWebmail
from repro.sites.youtube import (
    COMMENTS_PER_PAGE,
    SiteConfig,
    SyntheticYouTube,
)

__all__ = [
    "CommentCorpus",
    "PAPER_QUERIES",
    "VideoIdentity",
    "build_query_workload",
    "CommentPageDistribution",
    "WorkloadQuery",
    "full_workload",
    "paper_queries",
    "SiteConfig",
    "SyntheticYouTube",
    "COMMENTS_PER_PAGE",
    "SyntheticWebmail",
    "AJAX_ROBOTS_PATH",
    "SyntheticSuggest",
]
