"""The AJAX page model: a transition graph per URL (chapter 2).

One :class:`ApplicationModel` holds all states reached on one AJAX page,
the transitions (events) connecting them, and the bookkeeping for
duplicate elimination.  It supports:

* hash-based state identity (``contains``/``resolve``),
* breadth-first event-path extraction for result aggregation (§5.4),
* JSON round-tripping (the thesis serialized models to disk between the
  crawling and indexing phases, §6.3.2).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import CrawlerError
from repro.model.state import State
from repro.model.transition import EventAnnotation, Transition


class ApplicationModel:
    """The transition graph of one AJAX page."""

    def __init__(self, url: str) -> None:
        self.url = url
        self._states: dict[str, State] = {}
        self._by_hash: dict[str, str] = {}
        self._transitions: list[Transition] = []
        self._outgoing: dict[str, list[Transition]] = {}
        self.initial_state_id: Optional[str] = None

    # -- states -------------------------------------------------------------------

    def add_state(
        self,
        content_hash: str,
        text: str,
        html: Optional[str] = None,
        depth: int = 0,
    ) -> tuple[State, bool]:
        """Add (or resolve) a state by content hash.

        Returns ``(state, created)``: when a state with the same hash
        already exists it is returned with ``created=False`` — this is
        the duplicate elimination of section 3.2.
        """
        existing_id = self._by_hash.get(content_hash)
        if existing_id is not None:
            return self._states[existing_id], False
        state = State(
            state_id=f"s{len(self._states)}",
            content_hash=content_hash,
            text=text,
            html=html,
            depth=depth,
        )
        self._states[state.state_id] = state
        self._by_hash[content_hash] = state.state_id
        if self.initial_state_id is None:
            self.initial_state_id = state.state_id
        return state, True

    def contains_hash(self, content_hash: str) -> bool:
        """Whether a state with this content already exists."""
        return content_hash in self._by_hash

    def resolve_hash(self, content_hash: str) -> Optional[State]:
        """The state with this content hash, if any."""
        state_id = self._by_hash.get(content_hash)
        return self._states[state_id] if state_id is not None else None

    def get_state(self, state_id: str) -> State:
        try:
            return self._states[state_id]
        except KeyError:
            raise CrawlerError(f"unknown state {state_id!r} in model of {self.url}") from None

    @property
    def initial_state(self) -> State:
        if self.initial_state_id is None:
            raise CrawlerError(f"model of {self.url} has no states")
        return self._states[self.initial_state_id]

    def states(self) -> list[State]:
        """All states in insertion (= discovery) order."""
        return list(self._states.values())

    @property
    def num_states(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[State]:
        return iter(self._states.values())

    def __len__(self) -> int:
        return len(self._states)

    # -- transitions -----------------------------------------------------------------

    def add_transition(
        self,
        from_state: State,
        to_state: State,
        event: EventAnnotation,
        actions: tuple[str, ...] = ("innerHTML",),
        modified: tuple[str, ...] = (),
    ) -> Transition:
        """Record one observed transition (may be a duplicate edge)."""
        transition = Transition(
            from_state=from_state.state_id,
            to_state=to_state.state_id,
            event=event,
            actions=actions,
            modified=modified,
        )
        self._transitions.append(transition)
        self._outgoing.setdefault(from_state.state_id, []).append(transition)
        return transition

    def transitions(self) -> list[Transition]:
        return list(self._transitions)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    def outgoing(self, state_id: str) -> list[Transition]:
        """Transitions leaving ``state_id``."""
        return list(self._outgoing.get(state_id, []))

    # -- traversal ----------------------------------------------------------------------

    def event_path_to(self, state_id: str) -> list[Transition]:
        """Shortest event sequence from the initial state to ``state_id``.

        This is step 1 of the result aggregation algorithm (§5.4):
        "Extract from the page model the path from the initial state to
        the desired state."
        """
        if self.initial_state_id is None:
            raise CrawlerError("empty model has no paths")
        if state_id == self.initial_state_id:
            return []
        self.get_state(state_id)  # validate
        frontier = [self.initial_state_id]
        parents: dict[str, Transition] = {}
        seen = {self.initial_state_id}
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for transition in self._outgoing.get(current, []):
                    target = transition.to_state
                    if target in seen:
                        continue
                    parents[target] = transition
                    if target == state_id:
                        return self._unwind(parents, state_id)
                    seen.add(target)
                    next_frontier.append(target)
            frontier = next_frontier
        raise CrawlerError(f"state {state_id!r} is unreachable from the initial state")

    def _unwind(self, parents: dict[str, Transition], state_id: str) -> list[Transition]:
        path: list[Transition] = []
        current = state_id
        while current != self.initial_state_id:
            transition = parents[current]
            path.append(transition)
            current = transition.from_state
        path.reverse()
        return path

    def compute_depths(self) -> None:
        """Set every state's ``depth`` to its BFS distance from s0."""
        if self.initial_state_id is None:
            return
        depths = {self.initial_state_id: 0}
        frontier = [self.initial_state_id]
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for transition in self._outgoing.get(current, []):
                    target = transition.to_state
                    if target not in depths:
                        depths[target] = depths[current] + 1
                        next_frontier.append(target)
            frontier = next_frontier
        for state_id, depth in depths.items():
            self._states[state_id].depth = depth

    # -- visualization -----------------------------------------------------------------------

    def to_dot(self, max_label_length: int = 30) -> str:
        """The transition graph in Graphviz DOT format (Figure 2.2).

        States become nodes (the initial state doubly circled), events
        become labelled edges — handy for eyeballing crawled models.
        """
        lines = ["digraph app_model {", "  rankdir=LR;"]
        for state in self._states.values():
            shape = (
                "doublecircle" if state.state_id == self.initial_state_id else "circle"
            )
            preview = " ".join(state.text.split())[:max_label_length]
            lines.append(
                f'  {state.state_id} [shape={shape} label="{state.state_id}\\n{preview}"];'
            )
        for transition in self._transitions:
            label = transition.event.handler.replace('"', "'")
            lines.append(
                f'  {transition.from_state} -> {transition.to_state} [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "initial_state_id": self.initial_state_id,
            "states": [state.to_dict() for state in self._states.values()],
            "transitions": [transition.to_dict() for transition in self._transitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ApplicationModel":
        model = cls(url=data["url"])
        for state_data in data["states"]:
            state = State.from_dict(state_data)
            model._states[state.state_id] = state
            model._by_hash[state.content_hash] = state.state_id
        model.initial_state_id = data.get("initial_state_id")
        for transition_data in data["transitions"]:
            transition = Transition.from_dict(transition_data)
            model._transitions.append(transition)
            model._outgoing.setdefault(transition.from_state, []).append(transition)
        return model

    def save(self, path: str | Path) -> None:
        """Write the model as JSON (the ``*.bin`` files of §6.3.2)."""
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ApplicationModel":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
