"""The AJAX application model: states, transitions, transition graphs."""

from repro.model.appmodel import ApplicationModel
from repro.model.state import State
from repro.model.transition import EventAnnotation, Transition

__all__ = ["ApplicationModel", "State", "Transition", "EventAnnotation"]
