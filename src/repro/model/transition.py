"""Transitions of the AJAX page model (chapter 2).

"The edges are transitions between states.  A transition is triggered by
an event activated on the source element and applied to one or more
target elements, whose properties change through an action."

A transition therefore carries the full event annotation (source
element, trigger type, handler) needed to *replay* it during result
aggregation (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from typing import Optional


@dataclass(frozen=True)
class EventAnnotation:
    """The event information attached to a transition (Table 2.1 columns)."""

    #: Where the event sits (element id or structural path description).
    source: str
    #: The trigger type, e.g. ``onclick``.
    trigger: str
    #: The handler source code, e.g. ``nextPage()``.
    handler: str
    #: Value typed into the source element before firing (forms extension).
    input_value: Optional[str] = None

    def describe(self) -> str:
        base = f"{self.trigger}@{self.source}:{self.handler}"
        if self.input_value is not None:
            return f"{base}[value={self.input_value!r}]"
        return base


@dataclass(frozen=True)
class Transition:
    """One edge of the transition graph."""

    from_state: str
    to_state: str
    event: EventAnnotation
    #: The action(s) applied, e.g. ``("innerHTML",)``.
    actions: tuple[str, ...] = ("innerHTML",)
    #: The modified target element ids (``modif*`` in Algorithm 3.1.1).
    modified: tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "from_state": self.from_state,
            "to_state": self.to_state,
            "event": {
                "source": self.event.source,
                "trigger": self.event.trigger,
                "handler": self.event.handler,
                "input_value": self.event.input_value,
            },
            "actions": list(self.actions),
            "modified": list(self.modified),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transition":
        return cls(
            from_state=data["from_state"],
            to_state=data["to_state"],
            event=EventAnnotation(
                source=data["event"]["source"],
                trigger=data["event"]["trigger"],
                handler=data["event"]["handler"],
                input_value=data["event"].get("input_value"),
            ),
            actions=tuple(data.get("actions", ("innerHTML",))),
            modified=tuple(data.get("modified", ())),
        )
