"""Application states (chapter 2).

A state is one DOM snapshot of an AJAX page: "An application state is a
DOM tree."  States are identified inside one page model by a sequential
id (``s0`` is the initial state) and globally by the pair
``(url, state_id)``.  Duplicate elimination uses the content hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class State:
    """One node of the transition graph."""

    #: Sequential id within the page model: "s0", "s1", ...
    state_id: str
    #: SHA-256 of the canonical DOM serialization (duplicate detection).
    content_hash: str
    #: Visible text of the state (what the indexer consumes).
    text: str
    #: Serialized DOM, kept when the crawler is configured to store HTML
    #: (needed for offline state reconstruction without re-crawling).
    html: Optional[str] = None
    #: Distance (in transitions) from the initial state; used by
    #: AJAXRank and by result aggregation.
    depth: int = 0
    #: Extra annotations (JS variable snapshot sizes, timings, ...).
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def index(self) -> int:
        """The numeric part of :attr:`state_id`."""
        return int(self.state_id[1:])

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "state_id": self.state_id,
            "content_hash": self.content_hash,
            "text": self.text,
            "html": self.html,
            "depth": self.depth,
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "State":
        """Inverse of :meth:`to_dict`."""
        return cls(
            state_id=data["state_id"],
            content_hash=data["content_hash"],
            text=data["text"],
            html=data.get("html"),
            depth=data.get("depth", 0),
            annotations=dict(data.get("annotations", {})),
        )
