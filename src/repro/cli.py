"""Command-line driver for the AJAX Crawl pipeline.

Chapter 8 of the thesis describes running each phase (Precrawler,
URLPartitioner, MPAjaxCrawler, index building, query processing) from a
shell or a small Swing GUI.  This module is the equivalent CLI::

    repro-ajax precrawl  --site simtube:100:7 --out runs/pre --max-pages 100
    repro-ajax partition --precrawl runs/pre --size 20 --out runs/crawl
    repro-ajax crawl     --site simtube:100:7 --root runs/crawl \
                         --trace runs/crawl.trace.jsonl --metrics runs/metrics.json
    repro-ajax trace summarize runs/crawl.trace.jsonl
    repro-ajax index     --root runs/crawl --out runs/index.json
    repro-ajax search    --index runs/index.json --query "american idol"
    repro-ajax stats     --root runs/crawl

Sites are addressed by spec strings (the servers are simulated):
``simtube[:videos[:seed]]`` or ``webmail``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.crawler import CrawlerConfig
from repro.net.faults import FaultInjector, FaultPlan, FaultRule
from repro.net.server import SimulatedServer
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    NULL_RECORDER,
    Recorder,
    SpanTree,
    critical_path_from_spans,
    diagnose,
    folded_stacks,
    format_component_table,
    format_critical_path,
    format_findings,
    format_folded,
    format_span_tree,
    format_summary,
    from_jsonl,
    merge_partition_traces,
    profile_components,
    summarize_jsonl,
    to_speedscope,
)
from repro.parallel import (
    BACKENDS,
    MPAjaxCrawler,
    Precrawler,
    PrecrawlResult,
    SimpleAjaxCrawler,
    URLPartitioner,
    load_models,
    save_models,
)
from repro.search import InvertedFile, SearchEngine, SegmentedIndex
from repro.search.segmented import DEFAULT_FLUSH_POSTINGS
from repro.sites import SiteConfig, SyntheticWebmail, SyntheticYouTube


def build_site(spec: str) -> SimulatedServer:
    """Construct a simulated site from a spec string."""
    parts = spec.split(":")
    kind = parts[0]
    if kind == "simtube":
        videos = int(parts[1]) if len(parts) > 1 else 100
        seed = int(parts[2]) if len(parts) > 2 else 7
        return SyntheticYouTube(SiteConfig(num_videos=videos, seed=seed))
    if kind == "webmail":
        return SyntheticWebmail()
    raise SystemExit(f"unknown site spec {spec!r} (try simtube:100:7 or webmail)")


def _default_start_url(site: SimulatedServer) -> str:
    if isinstance(site, SyntheticYouTube):
        return site.video_url(0)
    if isinstance(site, SyntheticWebmail):
        return site.inbox_url
    raise SystemExit("--start-url is required for this site")


# -- subcommands -----------------------------------------------------------------


def cmd_precrawl(args: argparse.Namespace) -> int:
    site = build_site(args.site)
    start = args.start_url or _default_start_url(site)
    precrawler = Precrawler(site, max_pages=args.max_pages)
    result = precrawler.run(start)
    result.save(args.out)
    print(f"precrawled {len(result.urls)} pages from {start}")
    print(f"link graph + PageRank written to {args.out}")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    precrawl = PrecrawlResult.load(args.precrawl)
    directories = URLPartitioner(args.size).write(precrawl.urls, args.out)
    print(f"{len(precrawl.urls)} URLs -> {len(directories)} partitions of {args.size} under {args.out}")
    return 0


def cmd_crawl(args: argparse.Namespace) -> int:
    site = build_site(args.site)
    server: SimulatedServer = site
    plan = None
    if args.fault_rate > 0.0:
        plan = FaultPlan(
            [FaultRule(args.fault_pattern, rate=args.fault_rate)],
            seed=args.fault_seed,
        )
        server = FaultInjector(site, plan)
    config = CrawlerConfig(
        max_additional_states=args.max_states,
        use_hot_node=not args.no_hotnode,
        retry_max_attempts=args.retries,
        near_dup_threshold=args.near_dup_threshold,
    )
    want_spans = args.spans or args.profile
    sink = None
    recorder = NULL_RECORDER
    if args.trace:
        sink = JsonlTraceSink(args.trace)
        recorder = Recorder(sink=sink, spans=want_spans)
    elif want_spans:
        # Profiling without a trace file keeps events in memory.
        recorder = Recorder(spans=True)
    total_pages = total_states = total_failed = 0
    total_ms = 0.0
    failures = []
    profile_events = None
    metrics = MetricsRegistry() if (args.metrics or args.profile) else None
    # The sink must be flushed/closed even when a partition crawl
    # raises mid-run — a truncated-but-flushed trace is still
    # diagnosable, a stranded buffer is not.
    try:
        if args.backend == "threads":
            # Real-concurrency path: every partition crawled by a fresh
            # worker on the thread backend; models persisted per
            # directory afterwards from the per-partition results.
            directories = URLPartitioner.list_partitions(args.root)
            partitions = [URLPartitioner.read(d) for d in directories]
            partition_recorders: dict[int, Recorder] = {}

            def recorder_factory(partition: int) -> Recorder:
                # Each partition records into its own memory buffer; the
                # buffers merge into one canonical stream afterwards, so
                # the written trace is deterministic however the threads
                # interleaved.
                rec = Recorder(spans=want_spans)
                partition_recorders[partition] = rec
                return rec

            controller = MPAjaxCrawler(
                server,
                num_proc_lines=args.workers,
                config=config,
                traditional=args.traditional,
                recorder_factory=(
                    recorder_factory if (sink is not None or want_spans) else None
                ),
            )
            run = controller.run(partitions, backend="threads")
            for index, directory in enumerate(directories, start=1):
                save_models(run.partition_results[index].models, directory)
            if partition_recorders:
                profile_events = merge_partition_traces(
                    {p: r.events for p, r in partition_recorders.items()}
                )
                if sink is not None:
                    for event in profile_events:
                        sink.write(event)
            for summary in run.summaries:
                total_pages += summary.num_pages
                total_states += summary.total_states
                total_failed += summary.failed_pages
                total_ms += summary.crawl_time_ms
                print(
                    f"partition {summary.partition}: {summary.num_pages} pages, "
                    f"{summary.total_states} states, {summary.crawl_time_ms / 1000:.1f}s virtual"
                    + (f", {summary.failed_pages} failed" if summary.failed_pages else "")
                )
            failures.extend(run.result.failures)
            if metrics is not None:
                metrics.merge(run.stats.registry)
                metrics.merge(run.result.report.registry)
            print(
                f"threads backend: {args.workers} workers, "
                f"{run.wall_time_ms / 1000:.2f}s wall, "
                f"{run.partitions_stolen} partition(s) stolen"
            )
        else:
            worker = SimpleAjaxCrawler(
                server, config, traditional=args.traditional, recorder=recorder
            )
            for directory in URLPartitioner.list_partitions(args.root):
                result, summary = worker.crawl_partition_dir(directory)
                if metrics is not None:
                    metrics.merge(summary.network.registry)
                    metrics.merge(result.report.registry)
                total_pages += summary.num_pages
                total_states += summary.total_states
                total_failed += summary.failed_pages
                total_ms += summary.crawl_time_ms
                failures.extend(result.failures)
                print(
                    f"partition {summary.partition}: {summary.num_pages} pages, "
                    f"{summary.total_states} states, {summary.crawl_time_ms / 1000:.1f}s virtual"
                    + (f", {summary.failed_pages} failed" if summary.failed_pages else "")
                )
    finally:
        if sink is not None:
            sink.close()
    mode = "traditional" if args.traditional else "AJAX"
    print(f"{mode} crawl done: {total_pages} pages, {total_states} states, "
          f"{total_ms / 1000:.1f}s virtual total")
    for failure in failures:
        # RetriesExhausted messages already carry the attempt count.
        suffix = "" if "attempt(s)" in failure.error else (
            f" after {failure.attempts} attempt(s)"
        )
        print(f"  failed: {failure.url} ({failure.error}){suffix}")
    if plan is not None:
        print(f"fault injection: {plan.num_injected} faults injected "
              f"(rate {args.fault_rate:.0%} on {args.fault_pattern!r}, "
              f"seed {args.fault_seed})")
    if sink is not None:
        print(f"trace written to {args.trace}")
    if args.metrics and metrics is not None:
        Path(args.metrics).write_text(metrics.to_json(), encoding="utf-8")
        print(f"metrics written to {args.metrics}")
    if args.profile:
        if profile_events is not None:
            events = profile_events
        elif sink is not None:
            events = from_jsonl(Path(args.trace).read_text(encoding="utf-8"))
        else:
            events = recorder.events
        tree = SpanTree.from_events(events, strict=False)
        print()
        print(format_component_table(profile_components(tree)))
        print()
        print(format_findings(diagnose(events=events, metrics=metrics)))
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    command = getattr(args, "index_command", None)
    if command == "build":
        return cmd_index_build(args)
    if command == "compact":
        return cmd_index_compact(args)
    if command == "stats":
        return cmd_index_stats(args)
    # Legacy flat form: build the in-memory inverted file as JSON.
    if not args.root or not args.out:
        raise SystemExit("index needs --root and --out (or a build/compact/stats subcommand)")
    index = InvertedFile(max_state_index=args.max_state_index)
    partitions = URLPartitioner.list_partitions(args.root)
    models_seen = 0
    for directory in partitions:
        for model in load_models(directory):
            index.add_model(model)
            models_seen += 1
    index.finalize()
    index.save(args.out)
    print(f"indexed {models_seen} page models / {index.num_states} states "
          f"({index.vocabulary_size} terms) -> {args.out}")
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    index = SegmentedIndex(
        args.segments,
        max_state_index=args.max_state_index,
        flush_threshold=args.flush_postings,
        block_size=args.block_size,
    )
    models_seen = 0
    for directory in URLPartitioner.list_partitions(args.root):
        for model in load_models(directory):
            index.add_model(model)
            models_seen += 1
    index.finalize()
    print(f"indexed {models_seen} page models / {index.num_states} states "
          f"({index.vocabulary_size} terms) -> {index.num_segments} segment(s) "
          f"under {args.segments}")
    index.close()
    return 0


def cmd_index_compact(args: argparse.Namespace) -> int:
    index = SegmentedIndex.open(args.segments)
    before = index.num_segments
    merges = index.compact_all()
    print(f"compacted {before} segment(s) -> {index.num_segments} "
          f"({merges} merge(s), {index.num_states} states)")
    index.close()
    return 0


def cmd_index_stats(args: argparse.Namespace) -> int:
    index = SegmentedIndex.open(args.segments)
    print(json.dumps(index.stats(), sort_keys=True, indent=2))
    index.close()
    return 0


def load_index(path: str):
    """A query index from ``path``: a segmented index directory or the
    legacy JSON inverted file."""
    if Path(path).is_dir():
        return SegmentedIndex.open(path)
    return InvertedFile.load(path)


def cmd_search(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    pageranks = {}
    if args.pagerank:
        pageranks = json.loads(Path(args.pagerank).read_text(encoding="utf-8"))
    engine = SearchEngine(index, pageranks=pageranks)
    results = engine.search(args.query, limit=args.limit)
    print(f"{len(results)} result(s) for {args.query!r}:")
    for result in results:
        print(f"  {result.score:8.4f}  {result.uri}  {result.state_id}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.clock import CostModel
    from repro.crawler import AjaxCrawler
    from repro.net.latency import (
        ConstantLatency,
        LognormalLatency,
        SpikyLatency,
        UniformJitter,
    )
    from repro.serve import SearchServer, SearchService, ServeConfig

    if bool(args.index) == bool(args.site):
        raise SystemExit("serve needs exactly one of --index or --site")
    models = None
    site = None
    if args.index:
        engine = SearchEngine(load_index(args.index))
        print(f"loaded index {args.index}: {engine.index.num_states} states")
    else:
        site = build_site(args.site)
        urls = (
            [site.video_url(i) for i in range(args.pages)]
            if isinstance(site, SyntheticYouTube)
            else [_default_start_url(site)]
        )
        crawler = AjaxCrawler(site, cost_model=CostModel(network_jitter=0.0))
        crawled = crawler.crawl(urls)
        models = crawled.models
        engine = SearchEngine.build(models)
        print(
            f"crawled {len(models)} pages -> {engine.index.num_states} states "
            "indexed (result replay enabled)"
        )
    shapes = {
        "const": lambda seed: ConstantLatency(),
        "uniform": lambda seed: UniformJitter(seed=seed),
        "lognormal": lambda seed: LognormalLatency(seed=seed),
        "spiky": lambda seed: SpikyLatency(seed=seed),
    }
    config = ServeConfig(
        cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl if args.cache_ttl > 0 else None,
        rate_limit_rps=args.rate_limit if args.rate_limit > 0 else None,
        rate_limit_burst=args.burst,
        latency_ms=args.latency_ms,
        latency_distribution=shapes[args.latency_shape](args.latency_seed),
    )
    service = SearchService(engine, config, models=models, site=site)
    server = SearchServer(service, host=args.host, port=args.port)
    print(f"serving on {server.url} (Ctrl-C to stop)")
    print(f"  try: curl '{server.url}/search?q=american+idol'")
    server.serve_forever()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.serve import LoadTestConfig, run_loadtest
    from repro.sites import full_workload

    queries = [query.text for query in full_workload(args.queries)]
    config = LoadTestConfig(
        workers=args.workers,
        requests_per_worker=args.requests,
        limit=args.limit,
    )
    report = run_loadtest(args.url, queries, config)
    print(report.summary())
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.out}")
    return 1 if report.errors else 0


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time
    import urllib.error
    import urllib.request

    from repro.serve import format_top

    url = args.url.rstrip("/") + "/debug/vars"
    remaining = args.iterations
    while True:
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                data = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"top: cannot read {url}: {exc}", file=sys.stderr)
            return 1
        print(format_top(data))
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        print()
        _time.sleep(args.interval)


def cmd_dot(args: argparse.Namespace) -> int:
    for directory in URLPartitioner.list_partitions(args.root):
        for model in load_models(directory):
            if model.url == args.url:
                print(model.to_dot())
                return 0
    print(f"no crawled model found for {args.url}", file=sys.stderr)
    return 1


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    path = Path(args.trace_file)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1
    summary = summarize_jsonl(path.read_text(encoding="utf-8"))
    print(format_summary(summary))
    return 0


def _load_trace(trace_file: str) -> list:
    path = Path(trace_file)
    if not path.exists():
        raise SystemExit(f"no such trace file: {path}")
    return from_jsonl(path.read_text(encoding="utf-8"))


def cmd_trace_spans(args: argparse.Namespace) -> int:
    tree = SpanTree.from_events(_load_trace(args.trace_file), strict=False)
    if not tree.roots:
        print("no spans in trace (crawl with --spans or Recorder(spans=True))")
        return 1
    print(format_span_tree(tree, max_depth=args.max_depth))
    return 0


def cmd_trace_flame(args: argparse.Namespace) -> int:
    tree = SpanTree.from_events(_load_trace(args.trace_file), strict=False)
    if not tree.roots:
        print("no spans in trace (crawl with --spans or Recorder(spans=True))")
        return 1
    if args.format == "speedscope":
        output = json.dumps(to_speedscope(tree), sort_keys=True)
    else:
        output = format_folded(folded_stacks(tree))
    if args.out:
        Path(args.out).write_text(output + "\n", encoding="utf-8")
        print(f"{args.format} output written to {args.out}")
    else:
        print(output)
    return 0


def cmd_trace_critical_path(args: argparse.Namespace) -> int:
    tree = SpanTree.from_events(_load_trace(args.trace_file), strict=False)
    report = critical_path_from_spans(tree, args.lines)
    if not report.partitions:
        print("no partition spans in trace (use a parallel crawl with spans on)")
        return 1
    print(format_critical_path(report))
    return 0


def cmd_trace_doctor(args: argparse.Namespace) -> int:
    events = _load_trace(args.trace_file)
    metrics = None
    if args.metrics:
        metrics = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
    findings = diagnose(events=events, metrics=metrics)
    print(format_findings(findings))
    if findings and args.fail_on_findings:
        return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    path = Path(args.metrics_file)
    if not path.exists():
        print(f"no such metrics file: {path}", file=sys.stderr)
        return 1
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    if args.format == "prom":
        print(MetricsRegistry.from_snapshot(snapshot).to_prometheus(), end="")
    else:
        print(json.dumps(snapshot, sort_keys=True, indent=2))
    return 0


def _parse_seeds(text: str) -> list[int]:
    """Seed selectors: ``7``, ``3,5,8``, or a half-open range ``0:50``."""
    if ":" in text:
        start, _, stop = text.partition(":")
        return list(range(int(start or 0), int(stop)))
    return [int(part) for part in text.split(",")]


def cmd_testgen_generate(args: argparse.Namespace) -> int:
    from repro.testgen import spec_for_seed

    spec = spec_for_seed(args.seed, num_pages=args.pages)
    if args.out:
        spec.save(args.out)
        print(f"spec saved to {args.out}")
    else:
        print(json.dumps(spec.to_dict(), indent=2))
    print(
        f"seed {spec.seed}: {len(spec.pages)} page(s), "
        f"{spec.total_states} states, {spec.total_transitions} transitions",
        file=sys.stderr,
    )
    return 0


def cmd_testgen_conformance(args: argparse.Namespace) -> int:
    from repro.testgen import CHECK_NAMES, run_corpus

    checks = tuple(args.checks.split(",")) if args.checks else CHECK_NAMES
    unknown = set(checks) - set(CHECK_NAMES)
    if unknown:
        print(f"unknown checks: {sorted(unknown)}", file=sys.stderr)
        return 2
    reports = run_corpus(_parse_seeds(args.seeds), checks=checks, num_pages=args.pages)
    failed = 0
    for report in reports:
        if not args.quiet or not report.passed:
            print(report.summary())
        for failure in report.failures:
            failed += 1
            print(f"  {failure}")
    print(f"{len(reports)} seed(s), {failed} conformance failure(s)")
    return 1 if failed else 0


def cmd_testgen_corpus(args: argparse.Namespace) -> int:
    from repro.testgen import corpus_models, corpus_spec

    spec = corpus_spec(args.states, seed=args.seed, states_per_page=args.states_per_page)
    if args.out:
        spec.save(args.out)
        print(f"spec saved to {args.out}")
    models = corpus_models(spec)
    total = sum(model.num_states for model in models)
    print(
        f"seed {spec.seed}: {len(spec.pages)} page(s), {total} states "
        f"({args.states_per_page}/page), minted without crawling"
    )
    return 0


def cmd_testgen_fuzz(args: argparse.Namespace) -> int:
    from repro.testgen import fuzz_corpus, shrink_case

    summary = fuzz_corpus(_parse_seeds(args.seeds))
    rejections = ", ".join(
        f"{name}={count}" for name, count in sorted(summary.rejections.items())
    )
    print(f"{summary.cases_run} cases, {len(summary.crashes)} crash(es)")
    print(f"clean rejections: {rejections or 'none'}")
    for crash in summary.crashes:
        print(f"CRASH {crash.describe()}")
        if args.shrink:
            minimal = shrink_case(crash)
            print(f"  minimal repro ({len(minimal.text)} chars): {minimal.text!r}")
    return 1 if summary.crashes else 0


def cmd_stats(args: argparse.Namespace) -> int:
    total_models = total_states = total_transitions = 0
    for directory in URLPartitioner.list_partitions(args.root):
        for model in load_models(directory):
            total_models += 1
            total_states += model.num_states
            total_transitions += model.num_transitions
    print(f"pages:       {total_models}")
    print(f"states:      {total_states}")
    print(f"transitions: {total_transitions}")
    if total_models:
        print(f"states/page: {total_states / total_models:.2f}")
    return 0


# -- parser ------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ajax",
        description="AJAX Crawl pipeline: precrawl, partition, crawl, index, search.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    precrawl = sub.add_parser("precrawl", help="build hyperlink graph + PageRank")
    precrawl.add_argument("--site", required=True, help="site spec, e.g. simtube:100:7")
    precrawl.add_argument("--start-url", default=None)
    precrawl.add_argument("--max-pages", type=int, default=100)
    precrawl.add_argument("--out", required=True)
    precrawl.set_defaults(fn=cmd_precrawl)

    partition = sub.add_parser("partition", help="split the URL list into partitions")
    partition.add_argument("--precrawl", required=True, help="precrawl output dir")
    partition.add_argument("--size", type=int, default=20)
    partition.add_argument("--out", required=True)
    partition.set_defaults(fn=cmd_partition)

    crawl = sub.add_parser("crawl", help="crawl all partitions under a root dir")
    crawl.add_argument("--site", required=True)
    crawl.add_argument("--root", required=True)
    crawl.add_argument("--traditional", action="store_true")
    crawl.add_argument("--no-hotnode", action="store_true")
    crawl.add_argument("--max-states", type=int, default=10)
    crawl.add_argument(
        "--near-dup-threshold", type=int, default=None, metavar="BITS",
        help="collapse states within this simhash Hamming distance into "
             "one canonical state (default: off, exact identity only)",
    )
    crawl.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per network request (1 = no retries)",
    )
    crawl.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="inject 5xx responses with probability P (testing robustness)",
    )
    crawl.add_argument(
        "--fault-pattern", default=r"/comments", metavar="REGEX",
        help="URL regex the injected faults apply to",
    )
    crawl.add_argument("--fault-seed", type=int, default=0)
    crawl.add_argument(
        "--trace", default=None, metavar="FILE",
        help="stream a JSONL trace of every crawl event to FILE",
    )
    crawl.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="dump the merged metrics registry to FILE as JSON",
    )
    crawl.add_argument(
        "--spans", action="store_true",
        help="record span_start/span_end causal events in the trace",
    )
    crawl.add_argument(
        "--profile", action="store_true",
        help="record spans and print the component profile + doctor findings",
    )
    crawl.add_argument(
        "--backend", choices=sorted(BACKENDS), default="simulated",
        help="execution engine: deterministic virtual-time simulation "
             "(default) or real worker threads",
    )
    crawl.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker threads for --backend threads (default 4)",
    )
    crawl.set_defaults(fn=cmd_crawl)

    index = sub.add_parser(
        "index",
        help="build/inspect indexes (flat --root/--out = legacy JSON inverted file)",
    )
    index.add_argument("--root", default=None)
    index.add_argument("--out", default=None)
    index.add_argument("--max-state-index", type=int, default=None)
    index.set_defaults(fn=cmd_index)
    index_sub = index.add_subparsers(dest="index_command", required=False)
    ix_build = index_sub.add_parser(
        "build", help="build an on-disk segmented index from crawled models"
    )
    ix_build.add_argument("--root", required=True, help="crawl partitions root")
    ix_build.add_argument("--segments", required=True, help="index directory to create")
    ix_build.add_argument("--max-state-index", type=int, default=None)
    ix_build.add_argument(
        "--flush-postings", type=int, default=DEFAULT_FLUSH_POSTINGS, metavar="N",
        help="memtable flush threshold in postings",
    )
    ix_build.add_argument("--block-size", type=int, default=128, metavar="N",
                          help="postings per on-disk block (skip granularity)")
    ix_compact = index_sub.add_parser(
        "compact", help="merge every segment of an index directory into one"
    )
    ix_compact.add_argument("--segments", required=True, help="index directory")
    ix_stats = index_sub.add_parser(
        "stats", help="print a segmented index's inventory as JSON"
    )
    ix_stats.add_argument("--segments", required=True, help="index directory")

    search = sub.add_parser("search", help="query a saved inverted file")
    search.add_argument(
        "--index", required=True,
        help="JSON inverted file or segmented index directory",
    )
    search.add_argument("--query", required=True)
    search.add_argument("--pagerank", default=None)
    search.add_argument("--limit", type=int, default=10)
    search.set_defaults(fn=cmd_search)

    serve = sub.add_parser("serve", help="HTTP search service over an index or site")
    serve.add_argument("--index", default=None, help="saved inverted file (search only)")
    serve.add_argument(
        "--site", default=None,
        help="site spec to crawl + serve with /result replay, e.g. simtube:50:7",
    )
    serve.add_argument("--pages", type=int, default=25, help="pages to crawl with --site")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    serve.add_argument("--cache-entries", type=int, default=256)
    serve.add_argument(
        "--cache-ttl", type=float, default=30.0, metavar="SECONDS",
        help="query-cache TTL (0 = never expire)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="RPS",
        help="per-client sustained requests/second (0 = unlimited)",
    )
    serve.add_argument("--burst", type=float, default=20.0, help="token-bucket capacity")
    serve.add_argument(
        "--latency-ms", type=float, default=0.0,
        help="injected base latency per request (soak realism)",
    )
    serve.add_argument(
        "--latency-shape", choices=("const", "uniform", "lognormal", "spiky"),
        default="uniform",
    )
    serve.add_argument("--latency-seed", type=int, default=0x5EED)
    serve.set_defaults(fn=cmd_serve)

    loadtest = sub.add_parser("loadtest", help="closed-loop load test of a live server")
    loadtest.add_argument("--url", required=True, help="server base URL")
    loadtest.add_argument("--workers", type=int, default=4)
    loadtest.add_argument(
        "--requests", type=int, default=100, help="requests per worker"
    )
    loadtest.add_argument(
        "--queries", type=int, default=100,
        help="workload size (Table 7.4 queries first)",
    )
    loadtest.add_argument("--limit", type=int, default=10)
    loadtest.add_argument("--out", default=None, metavar="FILE", help="JSON report")
    loadtest.set_defaults(fn=cmd_loadtest)

    top = sub.add_parser(
        "top", help="live telemetry of a running server (polls /debug/vars)"
    )
    top.add_argument("--url", required=True, help="server base URL")
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N snapshots (default: poll forever)",
    )
    top.add_argument("--timeout", type=float, default=5.0, help="HTTP timeout")
    top.set_defaults(fn=cmd_top)

    stats = sub.add_parser("stats", help="statistics over crawled models")
    stats.add_argument("--root", required=True)
    stats.set_defaults(fn=cmd_stats)

    trace = sub.add_parser("trace", help="inspect JSONL crawl traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="event counts, virtual span and busiest URLs"
    )
    trace_summarize.add_argument("trace_file", help="JSONL trace file")
    trace_summarize.set_defaults(fn=cmd_trace_summarize)

    trace_spans = trace_sub.add_parser(
        "spans", help="reconstruct and print the span tree of a trace"
    )
    trace_spans.add_argument("trace_file", help="JSONL trace file")
    trace_spans.add_argument("--max-depth", type=int, default=None)
    trace_spans.set_defaults(fn=cmd_trace_spans)

    trace_flame = trace_sub.add_parser(
        "flame", help="flamegraph export (folded stacks or speedscope JSON)"
    )
    trace_flame.add_argument("trace_file", help="JSONL trace file")
    trace_flame.add_argument(
        "--format", choices=("folded", "speedscope"), default="folded",
        help="folded = flamegraph.pl input; speedscope = speedscope.app JSON",
    )
    trace_flame.add_argument("--out", default=None, metavar="FILE")
    trace_flame.set_defaults(fn=cmd_trace_flame)

    trace_cp = trace_sub.add_parser(
        "critical-path", help="per-partition makespan / straggler analysis"
    )
    trace_cp.add_argument("trace_file", help="JSONL trace file with partition spans")
    trace_cp.add_argument(
        "--lines", type=int, default=4, metavar="N",
        help="process lines to replay the scheduler with",
    )
    trace_cp.set_defaults(fn=cmd_trace_critical_path)

    trace_doctor = trace_sub.add_parser(
        "doctor", help="rule-based diagnosis of a crawl trace"
    )
    trace_doctor.add_argument("trace_file", help="JSONL trace file")
    trace_doctor.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="metrics snapshot JSON to include as evidence",
    )
    trace_doctor.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit 1 when the doctor reports any finding (CI gates)",
    )
    trace_doctor.set_defaults(fn=cmd_trace_doctor)

    metrics = sub.add_parser("metrics", help="render a saved metrics snapshot")
    metrics.add_argument("metrics_file", help="metrics JSON written by crawl --metrics")
    metrics.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="prom = Prometheus text exposition",
    )
    metrics.set_defaults(fn=cmd_metrics)

    testgen = sub.add_parser(
        "testgen", help="synthetic sites with ground truth: generate, verify, fuzz"
    )
    testgen_sub = testgen.add_subparsers(dest="testgen_command", required=True)
    tg_generate = testgen_sub.add_parser(
        "generate", help="sample a site spec from a seed"
    )
    tg_generate.add_argument("--seed", type=int, required=True)
    tg_generate.add_argument("--pages", type=int, default=None, help="page count (default: vary by seed)")
    tg_generate.add_argument("--out", default=None, help="write the spec JSON here instead of stdout")
    tg_generate.set_defaults(fn=cmd_testgen_generate)
    tg_conformance = testgen_sub.add_parser(
        "conformance", help="crawl generated sites, compare against ground truth"
    )
    tg_conformance.add_argument(
        "--seeds", default="0:50", help="seed selector: N, N,M,..., or START:STOP"
    )
    tg_conformance.add_argument(
        "--checks", default=None, help="comma-separated subset of checks to run"
    )
    tg_conformance.add_argument("--pages", type=int, default=None)
    tg_conformance.add_argument(
        "--quiet", action="store_true", help="only print failures and the final tally"
    )
    tg_conformance.set_defaults(fn=cmd_testgen_conformance)
    tg_corpus = testgen_sub.add_parser(
        "corpus",
        help="mint a large deterministic corpus (the benchmark scale knob)",
    )
    tg_corpus.add_argument("--states", type=int, required=True, help="corpus size in states")
    tg_corpus.add_argument("--seed", type=int, default=0)
    tg_corpus.add_argument("--states-per-page", type=int, default=5)
    tg_corpus.add_argument("--out", default=None, help="write the spec JSON here")
    tg_corpus.set_defaults(fn=cmd_testgen_corpus)
    tg_fuzz = testgen_sub.add_parser(
        "fuzz", help="crash-fuzz the JS and DOM pipelines"
    )
    tg_fuzz.add_argument("--seeds", default="0:2000")
    tg_fuzz.add_argument(
        "--shrink", action="store_true", help="shrink each crash to a minimal repro"
    )
    tg_fuzz.set_defaults(fn=cmd_testgen_fuzz)

    dot = sub.add_parser("dot", help="print one page's transition graph as DOT")
    dot.add_argument("--root", required=True)
    dot.add_argument("--url", required=True)
    dot.set_defaults(fn=cmd_dot)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
