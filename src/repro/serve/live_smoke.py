"""Live-telemetry smoke test: the in-process doctor must fire on a
seeded latency storm and stay silent on a healthy workload.

``python -m repro.serve.live_smoke`` (the ``make obs-live-smoke`` gate)
runs the serving stack twice on a virtual clock:

1. **clean run** — a cache-friendly workload with small injected
   latency: the live doctor must report **no findings**, the SLO
   budgets must be unspent, and /debug/vars must add up;
2. **storm run** — the seeded latency injector is cranked past the
   latency SLO threshold on a cache-busting workload: the
   ``slo-burn-rate`` rule must fire (both burn horizons saturated),
   the slow-query log must fill, and the tail ring must retain the
   slow requests for ``/debug/trace`` lookup.

The injector sleeps by *advancing the virtual clock*, so observed
request latency equals injected latency exactly — the storm is
deterministic (seeded jitter), fast (no real sleeping), and the
assertions are exact rather than statistical.

Exit status 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import sys

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.obs.slo import BURN_RATE_RULE
from repro.search import SearchEngine
from repro.serve.service import SearchService, ServeConfig
from repro.serve.telemetry import TelemetryConfig
from repro.sites import SiteConfig, SyntheticYouTube


class _VirtualClock:
    """A monotonic clock that moves only when told to (or slept on)."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


def _build_engine(num_videos: int = 8) -> SearchEngine:
    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7))
    crawler = AjaxCrawler(
        site, CrawlerConfig(), cost_model=CostModel(network_jitter=0.0)
    )
    crawled = crawler.crawl([site.video_url(i) for i in range(num_videos)])
    return SearchEngine.build(crawled.models)


def _service(
    engine: SearchEngine, clock: _VirtualClock, latency_ms: float
) -> SearchService:
    return SearchService(
        engine,
        ServeConfig(
            latency_ms=latency_ms,
            telemetry=TelemetryConfig(sample_every=4),
        ),
        clock=clock,
        sleep=clock.sleep,
    )


def run_smoke(verbose: bool = True) -> int:
    """Run the clean + storm sequence; returns a process exit status."""
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    def say(message: str) -> None:
        if verbose:
            print(f"[obs-live-smoke] {message}")

    engine = _build_engine()
    say(f"engine ready: {engine.index.num_states} states indexed")

    # -- 1. clean run: modest latency, cache-friendly workload ------------------
    clock = _VirtualClock()
    service = _service(engine, clock, latency_ms=5.0)
    queries = [f"video {i}" for i in range(8)]
    for _ in range(3):  # repeat rounds hit the cache
        for query in queries:
            service.search({"q": query}, client="clean")
            clock.advance(0.25)
    telemetry = service.telemetry
    assert telemetry is not None
    findings = telemetry.diagnose()
    check(
        not findings,
        "clean run produced findings: "
        + "; ".join(f"{f.rule}: {f.message}" for f in findings),
    )
    data = telemetry.vars()
    check(
        data["endpoints"]["search"]["requests"] == 24.0,
        f"clean run booked {data['endpoints']['search']['requests']} "
        f"requests, wanted 24",
    )
    check(
        data["cache"]["hit_rate"] > 0.5,
        f"clean run cache hit rate {data['cache']['hit_rate']:.0%}, "
        f"wanted > 50%",
    )
    for name, spent in data["slo"].items():
        check(spent == 0.0, f"clean run spent {spent:.0%} of SLO {name!r}")
    say(
        f"clean run: {data['endpoints']['search']['requests']:.0f} requests, "
        f"cache {data['cache']['hit_rate']:.0%}, no findings"
    )

    # -- 2. storm run: latency past the SLO threshold, cache-busting ------------
    clock = _VirtualClock()
    service = _service(engine, clock, latency_ms=400.0)
    for index in range(20):  # unique queries: every one misses the cache
        rid = f"storm-{index:04d}"
        service.search({"q": f"video clip {index}"}, client="storm", request_id=rid)
        clock.advance(1.0)
    telemetry = service.telemetry
    assert telemetry is not None
    findings = telemetry.diagnose()
    burn = [f for f in findings if f.rule == BURN_RATE_RULE]
    check(
        bool(burn),
        "storm run fired no slo-burn-rate finding; got "
        + (", ".join(f.rule for f in findings) or "nothing"),
    )
    if burn:
        check(
            any(f.severity == "critical" for f in burn),
            f"storm burn findings are only {[f.severity for f in burn]}",
        )
        say(f"storm run: {burn[0].message}")
    slow = telemetry.slow_queries()
    check(
        len(slow) == 20,
        f"storm run logged {len(slow)} slow queries, wanted 20",
    )
    trace = telemetry.trace("storm-0019")
    check(
        trace is not None and trace["duration_ms"] >= 250.0,
        "storm request 'storm-0019' was not retained in the tail ring",
    )

    if failures:
        for failure in failures:
            print(f"[obs-live-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    say("ok")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
