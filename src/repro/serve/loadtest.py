"""Closed-loop load testing of a live search server.

``workers`` threads each own one keep-alive HTTP connection and issue
requests back-to-back (closed loop: the next request leaves when the
previous response lands), walking a query workload round-robin from a
per-worker offset — the Table 7.4 paper workload by default.  The
report aggregates:

* latency percentiles (p50/p95/p99, milliseconds, wall clock) from a
  merged :class:`~repro.obs.sketch.QuantileSketch` — each worker feeds
  its own sketch, so aggregation is O(buckets) instead of a global
  sort, and the same estimator serves live telemetry and load reports,
* throughput (completed requests / wall seconds),
* cache hit rate (from the ``cached`` field of ``/search`` responses),
* status histogram and rate-limit rejections (429s),
* transport errors (connection drops count as errors, not latencies).

``repro-ajax loadtest`` drives it from the CLI;
``benchmarks/bench_serving.py`` boots a server, runs it, and records
``benchmarks/results/BENCH_serving.json`` with loose floors asserted.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence
from urllib.parse import urlencode, urlsplit

from repro.obs.sketch import QuantileSketch, merge_sketches


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test run's shape."""

    #: Concurrent closed-loop workers (one connection each).
    workers: int = 4
    #: Requests each worker issues before exiting.
    requests_per_worker: int = 100
    #: Result-page size requested on every query.
    limit: int = 10
    #: Per-request socket timeout, seconds.
    timeout_s: float = 10.0
    #: When set, worker ``i`` sends ``X-Client-Id: <prefix>-<i>`` so the
    #: server's token buckets see distinct clients; None sends no header
    #: (all workers share the peer-address bucket).
    client_prefix: Optional[str] = "loadtest"


@dataclass
class LoadTestReport:
    """Aggregated outcome of one run (JSON-able via :meth:`to_dict`)."""

    requests: int = 0
    errors: int = 0
    wall_s: float = 0.0
    status_counts: dict[int, int] = field(default_factory=dict)
    cached_responses: int = 0
    rate_limited: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0

    @property
    def rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cached responses over successful ``/search`` responses."""
        ok = self.status_counts.get(200, 0)
        return self.cached_responses / ok if ok else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "rps": self.rps,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "cached_responses": self.cached_responses,
            "cache_hit_rate": self.cache_hit_rate,
            "rate_limited": self.rate_limited,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
        }

    def summary(self) -> str:
        return (
            f"{self.requests} requests in {self.wall_s:.2f}s "
            f"({self.rps:.0f} req/s), "
            f"p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms, "
            f"cache hit rate {self.cache_hit_rate:.0%}, "
            f"{self.rate_limited} rate-limited, {self.errors} error(s)"
        )


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = min(len(sorted_values) - 1, max(0, round(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


class _Worker(threading.Thread):
    """One closed-loop request stream over a keep-alive connection."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        queries: Sequence[str],
        config: LoadTestConfig,
    ) -> None:
        super().__init__(name=f"loadtest-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.queries = queries
        self.config = config
        self.latency_sketch = QuantileSketch()
        self.status_counts: dict[int, int] = {}
        self.cached = 0
        self.errors = 0

    def run(self) -> None:
        headers = {}
        if self.config.client_prefix is not None:
            headers["X-Client-Id"] = f"{self.config.client_prefix}-{self.index}"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.config.timeout_s
        )
        try:
            for sequence in range(self.config.requests_per_worker):
                query = self.queries[(self.index + sequence) % len(self.queries)]
                path = "/search?" + urlencode(
                    {"q": query, "limit": self.config.limit}
                )
                start = time.perf_counter()
                try:
                    connection.request("GET", path, headers=headers)
                    response = connection.getresponse()
                    body = response.read()
                except (OSError, http.client.HTTPException):
                    self.errors += 1
                    connection.close()  # reconnect on the next iteration
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.config.timeout_s
                    )
                    continue
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                self.latency_sketch.observe(elapsed_ms)
                status = response.status
                self.status_counts[status] = self.status_counts.get(status, 0) + 1
                if status == 200:
                    try:
                        if json.loads(body).get("cached"):
                            self.cached += 1
                    except ValueError:
                        self.errors += 1
        finally:
            connection.close()


def run_loadtest(
    base_url: str,
    queries: Sequence[str],
    config: LoadTestConfig = LoadTestConfig(),
) -> LoadTestReport:
    """Drive ``queries`` against ``base_url`` per ``config``; aggregate."""
    if not queries:
        raise ValueError("loadtest needs at least one query")
    split = urlsplit(base_url)
    host = split.hostname or "127.0.0.1"
    port = split.port or 80
    workers = [
        _Worker(index, host, port, queries, config)
        for index in range(config.workers)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_s = time.perf_counter() - start

    report = LoadTestReport(wall_s=wall_s)
    for worker in workers:
        report.errors += worker.errors
        report.cached_responses += worker.cached
        for status, count in worker.status_counts.items():
            report.status_counts[status] = report.status_counts.get(status, 0) + count
    merged = merge_sketches([worker.latency_sketch for worker in workers])
    report.requests = merged.count
    report.rate_limited = report.status_counts.get(429, 0)
    report.p50_ms = merged.quantile(0.50)
    report.p95_ms = merged.quantile(0.95)
    report.p99_ms = merged.quantile(0.99)
    report.mean_ms = merged.mean
    return report
