"""The HTTP shell: request parsing, JSON rendering, status mapping.

One :class:`http.server.BaseHTTPRequestHandler` subclass per server,
bound to its :class:`~repro.serve.service.SearchService` by
:func:`make_handler`.  The handler does transport only — URL decoding,
content negotiation, the ``Retry-After`` header — and delegates every
decision to the service, whose :class:`~repro.serve.service.ServeError`
subclasses carry the status code.

Endpoints::

    GET /search?q=<query>[&limit=N][&offset=N]   JSON result page
    GET /result?uri=<uri>&state=<sN>             JSON replayed state
    GET /metrics                                 Prometheus text
    GET /healthz                                 JSON liveness probe
    GET /debug/vars                              live windowed telemetry
    GET /debug/slo                               SLO budgets + findings
    GET /debug/slow                              recent slow-query log
    GET /debug/trace?id=<req-id>                 one retained deep trace

Every ``/search`` and ``/result`` response echoes ``X-Request-Id`` —
the client's own id when it sent one, a server-assigned one otherwise —
so a slow request spotted client-side can be looked up in
``/debug/trace`` afterwards.

Responses are HTTP/1.1 with exact ``Content-Length`` so keep-alive
connections (the load-test workers) can pipeline requests.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler
from typing import Type
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import NotFound, RateLimited, SearchService, ServeError

#: Header that names the rate-limiting principal (falls back to the
#: peer address, which on loopback lumps all clients together).
CLIENT_HEADER = "X-Client-Id"

#: Request-id header, propagated inbound (client-assigned ids survive
#: into the trace rings) and echoed on every search/result response.
REQUEST_ID_HEADER = "X-Request-Id"


class SearchRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs to the bound service and renders JSON."""

    #: Bound by :func:`make_handler`.
    service: SearchService

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body land in separate small writes; without
    # TCP_NODELAY, Nagle + delayed ACK stalls every keep-alive response
    # ~40 ms on loopback, swamping the sub-ms serving path.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        client = self.headers.get(CLIENT_HEADER) or self.client_address[0]
        request_id = self.headers.get(REQUEST_ID_HEADER) or ""
        endpoint = split.path.lstrip("/")
        if not request_id and self.service.telemetry is not None:
            request_id = self.service.telemetry.next_request_id()
        id_header = {REQUEST_ID_HEADER: request_id} if request_id else None
        try:
            if split.path == "/search":
                self.service.admit(client)
                self._send_json(
                    200,
                    self.service.search(
                        params, client=client, request_id=request_id or None
                    ),
                    extra_headers=id_header,
                )
            elif split.path == "/result":
                self.service.admit(client)
                self._send_json(
                    200,
                    self.service.result(
                        params, client=client, request_id=request_id or None
                    ),
                    extra_headers=id_header,
                )
            elif split.path == "/metrics":
                self._send_text(200, self.service.metrics_text())
            elif split.path == "/healthz":
                self._send_json(200, self.service.health())
            elif split.path == "/debug/vars":
                self._send_json(200, self.service.debug_vars())
            elif split.path == "/debug/slo":
                self._send_json(200, self.service.debug_slo())
            elif split.path == "/debug/slow":
                self._send_json(200, self.service.debug_slow())
            elif split.path == "/debug/trace":
                self._send_json(
                    200, self.service.debug_trace(params.get("id", ""))
                )
            else:
                raise NotFound(f"no such endpoint {split.path!r}")
        except RateLimited as exc:
            self.service.note_rate_limited(
                endpoint, client, request_id or None
            )
            retry_after = max(1, math.ceil(exc.retry_after_s))
            headers = {"Retry-After": str(retry_after)}
            headers.update(id_header or {})
            self._send_json(
                exc.status,
                {"error": str(exc), "status": exc.status, "retry_after_s": exc.retry_after_s},
                extra_headers=headers,
            )
        except ServeError as exc:
            self._send_json(exc.status, {"error": str(exc), "status": exc.status})
        except Exception:  # pragma: no cover - defensive: never leak a traceback
            self._send_json(500, {"error": "internal server error", "status": 500})

    # -- rendering -------------------------------------------------------------------

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json", extra_headers)

    def _send_text(self, status: int, text: str) -> None:
        self._send(status, text.encode("utf-8"), "text/plain; version=0.0.4")

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default per-request stderr chatter; the metrics
        registry is the request log."""


def make_handler(service: SearchService) -> Type[SearchRequestHandler]:
    """A handler class bound to ``service`` (one per server instance)."""
    return type(
        "BoundSearchRequestHandler", (SearchRequestHandler,), {"service": service}
    )
