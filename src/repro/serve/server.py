"""The threaded HTTP server wrapper: lifecycle, ephemeral ports.

:class:`SearchServer` owns a :class:`http.server.ThreadingHTTPServer`
(one thread per connection — the stdlib's ``socketserver`` threadpool
analogue) running the bound handler from :mod:`repro.serve.handlers`.
``port=0`` binds an ephemeral port, which the smoke test and the
load-test harness rely on to boot throwaway servers without racing for
a fixed port.

The server runs on a daemon background thread; :meth:`stop` shuts the
accept loop down and joins it, so tests can assert a clean shutdown.
It is also a context manager::

    with SearchServer(service) as server:
        urllib.request.urlopen(server.url + "/healthz")
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from typing import Optional

from repro.serve.handlers import make_handler
from repro.serve.service import SearchService


class SearchServer:
    """A background-threaded HTTP search service."""

    def __init__(
        self, service: SearchService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), make_handler(service))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SearchServer":
        """Start serving on a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-serve:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> bool:
        """Shut down the accept loop; True when the thread joined."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            joined = not self._thread.is_alive()
            self._thread = None
            return joined
        return True

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "SearchServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
