"""The query-serving core: parameter parsing, caching, error mapping.

:class:`SearchService` is the transport-agnostic half of the serving
layer (chapters 5–6 of the thesis: boolean retrieval, eq. 5.3 ranking,
and §5.4 result aggregation, exposed to searchers).  The HTTP handler
in :mod:`repro.serve.handlers` is a thin shell over it; everything
interesting — validation, the LRU+TTL query cache, token-bucket
admission, deterministic latency injection, and the mapping of every
library exception onto one HTTP status — lives here so it can be unit
tested without sockets.

Error mapping contract (the satellite bugfixes exist to make it total):

===========================================  ======
condition                                    status
===========================================  ======
missing/blank ``q``, empty query after
tokenization, bad ``limit``/``offset``       400
unknown endpoint, unknown URI or state,
result rendering not configured              404
token bucket drained                         429
event-path replay failed (site drifted —
``SearchError`` from the aggregator)         502
anything else                                500
===========================================  ======
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.clock import CostModel
from repro.errors import CrawlerError, ReproError, SearchError
from repro.model import ApplicationModel
from repro.net.latency import LatencyDistribution, UniformJitter
from repro.obs import (
    NULL_RECORDER,
    SERVE_REQUEST,
    MetricsRegistry,
    active_request,
    current_request_trace,
)
from repro.search import ResultAggregator, SearchEngine
from repro.serve.cache import QueryCache
from repro.serve.limiter import TokenBucketLimiter
from repro.serve.telemetry import ServingTelemetry, TelemetryConfig


class ServeError(ReproError):
    """A request failed with a definite HTTP status."""

    status = 500

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class BadRequest(ServeError):
    """The client sent parameters the service cannot interpret (400)."""

    status = 400


class NotFound(ServeError):
    """No such endpoint, URI or state (404)."""

    status = 404


class RateLimited(ServeError):
    """The client's token bucket is drained (429 + Retry-After)."""

    status = 429


class UpstreamFailed(ServeError):
    """Result reconstruction failed — the site drifted since the crawl
    (502: the backend, not the client, is at fault)."""

    status = 502


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving process."""

    #: Results per page when the client does not pass ``limit``.
    default_limit: int = 10
    #: Upper bound on ``limit`` (larger requests are a 400).
    max_limit: int = 100
    #: LRU capacity of the query cache (0 disables caching).
    cache_entries: int = 256
    #: Cache TTL in seconds (None = entries never expire).
    cache_ttl_s: Optional[float] = 30.0
    #: Sustained per-client requests/second (None = unlimited).
    rate_limit_rps: Optional[float] = None
    #: Bucket capacity: short bursts above the sustained rate.
    rate_limit_burst: float = 20.0
    #: Injected base latency per request in milliseconds (0 = off).
    #: Soak tests use this to make a local loopback behave like a
    #: realistically slow backend.
    latency_ms: float = 0.0
    #: Latency shape; seeded, so injection is deterministic.
    latency_distribution: LatencyDistribution = field(
        default_factory=lambda: UniformJitter(spread=0.2, seed=0x5EED)
    )
    #: Live telemetry (rolling windows, sampled traces, SLO burn rates,
    #: the /debug/* endpoints).  ``TelemetryConfig(enabled=False)``
    #: restores the exact pre-telemetry serving path.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)


class SearchService:
    """Query serving over one :class:`~repro.search.SearchEngine`."""

    def __init__(
        self,
        engine: SearchEngine,
        config: ServeConfig = ServeConfig(),
        models: Optional[Iterable[ApplicationModel]] = None,
        site=None,
        registry: Optional[MetricsRegistry] = None,
        recorder=NULL_RECORDER,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.engine = engine
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        self.clock = clock
        self.sleep = sleep
        self.cache = QueryCache(
            max_entries=config.cache_entries,
            ttl_s=config.cache_ttl_s,
            clock=clock,
            registry=self.registry,
        )
        self.limiter = (
            TokenBucketLimiter(
                rate=config.rate_limit_rps,
                burst=config.rate_limit_burst,
                clock=clock,
                registry=self.registry,
            )
            if config.rate_limit_rps is not None
            else None
        )
        #: URI -> application model, for §5.4 result reconstruction.
        self.models: dict[str, ApplicationModel] = {
            model.url: model for model in models or ()
        }
        #: The simulated site the models were crawled from (replay needs
        #: a live backend to re-fetch pages and AJAX fragments).
        self.site = site
        # Replays share the site's server-side state; serialize them.
        self._replay_lock = threading.Lock()
        self._latency_lock = threading.Lock()
        self.telemetry: Optional[ServingTelemetry] = (
            ServingTelemetry(
                config.telemetry, clock=clock, registry=self.registry
            )
            if config.telemetry.enabled
            else None
        )

    # -- admission / latency --------------------------------------------------------

    def admit(self, client: str) -> None:
        """Charge one request to ``client``'s token bucket.

        Raises :class:`RateLimited` when the bucket is drained.
        """
        if self.limiter is None:
            return
        decision = self.limiter.check(client)
        if not decision.allowed:
            raise RateLimited(
                f"rate limit exceeded for client {client!r}",
                retry_after_s=decision.retry_after_s,
            )

    def inject_latency(self) -> float:
        """Sleep the configured injected latency; returns slept ms."""
        if self.config.latency_ms <= 0:
            return 0.0
        with self._latency_lock:
            factor = self.config.latency_distribution.sample()
        delay_ms = self.config.latency_ms * factor
        self.sleep(delay_ms / 1000.0)
        self.registry.inc("serve.latency_injected_ms", delay_ms)
        return delay_ms

    # -- endpoints -------------------------------------------------------------------

    def search(
        self,
        params: Mapping[str, str],
        client: str = "-",
        request_id: Optional[str] = None,
    ) -> dict:
        """Answer ``/search``: a JSON-able result page.

        ``params`` are the decoded query-string parameters (``q``,
        optional ``limit`` and ``offset``).
        """
        return self._observed(
            "search", client, lambda: self._search(params), request_id
        )

    def _search(self, params: Mapping[str, str]) -> dict:
        query = (params.get("q") or "").strip()
        if not query:
            raise BadRequest("missing or blank query parameter 'q'")
        limit = self._int_param(params, "limit", self.config.default_limit, 1)
        if limit > self.config.max_limit:
            raise BadRequest(
                f"limit {limit} exceeds the maximum of {self.config.max_limit}"
            )
        offset = self._int_param(params, "offset", 0, 0)
        key = (query, limit, offset)
        trace = current_request_trace()
        if trace is not None:
            trace.annotate(query=query, limit=limit, offset=offset)
        cached = self.cache.get(key)
        if cached is not None:
            if trace is not None:
                trace.annotate(cached=True)
            return dict(cached, cached=True)
        if trace is not None:
            trace.annotate(cached=False)
        self.inject_latency()
        try:
            results = self.engine.search(query)
        except SearchError as exc:
            # "empty query": every token was punctuation — a client
            # error, not a server fault.
            raise BadRequest(str(exc)) from exc
        page = {
            "query": query,
            "total": len(results),
            "offset": offset,
            "limit": limit,
            "results": [
                {
                    "uri": result.uri,
                    "state": result.state_id,
                    "score": result.score,
                    "components": result.components,
                }
                for result in results[offset : offset + limit]
            ],
        }
        self.cache.put(key, page)
        return dict(page, cached=False)

    def result(
        self,
        params: Mapping[str, str],
        client: str = "-",
        request_id: Optional[str] = None,
    ) -> dict:
        """Answer ``/result``: materialize one hit state by event replay."""
        return self._observed(
            "result", client, lambda: self._result(params), request_id
        )

    def _result(self, params: Mapping[str, str]) -> dict:
        uri = (params.get("uri") or "").strip()
        state_id = (params.get("state") or "").strip()
        if not uri or not state_id:
            raise BadRequest("parameters 'uri' and 'state' are both required")
        if self.site is None or not self.models:
            raise NotFound("result rendering is not configured on this server")
        model = self.models.get(uri)
        if model is None:
            raise NotFound(f"no crawled model for {uri!r}")
        try:
            state = model.get_state(state_id)
        except CrawlerError as exc:
            raise NotFound(str(exc)) from exc
        self.inject_latency()
        from repro.browser import Browser
        from repro.dom import serialize

        with self._replay_lock:
            aggregator = ResultAggregator(
                Browser(self.site, cost_model=CostModel(network_jitter=0.0))
            )
            try:
                page = aggregator.reconstruct(model, state_id)
            except SearchError as exc:
                raise UpstreamFailed(str(exc)) from exc
            html = serialize(page.document)
        return {"uri": uri, "state": state_id, "depth": state.depth, "html": html}

    def metrics_text(self) -> str:
        """The ``/metrics`` payload: Prometheus text exposition."""
        return self.registry.to_prometheus()

    # -- live telemetry views ---------------------------------------------------------

    def _require_telemetry(self) -> ServingTelemetry:
        if self.telemetry is None:
            raise NotFound("live telemetry is disabled on this server")
        return self.telemetry

    def note_rate_limited(
        self, endpoint: str, client: str, request_id: Optional[str] = None
    ) -> None:
        """Book one 429 into the telemetry windows (the handler rejects
        rate-limited requests before any endpoint body runs, so they
        never pass through :meth:`_observed`)."""
        if self.telemetry is not None:
            self.telemetry.record_rejection(endpoint, client, request_id)

    def debug_vars(self) -> dict:
        """The ``/debug/vars`` payload: windowed rates and quantiles."""
        return self._require_telemetry().vars()

    def debug_slo(self) -> dict:
        """The ``/debug/slo`` payload: budgets, burn rates, live findings."""
        return self._require_telemetry().slo_status()

    def debug_slow(self) -> dict:
        """The ``/debug/slow`` payload: the recent slow-query log."""
        return {"slow": self._require_telemetry().slow_queries()}

    def debug_trace(self, request_id: str) -> dict:
        """The ``/debug/trace?id=`` payload: one retained request trace."""
        if not request_id:
            raise BadRequest("parameter 'id' is required")
        found = self._require_telemetry().trace(request_id)
        if found is None:
            raise NotFound(
                f"no retained trace for {request_id!r} (not sampled, "
                f"or already evicted from the ring)"
            )
        return found

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        return {
            "status": "ok",
            "states": self.engine.index.num_states,
            "vocabulary": self.engine.index.vocabulary_size,
            "models": len(self.models),
        }

    # -- plumbing ---------------------------------------------------------------------

    def _observed(
        self,
        endpoint: str,
        client: str,
        fn: Callable[[], dict],
        request_id: Optional[str] = None,
    ) -> dict:
        """Run one endpoint body under a span, booking counters/latency."""
        start = self.clock()
        status = 200
        trace = (
            self.telemetry.begin(endpoint, client, request_id)
            if self.telemetry is not None
            else None
        )
        try:
            with self.recorder.span("serve_request", endpoint=endpoint):
                if trace is not None:
                    with active_request(trace):
                        response = fn()
                else:
                    response = fn()
        except ServeError as exc:
            status = exc.status
            raise
        except Exception:
            status = 500
            raise
        finally:
            elapsed_ms = (self.clock() - start) * 1000.0
            self.registry.inc("serve.requests", endpoint=endpoint, status=status)
            self.registry.observe("serve.request_ms", elapsed_ms, endpoint=endpoint)
            if trace is not None:
                self.telemetry.finish(trace, status, elapsed_ms)
            if self.recorder.enabled:
                self.recorder.emit(
                    SERVE_REQUEST,
                    endpoint=endpoint,
                    status=status,
                    client=client,
                )
        return response

    @staticmethod
    def _int_param(
        params: Mapping[str, str], name: str, default: int, minimum: int
    ) -> int:
        raw = params.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise BadRequest(f"parameter {name!r} must be an integer, got {raw!r}")
        if value < minimum:
            raise BadRequest(f"parameter {name!r} must be >= {minimum}, got {value}")
        return value
