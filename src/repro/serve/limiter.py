"""Per-client token-bucket rate limiting for the serving layer.

Each client (the ``X-Client-Id`` header, falling back to the peer
address) owns one bucket holding up to ``burst`` tokens; tokens refill
continuously at ``rate`` per second and every admitted request spends
one.  A drained bucket rejects with the exact time until the next token
— the handler turns that into ``429`` + ``Retry-After``.

Refill is computed from an injectable clock (seconds), so the tests
drive it on a virtual clock and the refill schedule is deterministic:
after ``burst`` admissions at t=0, request ``burst+1`` is rejected with
``retry_after == 1/rate`` exactly.

Rejections are booked as ``serve.ratelimited`` on the registry;
admissions as ``serve.admitted``.  The bucket map is itself LRU-bounded
so an open server cannot be grown without limit by spoofed client ids.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class RateDecision:
    """The outcome of one admission check."""

    allowed: bool
    #: Seconds until a token is available (0.0 when allowed).
    retry_after_s: float = 0.0


class TokenBucketLimiter:
    """Lock-protected per-client token buckets with continuous refill."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        max_clients: int = 1024,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (tokens per second)")
        if burst < 1:
            raise ValueError("burst must be >= 1 (bucket capacity)")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_clients = max_clients
        self._lock = threading.Lock()
        #: client -> (tokens, last refill timestamp in clock seconds).
        self._buckets: "OrderedDict[str, tuple[float, float]]" = OrderedDict()

    def check(self, client: str) -> RateDecision:
        """Admit or reject one request from ``client``."""
        now = self.clock()
        with self._lock:
            tokens, last = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                decision = RateDecision(allowed=True)
                tokens -= 1.0
                self.registry.inc("serve.admitted")
            else:
                decision = RateDecision(
                    allowed=False, retry_after_s=(1.0 - tokens) / self.rate
                )
                self.registry.inc("serve.ratelimited")
            self._buckets[client] = (tokens, now)
            self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        return decision

    def tokens(self, client: str) -> float:
        """Current token balance of ``client`` (refilled to now)."""
        now = self.clock()
        with self._lock:
            tokens, last = self._buckets.get(client, (self.burst, now))
            return min(self.burst, tokens + (now - last) * self.rate)

    @property
    def rejections(self) -> int:
        return int(self.registry.counter("serve.ratelimited"))
