"""The HTTP query-serving layer (chapters 5–6, served to searchers).

Stdlib-only: a :class:`~http.server.ThreadingHTTPServer` front end over
the :class:`~repro.search.SearchEngine`, with an LRU+TTL query cache,
per-client token-bucket rate limiting, deterministic latency injection
for soak realism, Prometheus metrics at ``/metrics``, and §5.4 result
reconstruction at ``/result``.  ``repro.serve.loadtest`` is the paired
closed-loop load generator; ``python -m repro.serve.smoke`` is the
end-to-end gate.
"""

from repro.serve.cache import QueryCache
from repro.serve.handlers import (
    CLIENT_HEADER,
    REQUEST_ID_HEADER,
    SearchRequestHandler,
    make_handler,
)
from repro.serve.limiter import RateDecision, TokenBucketLimiter
from repro.serve.loadtest import (
    LoadTestConfig,
    LoadTestReport,
    percentile,
    run_loadtest,
)
from repro.serve.server import SearchServer
from repro.serve.telemetry import (
    DEFAULT_SLOS,
    LiveDoctorConfig,
    ServingTelemetry,
    TelemetryConfig,
    format_top,
    sample_request,
)
from repro.serve.service import (
    BadRequest,
    NotFound,
    RateLimited,
    SearchService,
    ServeConfig,
    ServeError,
    UpstreamFailed,
)

__all__ = [
    "QueryCache",
    "TokenBucketLimiter",
    "RateDecision",
    "SearchService",
    "ServeConfig",
    "ServeError",
    "BadRequest",
    "NotFound",
    "RateLimited",
    "UpstreamFailed",
    "SearchServer",
    "SearchRequestHandler",
    "make_handler",
    "CLIENT_HEADER",
    "REQUEST_ID_HEADER",
    "TelemetryConfig",
    "ServingTelemetry",
    "LiveDoctorConfig",
    "DEFAULT_SLOS",
    "sample_request",
    "format_top",
    "LoadTestConfig",
    "LoadTestReport",
    "run_loadtest",
    "percentile",
]
