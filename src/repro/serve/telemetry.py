"""Live serving telemetry: windows, sampled traces, SLOs, live doctor.

Everything the serving tier knew about itself used to be post-hoc: the
trace doctor reads finished JSONL files, percentiles existed only in
the load-test report after the run ended.  :class:`ServingTelemetry`
closes that gap in-process:

* **rolling windows** — per-endpoint request/error/latency windows plus
  global cache, throttle and index read-amplification counters, all on
  the service's injectable clock (``/debug/vars``);
* **per-request deep tracing** — every request gets a
  :class:`~repro.obs.reqtrace.RequestTrace`; a deterministic hash
  sample of them is retained in full, and a tail ring *always* keeps
  slow and failed requests, so "what did that one request do" is
  answerable after the fact (``/debug/trace?id=...``) without paying
  for full retention;
* **slow-query log** — the most recent slow ``/search`` requests with
  their query text and index accounting (``/debug/slow``);
* **SLO burn rates** — :class:`~repro.obs.slo.SLOTracker` per
  configured objective (``/debug/slo``);
* **a live doctor** — sliding-window rules (cache collapse, 429 storm,
  segment read amplification) plus the SLO burn-rate findings, emitted
  in the established :class:`~repro.obs.doctor.Finding` format.

The whole layer is wall-clock-frequency work: a few dict/ring updates
per request, no locks held across I/O, nothing on the engine hot path.
``bench_serving`` asserts the telemetry-on/off throughput ratio.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.doctor import Finding
from repro.obs.reqtrace import RequestTrace
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.slo import SLO, BurnRateRule, DEFAULT_BURN_RULES, SLOTracker
from repro.obs.window import RollingCounter, RollingSketch


@dataclass(frozen=True)
class LiveDoctorConfig:
    """Thresholds of the sliding-window serving rules."""

    #: serve-cache-collapse: windowed hit rate below the floor.
    cache_min_lookups: int = 20
    cache_min_hit_rate: float = 0.10
    #: throttle-storm: windowed 429 share of admissions above the cap.
    throttle_min_requests: int = 20
    throttle_max_ratio: float = 0.20
    #: segment-read-amplification: windowed decoded-block fraction.
    amp_min_blocks: int = 256
    amp_max_decode_fraction: float = 0.50


#: Default serving SLOs: three nines of availability and 99% of
#: requests under 250 ms, both on a one-hour budget window.
DEFAULT_SLOS = (
    SLO("availability", objective=0.999, window_s=3600.0),
    SLO("latency-p99", objective=0.99, latency_ms=250.0, window_s=3600.0),
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Shape of one serving process's live telemetry."""

    #: Master switch; off restores the exact pre-telemetry serving path.
    enabled: bool = True
    #: Rolling-window length and slot count for the /debug/vars rates.
    window_s: float = 60.0
    slots: int = 12
    #: Keep every Nth request's full trace (deterministic hash of the
    #: request id, so reruns and distributed tiers sample identically).
    sample_every: int = 16
    #: A request at least this slow always lands in the tail ring and
    #: the slow-query log.
    slow_ms: float = 100.0
    #: Ring capacities (sampled traces / slow+error tail / slow log).
    trace_capacity: int = 256
    tail_capacity: int = 64
    slowlog_capacity: int = 64
    #: Relative accuracy of every latency sketch.
    relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    #: Objectives tracked for /debug/slo and the burn-rate doctor.
    slos: tuple[SLO, ...] = DEFAULT_SLOS
    burn_rules: tuple[BurnRateRule, ...] = DEFAULT_BURN_RULES
    doctor: LiveDoctorConfig = field(default_factory=LiveDoctorConfig)


def sample_request(request_id: str, sample_every: int) -> bool:
    """Deterministic hash sampling: same id -> same decision, anywhere."""
    if sample_every <= 1:
        return True
    return zlib.crc32(request_id.encode("utf-8")) % sample_every == 0


class _EndpointWindows:
    """The per-endpoint rolling aggregates."""

    __slots__ = ("requests", "errors", "latency_ms")

    def __init__(self, config: TelemetryConfig, clock) -> None:
        self.requests = RollingCounter(config.window_s, config.slots, clock)
        self.errors = RollingCounter(config.window_s, config.slots, clock)
        self.latency_ms = RollingSketch(
            config.window_s,
            config.slots,
            clock,
            relative_accuracy=config.relative_accuracy,
        )


class ServingTelemetry:
    """The live telemetry state of one serving process."""

    def __init__(
        self,
        config: TelemetryConfig = TelemetryConfig(),
        clock: Callable[[], float] = time.monotonic,
        registry=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.registry = registry
        self.started_s = clock()
        window = (config.window_s, config.slots, clock)
        #: endpoint -> rolling request/error/latency windows.
        self._endpoints: dict[str, _EndpointWindows] = {}
        self._endpoints_lock = threading.Lock()
        self.throttled = RollingCounter(*window)
        self.admissions = RollingCounter(*window)
        self.cache_hits = RollingCounter(*window)
        self.cache_misses = RollingCounter(*window)
        self.blocks_decoded = RollingCounter(*window)
        self.blocks_skipped = RollingCounter(*window)
        self.postings_decoded = RollingCounter(*window)
        #: Lifetime latency sketch (all endpoints), for /debug/vars.
        self.lifetime_ms = QuantileSketch(
            relative_accuracy=config.relative_accuracy
        )
        self.trackers = [
            SLOTracker(slo, clock=clock, rules=config.burn_rules)
            for slo in config.slos
        ]
        self._ring_lock = threading.Lock()
        #: request id -> trace dict; LRU rings, newest last.
        self._sampled: "OrderedDict[str, dict]" = OrderedDict()
        self._tail: "OrderedDict[str, dict]" = OrderedDict()
        self._slowlog: deque[dict] = deque(maxlen=config.slowlog_capacity)
        self._id_lock = threading.Lock()
        self._next_id = 0

    # -- request lifecycle --------------------------------------------------------

    def next_request_id(self) -> str:
        """A fresh server-assigned id (clients may send their own)."""
        with self._id_lock:
            self._next_id += 1
            return f"req-{self._next_id:08d}"

    def begin(
        self, endpoint: str, client: str, request_id: Optional[str] = None
    ) -> RequestTrace:
        """Open the trace for one admitted request."""
        if not request_id:
            request_id = self.next_request_id()
        return RequestTrace(
            request_id=request_id,
            endpoint=endpoint,
            client=client,
            started_s=self.clock(),
            sampled=sample_request(request_id, self.config.sample_every),
        )

    def finish(
        self, trace: RequestTrace, status: int, duration_ms: float
    ) -> None:
        """Book one finished request into every live aggregate."""
        trace.status = status
        trace.duration_ms = duration_ms
        windows = self._windows(trace.endpoint)
        windows.requests.add(1.0)
        windows.latency_ms.observe(duration_ms)
        self.lifetime_ms.observe(duration_ms)
        ok = status < 500
        if not ok:
            windows.errors.add(1.0)
        self.admissions.add(1.0)
        cached = trace.fields.get("cached")
        if cached is not None:
            (self.cache_hits if cached else self.cache_misses).add(1.0)
        if trace.blocks_decoded or trace.blocks_skipped:
            self.blocks_decoded.add(trace.blocks_decoded)
            self.blocks_skipped.add(trace.blocks_skipped)
            self.postings_decoded.add(trace.postings_decoded)
        for tracker in self.trackers:
            tracker.record(ok, duration_ms)
        slow = duration_ms >= self.config.slow_ms
        # The tail keeps anything worth a post-hoc look: slow requests
        # and every non-2xx (client errors included — a malformed query
        # is exactly what /debug/trace gets asked about).
        failed = status >= 400
        if trace.sampled or slow or failed:
            rendered = trace.to_dict()
            with self._ring_lock:
                if trace.sampled:
                    self._remember(
                        self._sampled, rendered, self.config.trace_capacity
                    )
                if slow or failed:
                    self._remember(
                        self._tail, rendered, self.config.tail_capacity
                    )
                if slow:
                    self._slowlog.append(
                        {
                            "request_id": trace.request_id,
                            "endpoint": trace.endpoint,
                            "query": trace.fields.get("query"),
                            "status": status,
                            "duration_ms": duration_ms,
                            "cached": cached,
                            "blocks_decoded": trace.blocks_decoded,
                            "blocks_skipped": trace.blocks_skipped,
                        }
                    )

    def record_rejection(
        self, endpoint: str, client: str, request_id: Optional[str] = None
    ) -> None:
        """Book one 429 (rejected before the endpoint body ran)."""
        self.admissions.add(1.0)
        self.throttled.add(1.0)

    @staticmethod
    def _remember(
        ring: "OrderedDict[str, dict]", rendered: dict, capacity: int
    ) -> None:
        ring[rendered["request_id"]] = rendered
        while len(ring) > capacity:
            ring.popitem(last=False)

    def _windows(self, endpoint: str) -> _EndpointWindows:
        windows = self._endpoints.get(endpoint)
        if windows is None:
            with self._endpoints_lock:
                windows = self._endpoints.get(endpoint)
                if windows is None:
                    windows = _EndpointWindows(self.config, self.clock)
                    self._endpoints[endpoint] = windows
        return windows

    # -- views --------------------------------------------------------------------

    def vars(self) -> dict:
        """The ``/debug/vars`` payload: windowed rates and quantiles."""
        config = self.config
        endpoints = {}
        with self._endpoints_lock:
            items = list(self._endpoints.items())
        for endpoint, windows in sorted(items):
            summary = windows.latency_ms.summary()
            endpoints[endpoint] = {
                "requests": windows.requests.total(),
                "rps": windows.requests.rate_per_s(),
                "errors": windows.errors.total(),
                "latency_ms": summary,
            }
        admissions = self.admissions.total()
        throttled = self.throttled.total()
        hits = self.cache_hits.total()
        misses = self.cache_misses.total()
        decoded = self.blocks_decoded.total()
        skipped = self.blocks_skipped.total()
        visited = decoded + skipped
        return {
            "uptime_s": self.clock() - self.started_s,
            "window_s": config.window_s,
            "endpoints": endpoints,
            "admissions": {
                "requests": admissions,
                "rps": self.admissions.rate_per_s(),
                "throttled": throttled,
                "throttle_ratio": throttled / admissions if admissions else 0.0,
            },
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            },
            "index": {
                "blocks_decoded": decoded,
                "blocks_skipped": skipped,
                "postings_decoded": self.postings_decoded.total(),
                "decode_fraction": decoded / visited if visited else 0.0,
            },
            "lifetime_latency_ms": self.lifetime_ms.summary(),
            "slo": {
                tracker.slo.name: tracker.status()["budget_spent"]
                for tracker in self.trackers
            },
            "traces": {
                "sampled": len(self._sampled),
                "tail": len(self._tail),
                "sample_every": config.sample_every,
                "slow_ms": config.slow_ms,
            },
        }

    def slo_status(self) -> dict:
        """The ``/debug/slo`` payload: objectives, budgets, burn rates."""
        findings = self.diagnose()
        return {
            "slos": [tracker.status() for tracker in self.trackers],
            "findings": [
                {
                    "rule": finding.rule,
                    "severity": finding.severity,
                    "message": finding.message,
                    "signal": finding.signal,
                    "threshold": finding.threshold,
                    "action": finding.action,
                    "evidence": dict(finding.evidence),
                }
                for finding in findings
            ],
        }

    def trace(self, request_id: str) -> Optional[dict]:
        """The retained trace of ``request_id``, if any ring still has it."""
        with self._ring_lock:
            found = self._sampled.get(request_id)
            if found is None:
                found = self._tail.get(request_id)
            return dict(found) if found is not None else None

    def slow_queries(self) -> list[dict]:
        """Newest-first slow-request log."""
        with self._ring_lock:
            return [dict(entry) for entry in reversed(self._slowlog)]

    # -- the live doctor ----------------------------------------------------------

    def diagnose(self) -> list[Finding]:
        """Sliding-window findings; empty when serving looks healthy."""
        config = self.config.doctor
        findings: list[Finding] = []

        hits = self.cache_hits.total()
        lookups = hits + self.cache_misses.total()
        if lookups >= config.cache_min_lookups:
            hit_rate = hits / lookups
            if hit_rate < config.cache_min_hit_rate:
                findings.append(
                    Finding(
                        rule="serve-cache-collapse",
                        severity="warning",
                        message=(
                            f"query-cache hit rate {hit_rate:.0%} over the "
                            f"last {lookups:.0f} lookups — the cache has "
                            f"stopped absorbing the workload"
                        ),
                        signal=hit_rate,
                        threshold=config.cache_min_hit_rate,
                        action=(
                            "check for a cache-busting query pattern "
                            "(unique offsets/limits), a TTL shorter than "
                            "the repeat interval, or an undersized LRU"
                        ),
                        evidence={"hits": hits, "lookups": lookups},
                    )
                )

        admissions = self.admissions.total()
        throttled = self.throttled.total()
        if admissions >= config.throttle_min_requests and throttled:
            ratio = throttled / admissions
            if ratio >= config.throttle_max_ratio:
                findings.append(
                    Finding(
                        rule="throttle-storm",
                        severity="warning",
                        message=(
                            f"{throttled:.0f}/{admissions:.0f} requests "
                            f"({ratio:.0%}) answered 429 in the window — "
                            f"clients are hammering drained buckets"
                        ),
                        signal=ratio,
                        threshold=config.throttle_max_ratio,
                        action=(
                            "raise rate_limit_rps/burst if the traffic is "
                            "legitimate, or identify the offending client "
                            "ids before they retry-storm the tier"
                        ),
                        evidence={
                            "throttled": throttled,
                            "admissions": admissions,
                        },
                    )
                )

        decoded = self.blocks_decoded.total()
        visited = decoded + self.blocks_skipped.total()
        if visited >= config.amp_min_blocks:
            fraction = decoded / visited
            if fraction > config.amp_max_decode_fraction:
                findings.append(
                    Finding(
                        rule="segment-read-amplification",
                        severity="warning",
                        message=(
                            f"queries decoded {fraction:.0%} of the posting "
                            f"blocks they visited ({decoded:.0f}/"
                            f"{visited:.0f}) — block-max skipping is not "
                            f"engaging"
                        ),
                        signal=fraction,
                        threshold=config.amp_max_decode_fraction,
                        action=(
                            "the workload may be unselective conjunctions, "
                            "or compaction has fallen behind (many small "
                            "segments defeat skip pointers): run "
                            "`repro-ajax index compact`"
                        ),
                        evidence={
                            "blocks_decoded": decoded,
                            "blocks_visited": visited,
                        },
                    )
                )

        for tracker in self.trackers:
            findings.extend(tracker.findings())
        return findings


# -- `repro-ajax top` rendering ---------------------------------------------------


def format_top(data: dict) -> str:
    """Render one ``/debug/vars`` snapshot as the ``top`` screen."""
    lines: list[str] = []
    window = data.get("window_s", 0)
    admissions = data.get("admissions", {})
    cache = data.get("cache", {})
    index = data.get("index", {})
    lines.append(
        f"repro-ajax top — last {window:g}s window, "
        f"uptime {data.get('uptime_s', 0.0):.0f}s"
    )
    lines.append(
        f"  admitted {admissions.get('requests', 0):.0f} req "
        f"({admissions.get('rps', 0.0):.1f} req/s), "
        f"{admissions.get('throttled', 0):.0f} throttled "
        f"({admissions.get('throttle_ratio', 0.0):.0%})"
    )
    lines.append(
        f"  cache    {cache.get('hit_rate', 0.0):6.1%} hit rate "
        f"({cache.get('hits', 0):.0f} hit / {cache.get('misses', 0):.0f} miss)"
    )
    lines.append(
        f"  index    {index.get('blocks_decoded', 0):.0f} blocks decoded / "
        f"{index.get('blocks_skipped', 0):.0f} skipped "
        f"(decode fraction {index.get('decode_fraction', 0.0):.0%})"
    )
    slo = data.get("slo", {})
    if slo:
        spent = ", ".join(
            f"{name} {value:.0%}" for name, value in sorted(slo.items())
        )
        lines.append(f"  slo budget spent: {spent}")
    endpoints = data.get("endpoints", {})
    if endpoints:
        lines.append(
            f"  {'endpoint':<10} {'req':>7} {'rps':>8} {'err':>5} "
            f"{'p50ms':>9} {'p95ms':>9} {'p99ms':>9}"
        )
        for endpoint, stats in sorted(endpoints.items()):
            latency = stats.get("latency_ms", {})
            lines.append(
                f"  {endpoint:<10} {stats.get('requests', 0):>7.0f} "
                f"{stats.get('rps', 0.0):>8.1f} {stats.get('errors', 0):>5.0f} "
                f"{latency.get('p50', 0.0):>9.3f} "
                f"{latency.get('p95', 0.0):>9.3f} "
                f"{latency.get('p99', 0.0):>9.3f}"
            )
    traces = data.get("traces", {})
    if traces:
        lines.append(
            f"  traces   {traces.get('sampled', 0)} sampled (1/"
            f"{traces.get('sample_every', 0)}), {traces.get('tail', 0)} "
            f"slow/error retained (slow >= {traces.get('slow_ms', 0):g}ms)"
        )
    return "\n".join(lines)
