"""The query-result cache: LRU eviction + TTL expiry, metered.

Search traffic is heavily head-skewed (the Table 7.4 workload repeats a
handful of popular queries), so even a small LRU in front of the engine
absorbs most of the serving load.  Entries expire after a TTL because a
re-crawl may replace the index underneath a long-running server.

The clock is injectable (any zero-argument callable returning seconds)
so TTL behaviour is testable deterministically; production uses
``time.monotonic``.  Every outcome is booked on a
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``serve.cache_hit`` / ``serve.cache_miss`` — lookup outcomes
  (an expired entry counts as a miss, *and* as ``serve.cache_expired``),
* ``serve.cache_evicted`` — LRU pressure evictions,
* ``serve.cache_size`` — current entry count (gauge).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

from repro.obs import MetricsRegistry


class QueryCache:
    """A lock-protected LRU + TTL map from query keys to responses."""

    def __init__(
        self,
        max_entries: int = 256,
        ttl_s: Optional[float] = 30.0,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0 (0 disables the cache)")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (None = never expires)")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: key -> (value, expiry deadline in clock seconds, or None).
        self._entries: "OrderedDict[Hashable, tuple[Any, Optional[float]]]" = (
            OrderedDict()
        )

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, or None on miss/expiry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.registry.inc("serve.cache_miss")
                return None
            value, deadline = entry
            if deadline is not None and self.clock() >= deadline:
                del self._entries[key]
                self.registry.inc("serve.cache_expired")
                self.registry.inc("serve.cache_miss")
                self.registry.set_gauge("serve.cache_size", len(self._entries))
                return None
            self._entries.move_to_end(key)
            self.registry.inc("serve.cache_hit")
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``; evicts the least-recently-used entry if full."""
        if self.max_entries == 0:
            return
        deadline = None if self.ttl_s is None else self.clock() + self.ttl_s
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, deadline)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.registry.inc("serve.cache_evicted")
            self.registry.set_gauge("serve.cache_size", len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.registry.set_gauge("serve.cache_size", 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- accounting --------------------------------------------------------------

    @property
    def hits(self) -> int:
        return int(self.registry.counter("serve.cache_hit"))

    @property
    def misses(self) -> int:
        return int(self.registry.counter("serve.cache_miss"))

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
