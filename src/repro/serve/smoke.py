"""Serving smoke test: boot, query, verify, shut down.

``python -m repro.serve.smoke`` (the ``make serve-smoke`` gate) crawls
a small synthetic YouTube, boots a real HTTP server on an ephemeral
port, drives a mini Table 7.4 workload over actual sockets, and checks
the serving contract end to end:

1. every workload query answers 200, and a second pass answers from
   the cache (nonzero ``serve.cache_hit`` on ``/metrics``),
2. ``/result`` replays a hit state and returns its HTML,
3. the error mapping holds: blank query → 400, unknown endpoint → 404,
4. a drained token bucket answers 429 with a ``Retry-After`` header,
5. the server shuts down cleanly (the accept thread joins).

Exit status 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from urllib.parse import urlencode

from repro.clock import CostModel
from repro.crawler import AjaxCrawler, CrawlerConfig
from repro.search import SearchEngine
from repro.serve.server import SearchServer
from repro.serve.service import SearchService, ServeConfig
from repro.sites import SiteConfig, SyntheticYouTube, paper_queries


def _get(url: str, client: str = "smoke") -> tuple[int, dict | str, dict]:
    """(status, parsed body, headers) for one GET; 4xx/5xx don't raise."""
    request = urllib.request.Request(url, headers={"X-Client-Id": client})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            status, body, headers = (
                response.status,
                response.read(),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        status, body, headers = error.code, error.read(), dict(error.headers)
    text = body.decode("utf-8")
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, json.loads(text), headers
    return status, text, headers


def run_smoke(num_videos: int = 12, verbose: bool = True) -> int:
    """Run the smoke sequence; returns a process exit status."""
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    def say(message: str) -> None:
        if verbose:
            print(f"[serve-smoke] {message}")

    site = SyntheticYouTube(SiteConfig(num_videos=num_videos, seed=7))
    crawler = AjaxCrawler(
        site, CrawlerConfig(), cost_model=CostModel(network_jitter=0.0)
    )
    crawled = crawler.crawl([site.video_url(i) for i in range(num_videos)])
    engine = SearchEngine.build(crawled.models)
    say(
        f"crawled {len(crawled.models)} pages -> "
        f"{engine.index.num_states} states indexed"
    )

    service = SearchService(
        engine,
        ServeConfig(rate_limit_rps=50.0, rate_limit_burst=4.0),
        models=crawled.models,
        site=site,
    )
    queries = [query.text for query in paper_queries()]
    with SearchServer(service) as server:
        say(f"serving on {server.url}")

        # 1. The mini workload, twice: second pass must come from cache.
        first_hit: tuple[str, str] | None = None
        for round_number in range(2):
            for offset, query in enumerate(queries):
                client = f"workload-{offset}"  # spread the token buckets
                status, body, _ = _get(
                    f"{server.url}/search?{urlencode({'q': query})}", client
                )
                check(status == 200, f"{query!r} answered {status}, wanted 200")
                if status != 200:
                    continue
                check(
                    body["cached"] == (round_number == 1),
                    f"{query!r} round {round_number}: cached={body['cached']}",
                )
                if first_hit is None and body["results"]:
                    top = body["results"][0]
                    first_hit = (top["uri"], top["state"])
        check(first_hit is not None, "no workload query returned any result")

        # 2. Replay one hit state.
        if first_hit is not None:
            uri, state = first_hit
            status, body, _ = _get(
                f"{server.url}/result?{urlencode({'uri': uri, 'state': state})}",
                "replay",
            )
            check(status == 200, f"/result answered {status}, wanted 200")
            check(
                status == 200 and bool(body["html"]),
                "/result returned no HTML",
            )
            say(f"replayed {uri} {state}: {status}")

        # 3. Error mapping.
        status, _, _ = _get(f"{server.url}/search?q=++", "errors")
        check(status == 400, f"blank query answered {status}, wanted 400")
        status, _, _ = _get(f"{server.url}/nope", "errors")
        check(status == 404, f"unknown endpoint answered {status}, wanted 404")

        # 4. Rate limiting: burst of 4, so a run of 6 must see a 429,
        # and every rejection must carry Retry-After.
        responses = [
            _get(f"{server.url}/search?q=video", "burster") for _ in range(6)
        ]
        statuses = [status for status, _, _ in responses]
        check(429 in statuses, f"no 429 in burst statuses {statuses}")
        for status, _, headers in responses:
            if status == 429:
                check(
                    "Retry-After" in headers,
                    "429 response carries no Retry-After header",
                )

        # Metrics: requests and cache hits must both be visible.
        status, text, _ = _get(f"{server.url}/metrics", "metrics")
        check(status == 200, f"/metrics answered {status}, wanted 200")
        check(
            isinstance(text, str) and "serve_requests" in text,
            "serve_requests missing from /metrics",
        )
        hits = service.cache.hits
        check(hits >= len(queries), f"expected >= {len(queries)} cache hits, got {hits}")
        say(
            f"workload done: cache {hits} hit(s) / "
            f"{service.cache.misses} miss(es), "
            f"{service.limiter.rejections} rate-limited"
        )

    # 5. Clean shutdown (the context manager already stopped it).
    check(server._thread is None, "server thread did not join on stop()")

    if failures:
        for failure in failures:
            print(f"[serve-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    say("ok")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
