"""Exception hierarchy shared by every subsystem of the reproduction.

Each substrate raises its own subclass so that callers can catch failures
at the granularity they care about (e.g. a crawler may tolerate a
``JavascriptError`` in one page but must not swallow a ``CrawlerError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DomError(ReproError):
    """Malformed markup or an illegal DOM operation."""


class HtmlParseError(DomError):
    """The HTML tokenizer/parser could not make sense of the input."""


class JavascriptError(ReproError):
    """Base class for errors raised by the JavaScript substrate."""


class JsSyntaxError(JavascriptError):
    """The script could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class JsRuntimeError(JavascriptError):
    """The script failed while executing (bad reference, bad call, ...)."""


class JsReferenceError(JsRuntimeError):
    """An identifier was read before any binding for it existed."""


class JsTypeError(JsRuntimeError):
    """A value was used in a way its type does not support."""


class NetworkError(ReproError):
    """A simulated network request could not be served."""


class RetriesExhausted(NetworkError):
    """Every allowed attempt of a request failed.

    Carries the last observed status and the attempt count so callers
    (XHR surfacing, per-page failure reports) can degrade gracefully.
    """

    def __init__(self, url: str, status: int, attempts: int):
        super().__init__(
            f"request for {url} failed with status {status} "
            f"after {attempts} attempt(s)"
        )
        self.url = url
        self.status = status
        self.attempts = attempts


class BrowserError(ReproError):
    """The browser substrate failed to load or operate on a page."""


class CrawlerError(ReproError):
    """The crawler hit an unrecoverable condition."""


class SearchError(ReproError):
    """Indexing or query processing failed."""


class PartitionError(ReproError):
    """URL partitioning was given inconsistent inputs."""
