"""Host bindings exposing the DOM to page scripts.

``document`` and element objects are thin :class:`HostObject` wrappers
over the :mod:`repro.dom` tree.  Mutations performed by scripts (most
importantly ``innerHTML`` assignment, the action of every transition in
the thesis' event model, Figure 2.1) flag the owning page as dirty so
the crawler can detect that an event changed the DOM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.dom import Element, Text, inner_html, parse_fragment
from repro.errors import JsTypeError
from repro.js.values import HostObject, NativeFunction, UNDEFINED, to_string

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.page import Page


class ElementHost(HostObject):
    """Script-side view of one :class:`~repro.dom.Element`."""

    host_class = "HTMLElement"

    def __init__(self, element: Element, page: "Page") -> None:
        self.element = element
        self.page = page

    def js_get(self, name: str) -> Any:
        element = self.element
        if name == "innerHTML":
            return inner_html(element)
        if name == "id":
            return element.id or ""
        if name == "tagName":
            return element.tag.upper()
        if name == "textContent":
            return element.text_content
        if name == "value":
            # Form controls: the live value is mirrored in the attribute
            # so that snapshots and state hashes include it.
            return element.get_attribute("value") or ""
        if name == "name":
            return element.get_attribute("name") or ""
        if name == "type":
            return element.get_attribute("type") or ""
        if name == "parentNode":
            if element.parent is None:
                return None
            return self.page.wrap_element(element.parent)
        if name == "getAttribute":
            return NativeFunction("getAttribute", self._js_get_attribute)
        if name == "setAttribute":
            return NativeFunction("setAttribute", self._js_set_attribute)
        if name == "appendChild":
            return NativeFunction("appendChild", self._js_append_child)
        if name == "getElementsByTagName":
            return NativeFunction("getElementsByTagName", self._js_by_tag)
        if name == "style":
            # Accept style reads/writes without modelling CSS.
            return _StyleHost(self)
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        element = self.element
        if name == "innerHTML":
            element.replace_children(parse_fragment(to_string(value)))
            self.page.note_dom_mutation(parse_bytes=len(to_string(value)))
            return
        if name == "textContent":
            element.replace_children([Text(to_string(value))])
            self.page.note_dom_mutation(parse_bytes=0)
            return
        if name == "id":
            element.set_attribute("id", to_string(value))
            self.page.note_dom_mutation(parse_bytes=0)
            return
        if name == "value":
            element.set_attribute("value", to_string(value))
            self.page.note_dom_mutation(parse_bytes=0)
            return
        raise JsTypeError(f"cannot set element property {name!r}")

    def js_keys(self) -> list[str]:
        return ["innerHTML", "id", "tagName", "textContent"]

    # -- methods ---------------------------------------------------------------

    def _js_get_attribute(self, interp: Any, this: Any, args: list[Any]) -> Any:
        value = self.element.get_attribute(to_string(args[0]) if args else "")
        return value if value is not None else None

    def _js_set_attribute(self, interp: Any, this: Any, args: list[Any]) -> Any:
        if len(args) < 2:
            raise JsTypeError("setAttribute(name, value)")
        self.element.set_attribute(to_string(args[0]), to_string(args[1]))
        self.page.note_dom_mutation(parse_bytes=0)
        return UNDEFINED

    def _js_append_child(self, interp: Any, this: Any, args: list[Any]) -> Any:
        child = args[0] if args else None
        if not isinstance(child, ElementHost):
            raise JsTypeError("appendChild expects an element")
        self.element.append_child(child.element)
        self.page.note_dom_mutation(parse_bytes=0)
        return child

    def _js_by_tag(self, interp: Any, this: Any, args: list[Any]) -> Any:
        from repro.js.values import JSArray

        tag = to_string(args[0]) if args else ""
        hosts = [self.page.wrap_element(e) for e in self.element.get_elements_by_tag(tag)]
        return JSArray(hosts)


class _StyleHost(HostObject):
    """Accepts arbitrary style property writes; CSS is not modelled."""

    host_class = "CSSStyleDeclaration"

    def __init__(self, owner: ElementHost) -> None:
        self.owner = owner

    def js_get(self, name: str) -> Any:
        return ""

    def js_set(self, name: str, value: Any) -> None:
        # Style changes do not affect state identity (text retrieval only).
        return


class DocumentHost(HostObject):
    """Script-side view of the page's document."""

    host_class = "HTMLDocument"

    def __init__(self, page: "Page") -> None:
        self.page = page

    def js_get(self, name: str) -> Any:
        if name == "getElementById":
            return NativeFunction("getElementById", self._js_get_element_by_id)
        if name == "createElement":
            return NativeFunction("createElement", self._js_create_element)
        if name == "getElementsByTagName":
            return NativeFunction("getElementsByTagName", self._js_by_tag)
        if name == "body":
            body = self.page.document.body
            return self.page.wrap_element(body) if body is not None else None
        if name == "title":
            titles = self.page.document.root.get_elements_by_tag("title")
            return titles[0].text_content if titles else ""
        if name == "URL" or name == "location":
            return self.page.url
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        raise JsTypeError(f"cannot set document property {name!r}")

    def js_keys(self) -> list[str]:
        return ["getElementById", "createElement", "body", "title", "URL"]

    def _js_get_element_by_id(self, interp: Any, this: Any, args: list[Any]) -> Any:
        element_id = to_string(args[0]) if args else ""
        element = self.page.document.get_element_by_id(element_id)
        if element is None:
            return None
        return self.page.wrap_element(element)

    def _js_create_element(self, interp: Any, this: Any, args: list[Any]) -> Any:
        tag = to_string(args[0]) if args else "div"
        return self.page.wrap_element(self.page.document.create_element(tag))

    def _js_by_tag(self, interp: Any, this: Any, args: list[Any]) -> Any:
        from repro.js.values import JSArray

        tag = to_string(args[0]) if args else ""
        elements = self.page.document.get_elements_by_tag(tag)
        return JSArray([self.page.wrap_element(e) for e in elements])


class WindowHost(HostObject):
    """A minimal ``window``: enough surface for realistic page scripts."""

    host_class = "Window"

    def __init__(self, page: "Page") -> None:
        self.page = page

    def js_get(self, name: str) -> Any:
        if name == "document":
            return self.page.document_host
        if name == "location":
            return self.page.url
        if name == "setTimeout":
            # Timers run "immediately": crawling observes settled states.
            return NativeFunction("setTimeout", self._js_set_timeout)
        if name == "alert":
            return NativeFunction("alert", lambda interp, this, args: UNDEFINED)
        return UNDEFINED

    def js_set(self, name: str, value: Any) -> None:
        raise JsTypeError(f"cannot set window property {name!r}")

    def js_keys(self) -> list[str]:
        return ["document", "location", "setTimeout", "alert"]

    def _js_set_timeout(self, interp: Any, this: Any, args: list[Any]) -> Any:
        from repro.js.values import is_callable

        if args and is_callable(args[0]):
            interp.call_function(args[0], [])
        return 0.0
