"""The browser: loads URLs into :class:`~repro.browser.page.Page` objects.

One :class:`Browser` bundles the simulated network gateway, the virtual
clock/cost model and the JavaScript policy (enabled or not, hot-node
policy attached or not).  A traditional crawler uses a browser with
``javascript_enabled=False``; the AJAX crawler uses a full one.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.page import PARSE_ACCOUNT, Page
from repro.clock import CostModel, SimClock
from repro.dom import parse_document
from repro.errors import BrowserError
from repro.js import Interpreter
from repro.net.faults import RetryPolicy
from repro.net.gateway import NetworkGateway
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats
from repro.net.xhr import HotCallObserver, HotCallPolicy, make_xhr_constructor
from repro.obs import NULL_RECORDER


class Browser:
    """A headless browser over the simulated network."""

    def __init__(
        self,
        server: SimulatedServer,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[NetworkStats] = None,
        javascript_enabled: bool = True,
        hot_policy: Optional[HotCallPolicy] = None,
        hot_observer: Optional[HotCallObserver] = None,
        max_js_steps: int = 2_000_000,
        retry_policy: Optional[RetryPolicy] = None,
        recorder=NULL_RECORDER,
        incremental_hashing: bool = True,
        trace_js_frames: bool = False,
    ) -> None:
        self.clock = clock or SimClock()
        self.cost_model = cost_model or CostModel()
        self.stats = stats or NetworkStats()
        self.recorder = recorder
        self.recorder.bind_clock(self.clock)
        self.gateway = NetworkGateway(
            server,
            self.clock,
            self.cost_model,
            self.stats,
            retry_policy=retry_policy,
            recorder=recorder,
        )
        self.javascript_enabled = javascript_enabled
        self.hot_policy = hot_policy
        self.hot_observer = hot_observer
        self.max_js_steps = max_js_steps
        self.incremental_hashing = incremental_hashing
        #: When True (and the recorder has spans on) the interpreter
        #: emits one ``js_fn`` span per script function call — heavy,
        #: but the input hot-node attribution flamegraphs need.
        self.trace_js_frames = trace_js_frames

    def load(self, url: str, run_scripts: bool = True, run_onload: bool = True) -> Page:
        """Fetch ``url`` and build a page.

        ``run_scripts``/``run_onload`` control the AJAX-specific
        initialisation; both are ignored when JavaScript is disabled.
        """
        response = self.gateway.fetch_page(url)
        if not response.ok:
            raise BrowserError(f"failed to load {url}: HTTP {int(response.status)}")
        self.clock.advance(
            self.cost_model.html_parse_ms(response.body_bytes), PARSE_ACCOUNT
        )
        document = parse_document(response.body, url=url)
        interpreter = Interpreter(
            max_steps=self.max_js_steps,
            recorder=self.recorder if self.trace_js_frames else NULL_RECORDER,
        )
        page = Page(
            url=url,
            document=document,
            interpreter=interpreter,
            clock=self.clock,
            cost_model=self.cost_model,
            javascript_enabled=self.javascript_enabled,
            incremental_hashing=self.incremental_hashing,
            recorder=self.recorder,
        )
        interpreter.define_global(
            "XMLHttpRequest",
            make_xhr_constructor(
                self.gateway,
                base_url=url,
                policy=self.hot_policy,
                observer=self.hot_observer,
            ),
        )
        if self.javascript_enabled and run_scripts:
            page.run_scripts()
            if run_onload:
                page.run_onload()
        return page
