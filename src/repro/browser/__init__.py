"""Browser substrate: pages, host bindings and event dispatch.

Ties the DOM, JavaScript and network substrates together into the
headless browser the crawlers drive.
"""

from repro.browser.bindings import DocumentHost, ElementHost, WindowHost
from repro.browser.browser import Browser
from repro.browser.events import (
    DEFAULT_EVENT_TYPES,
    ElementLocator,
    EventBinding,
    enumerate_events,
    locate,
    onload_handler,
)
from repro.browser.page import JS_ACCOUNT, PARSE_ACCOUNT, Page, PageSnapshot

__all__ = [
    "Browser",
    "Page",
    "PageSnapshot",
    "JS_ACCOUNT",
    "PARSE_ACCOUNT",
    "DocumentHost",
    "ElementHost",
    "WindowHost",
    "DEFAULT_EVENT_TYPES",
    "ElementLocator",
    "EventBinding",
    "enumerate_events",
    "locate",
    "onload_handler",
]
