"""Event enumeration and addressing.

Chapter 2 models an AJAX page as states connected by transitions, each
triggered by a user event on a *source element*.  This module finds
those events (``on*`` attributes in the DOM) and gives each a locator
that survives DOM re-parsing, so a rolled-back page can re-resolve the
same source element.

Per section 3.2 ("Irrelevant events") only the most important event
types are considered by default: click, double-click, mouse-over and
mouse-down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dom import Document, Element

#: Event attributes considered by default, most relevant first.
DEFAULT_EVENT_TYPES = ("onclick", "ondblclick", "onmouseover", "onmousedown")

#: The page-load event handled specially by the crawler (Algorithm 3.1.1).
ONLOAD = "onload"


@dataclass(frozen=True)
class ElementLocator:
    """Addresses an element by id when available, else by structural path.

    The structural path is the sequence of child indexes from the root,
    which stays valid across serialize/re-parse round trips (used after
    the crawler rolls a page back to an earlier state).
    """

    element_id: Optional[str]
    path: tuple[int, ...]

    def resolve(self, document: Document) -> Optional[Element]:
        """Find the addressed element in ``document`` (or ``None``)."""
        if self.element_id is not None:
            found = document.get_element_by_id(self.element_id)
            if found is not None:
                return found
        node = document.root
        for index in self.path:
            children = [child for child in node.children if isinstance(child, Element)]
            if index >= len(children):
                return None
            node = children[index]
        return node if isinstance(node, Element) else None

    def describe(self) -> str:
        if self.element_id is not None:
            return f"#{self.element_id}"
        return "/" + "/".join(str(index) for index in self.path)


def locate(element: Element, document: Document) -> ElementLocator:
    """Build a locator for ``element`` within ``document``."""
    path: list[int] = []
    node = element
    while node.parent is not None:
        siblings = [child for child in node.parent.children if isinstance(child, Element)]
        path.append(siblings.index(node))
        node = node.parent
    return ElementLocator(element_id=element.id, path=tuple(reversed(path)))


@dataclass(frozen=True)
class EventBinding:
    """One invocable event: where it sits and what script it runs.

    Corresponds to a table row of the thesis' event tables (Table 4.1):
    the source element, the trigger type and the handler code.

    ``input_value`` supports the forms extension (thesis future work):
    when set, dispatching first writes the value into the source input
    element, then runs the handler — simulating a user typing and
    triggering ``onkeyup``/``onchange``.
    """

    locator: ElementLocator
    event_type: str
    handler: str
    input_value: Optional[str] = None

    @property
    def key(self) -> tuple[str, str, str, Optional[str]]:
        """Identity of the event for deduplication within one state."""
        return (self.locator.describe(), self.event_type, self.handler, self.input_value)

    def describe(self) -> str:
        base = f"{self.event_type}@{self.locator.describe()}"
        if self.input_value is not None:
            return f"{base}[value={self.input_value!r}]"
        return base


def enumerate_events(
    document: Document,
    event_types: Iterable[str] = DEFAULT_EVENT_TYPES,
) -> list[EventBinding]:
    """All invocable events in ``document``, in document order.

    The body ``onload`` is excluded: Algorithm 3.1.1 runs it once during
    initialisation, not as a crawlable transition.
    """
    wanted = tuple(event_types)
    bindings: list[EventBinding] = []
    elements = [document.root] + list(document.root.iter_elements())
    for element in elements:
        for event_type in wanted:
            handler = element.get_attribute(event_type)
            if handler:
                bindings.append(
                    EventBinding(
                        locator=locate(element, document),
                        event_type=event_type,
                        handler=handler,
                    )
                )
    return bindings


def onload_handler(document: Document) -> Optional[str]:
    """The body's ``onload`` script, if any."""
    body = document.body
    if body is None:
        return None
    handler = body.get_attribute(ONLOAD)
    return handler or None
