"""A loaded page: DOM plus a live JavaScript context.

The :class:`Page` is what the crawler operates on.  It can

* run the page's ``<script>`` elements and the body ``onload``,
* enumerate and dispatch user events (producing new DOM states),
* report whether the last dispatch changed the DOM,
* snapshot and restore its complete state (DOM **and** script
  variables), which implements the ``appModel.rollback(t)`` step of
  Algorithm 3.1.1.

All JavaScript execution charges virtual time proportional to the
number of interpreter steps; DOM re-parses charge parse time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.browser.bindings import DocumentHost, ElementHost, WindowHost
from repro.browser.events import (
    DEFAULT_EVENT_TYPES,
    EventBinding,
    enumerate_events,
    onload_handler,
)
from repro.clock import CostModel, SimClock
from repro.dom import (
    Document,
    DomHashes,
    Element,
    HashStats,
    hash_tree,
    parse_document,
    reference_state_hash,
    serialize,
)
from repro.errors import BrowserError, JavascriptError
from repro.js import Interpreter
from repro.obs import NULL_RECORDER

#: Clock account for JavaScript execution.
JS_ACCOUNT = "javascript"
#: Clock account for HTML parsing / DOM (re)construction.
PARSE_ACCOUNT = "parsing"


@dataclass
class PageSnapshot:
    """Everything needed to restore a page to an earlier state."""

    html: str
    globals_snapshot: dict[str, Any]
    hash: str
    #: Lazily parsed master tree (with warm Merkle hash caches) that
    #: :meth:`Page.restore` clones instead of re-parsing ``html`` on
    #: every rollback.  Populated on first restore; never mutated.
    master: Optional[Document] = None


class Page:
    """One loaded AJAX page."""

    def __init__(
        self,
        url: str,
        document: Document,
        interpreter: Interpreter,
        clock: SimClock,
        cost_model: CostModel,
        javascript_enabled: bool = True,
        incremental_hashing: bool = True,
        recorder=NULL_RECORDER,
    ) -> None:
        self.url = url
        self.document = document
        self.interpreter = interpreter
        self.clock = clock
        self.cost_model = cost_model
        self.javascript_enabled = javascript_enabled
        self.recorder = recorder
        #: When True (default) state/region hashing reuses the Merkle
        #: subtree caches and rollbacks clone a warm master tree; False
        #: reproduces the seed full-rewalk + re-parse behaviour (the
        #: baseline mode of the hashing benchmark).
        self.incremental_hashing = incremental_hashing
        #: Hashing work accounting for this page (all passes, all kinds).
        self.hash_stats = HashStats()
        self.document_host = DocumentHost(self)
        self.window_host = WindowHost(self)
        self._element_hosts: dict[int, ElementHost] = {}
        self._dirty = False
        #: JavaScript errors swallowed while loading page scripts.
        self.script_errors: list[JavascriptError] = []
        interpreter.define_global("document", self.document_host)
        interpreter.define_global("window", self.window_host)

    # -- host helpers ------------------------------------------------------------

    def wrap_element(self, element: Element) -> ElementHost:
        """The (cached) host wrapper for a DOM element."""
        host = self._element_hosts.get(id(element))
        if host is None or host.element is not element:
            host = ElementHost(element, self)
            self._element_hosts[id(element)] = host
        return host

    def note_dom_mutation(self, parse_bytes: int = 0) -> None:
        """Called by bindings whenever a script mutates the DOM."""
        self._dirty = True
        if parse_bytes:
            self.clock.advance(self.cost_model.html_parse_ms(parse_bytes), PARSE_ACCOUNT)

    # -- script execution ----------------------------------------------------------

    def run_scripts(self) -> None:
        """Execute all ``<script>`` elements in document order.

        Like a browser, a script block that fails (syntax or runtime
        error) is skipped without aborting the page: later blocks still
        run.  Failures are collected in :attr:`script_errors`.
        """
        if not self.javascript_enabled:
            return
        for script in self.document.root.get_elements_by_tag("script"):
            source = "".join(
                child.data for child in script.children if hasattr(child, "data")
            )
            if not source.strip():
                continue
            try:
                self.execute_js(source)
            except JavascriptError as error:
                self.script_errors.append(error)

    def run_onload(self) -> None:
        """Invoke the body ``onload`` handler (Algorithm 3.1.1 line 3).

        A failing onload is recorded in :attr:`script_errors` rather than
        raised: the crawl proceeds with whatever DOM the page has.
        """
        if not self.javascript_enabled:
            return
        handler = onload_handler(self.document)
        if not handler:
            return
        try:
            self.execute_js(handler)
        except JavascriptError as error:
            self.script_errors.append(error)

    def execute_js(self, source: str) -> Any:
        """Run ``source`` in the page context, charging virtual time."""
        if not self.javascript_enabled:
            raise BrowserError("JavaScript is disabled for this page")
        before = self.interpreter.steps
        with self.recorder.span("js_exec") as span:
            try:
                return self.interpreter.run(source)
            finally:
                delta = self.interpreter.steps - before
                self.clock.advance(self.cost_model.js_execution_ms(delta), JS_ACCOUNT)
                span.annotate(steps=delta)

    # -- events ------------------------------------------------------------------------

    def events(self, event_types=DEFAULT_EVENT_TYPES) -> list[EventBinding]:
        """Invocable events in the current DOM."""
        return enumerate_events(self.document, event_types)

    def dispatch(self, binding: EventBinding) -> bool:
        """Fire one event; returns True when the DOM changed.

        Raises :class:`~repro.errors.BrowserError` when the binding's
        source element no longer exists in the current DOM.
        """
        element = binding.locator.resolve(self.document)
        if element is None:
            raise BrowserError(f"event source {binding.describe()} not found")
        if element.get_attribute(binding.event_type) != binding.handler:
            # The locator resolved, but to an element that no longer
            # carries this event (the DOM shifted under a path locator).
            raise BrowserError(f"event source {binding.describe()} is stale")
        if binding.input_value is not None:
            # Forms extension: type the value into the source element
            # before firing the handler (kept as an attribute so state
            # snapshots and hashes capture it).
            element.set_attribute("value", binding.input_value)
        self._dirty = False
        # Make `this` available to the handler the way browsers do.
        self.interpreter.define_global("this", self.wrap_element(element))
        try:
            self.execute_js(binding.handler)
        except JavascriptError:
            # A failing handler must not kill the crawl; the DOM may
            # still have partially changed.
            return self._dirty
        return self._dirty

    @property
    def dom_changed(self) -> bool:
        """Whether a mutation happened since the last dispatch began."""
        return self._dirty

    # -- state identity & rollback ----------------------------------------------------------

    def content_hash(self) -> str:
        """Hash identifying the current DOM state (duplicate detection)."""
        if self.incremental_hashing:
            return hash_tree(self.document, stats=self.hash_stats).state
        return reference_state_hash(self.document, stats=self.hash_stats)

    def hash_state(self) -> DomHashes:
        """One combined Merkle pass: state hash plus full region map.

        Re-hashes only subtrees dirtied since the last pass (or the
        last :meth:`restore`, whose cloned master arrives fully cached).
        """
        with self.recorder.span("hash_pass") as span:
            hashes = hash_tree(self.document, stats=self.hash_stats)
            span.annotate(
                nodes_hashed=hashes.nodes_hashed,
                nodes_skipped=hashes.nodes_skipped,
                incremental=hashes.incremental,
            )
        return hashes

    def snapshot(self) -> PageSnapshot:
        """Capture DOM and script globals for a later :meth:`restore`."""
        return PageSnapshot(
            html=serialize(self.document),
            globals_snapshot=dict(self.interpreter.global_env.bindings),
            hash=self.content_hash(),
        )

    def restore(self, snapshot: PageSnapshot) -> None:
        """Roll the page back to ``snapshot`` (DOM and script variables).

        The virtual clock is always charged the full re-parse cost (the
        simulated browser still parses); with incremental hashing the
        *wall-clock* work is a clone of the snapshot's master tree,
        which carries warm Merkle caches so the post-rollback base
        hashes are cache reads instead of full re-hashes.
        """
        if self.incremental_hashing:
            master = snapshot.master
            if master is None:
                master = parse_document(snapshot.html, url=self.url)
                # Warm the caches once; every later restore clones them.
                hash_tree(master, stats=self.hash_stats)
                snapshot.master = master
            self.document = master.clone()
        else:
            self.document = parse_document(snapshot.html, url=self.url)
        self.clock.advance(
            self.cost_model.html_parse_ms(len(snapshot.html)), PARSE_ACCOUNT
        )
        self.interpreter.global_env.bindings = dict(snapshot.globals_snapshot)
        self._element_hosts.clear()
        self._dirty = False

    @property
    def text(self) -> str:
        """Visible text of the current state (what gets indexed)."""
        return self.document.text_content
