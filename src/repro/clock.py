"""Virtual time for deterministic performance experiments.

The thesis measures crawl times on a live network.  We have no network, so
every expensive operation (fetching a page, executing JavaScript,
maintaining the application model) *charges* simulated milliseconds to a
:class:`SimClock`.  The magnitudes are configurable through a
:class:`CostModel`; the defaults are calibrated so that the headline
numbers of chapter 7 (e.g. the x9.43 AJAX-over-traditional overhead of
Table 7.2) land in the right regime.

Using a virtual clock instead of ``time.sleep`` keeps the benchmark suite
fast and makes every reported duration reproducible bit-for-bit under a
fixed RNG seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class SimClock:
    """A monotonically advancing virtual clock measured in milliseconds.

    The clock can be shared by many components (server, crawler, model
    maintenance); each calls :meth:`advance` with the cost of its work.
    Named accounts make it possible to later split total time into
    network time vs. processing time, which Figure 7.4 requires.
    """

    def __init__(self) -> None:
        self._now_ms = 0.0
        self._accounts: dict[str, float] = {}

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds since clock creation."""
        return self._now_ms

    def advance(self, delta_ms: float, account: str = "other") -> None:
        """Advance the clock by ``delta_ms``, booking the cost on ``account``."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ms} ms")
        self._now_ms += delta_ms
        self._accounts[account] = self._accounts.get(account, 0.0) + delta_ms

    def spent_on(self, account: str) -> float:
        """Total milliseconds booked on ``account`` so far."""
        return self._accounts.get(account, 0.0)

    def accounts(self) -> dict[str, float]:
        """A snapshot of all accounts and their accumulated costs."""
        return dict(self._accounts)

    def reset(self) -> None:
        """Reset time to zero and clear every account."""
        self._now_ms = 0.0
        self._accounts.clear()


@dataclass
class CostModel:
    """Costs (virtual milliseconds) charged for the operations the thesis
    identifies as expensive.

    The defaults approximate the hardware of section 7.1.2: page fetches
    around 1-2 s, AJAX calls in the hundreds of milliseconds, JavaScript
    interpretation and application-model maintenance clearly measurable
    but an order of magnitude below the network.
    """

    #: Mean latency of fetching a full page over the network.
    page_fetch_ms: float = 900.0
    #: Mean latency of one AJAX (XMLHttpRequest) round trip.
    ajax_call_ms: float = 450.0
    #: Multiplicative jitter half-range for network latencies (0.2 = +-20%).
    network_jitter: float = 0.2
    #: Cost per kilobyte of transferred response body.
    per_kb_ms: float = 4.0
    #: Cost of parsing one kilobyte of HTML into a DOM tree.
    html_parse_per_kb_ms: float = 6.0
    #: Cost per executed JavaScript interpreter step.
    js_step_ms: float = 0.02
    #: Cost of hashing the DOM and diffing it against the model after an
    #: event (charged once per invoked event).  The thesis identifies
    #: maintaining/comparing the application model as the dominant
    #: non-network cost of AJAX crawling (§7.2.3).
    state_diff_ms: float = 500.0
    #: Cost of inserting one state into the application model.
    model_insert_ms: float = 800.0
    #: Cost of adding one state's text to an inverted file (indexing
    #: phase, §6.4).
    index_state_ms: float = 25.0
    #: Random source for jitter; seeded for reproducibility.
    rng: random.Random = field(default_factory=lambda: random.Random(0x5EED))
    #: Optional latency *shape* override (see :mod:`repro.net.latency`).
    #: When set, it replaces the uniform jitter entirely.
    latency_distribution: object = None

    def network_latency_ms(self, kind: str, body_bytes: int) -> float:
        """Latency for a network round trip of ``kind`` carrying ``body_bytes``.

        ``kind`` is ``"page"`` for full page loads and ``"ajax"`` for
        XMLHttpRequest round trips.
        """
        if kind == "page":
            base = self.page_fetch_ms
        elif kind == "ajax":
            base = self.ajax_call_ms
        else:
            raise ValueError(f"unknown network request kind: {kind!r}")
        if self.latency_distribution is not None:
            factor = self.latency_distribution.sample()
        else:
            factor = 1.0 + self.rng.uniform(-self.network_jitter, self.network_jitter)
        return base * factor + (body_bytes / 1024.0) * self.per_kb_ms

    def html_parse_ms(self, html_bytes: int) -> float:
        """Cost of parsing ``html_bytes`` of markup."""
        return (html_bytes / 1024.0) * self.html_parse_per_kb_ms

    def js_execution_ms(self, steps: int) -> float:
        """Cost of ``steps`` interpreter steps."""
        return steps * self.js_step_ms


class Stopwatch:
    """Measures an interval of virtual time on a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now_ms

    def restart(self) -> None:
        """Begin a new interval at the current virtual time."""
        self._start = self._clock.now_ms

    @property
    def elapsed_ms(self) -> float:
        """Virtual milliseconds since construction or last :meth:`restart`."""
        return self._clock.now_ms - self._start
