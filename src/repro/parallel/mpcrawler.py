"""The MPAjaxCrawler: process lines over URL partitions (§6.3.1).

The thesis runs ``nOfProcLines`` threads, each serially launching
``SimpleAjaxCrawler`` JVM processes until all partitions are consumed.
We reproduce that scheduler behind a pluggable execution backend
(:mod:`repro.parallel.backend`):

* ``backend="simulated"`` (default) — a deterministic discrete-event
  simulation over virtual time.  Each process line keeps its own
  timeline; a free line grabs the next partition (exactly the
  ``getPartitionID()`` protocol).  Network waits overlap perfectly
  across lines; CPU work (JavaScript, parsing, model maintenance)
  contends for the machine's cores, and each launched process pays a
  startup overhead — which is why the thesis' measured gain from four
  process lines on a dual-core Xeon was only ~26-28% (Figure 7.8), not
  4x.  Every golden trace, figure and table is recorded against this
  engine.

* ``backend="threads"`` — a real ``ThreadPoolExecutor`` engine for
  wall-clock use (each partition crawl is fully independent, the SPMD
  observation of §6.1), with a sharded work-stealing frontier and
  bounded queues.  Its merged crawl output is identical to the
  simulated engine's; only scheduling/wall-clock fields differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.clock import CostModel
from repro.crawler import CrawlerConfig, CrawlResult, DEFAULT_CONFIG
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats
from repro.obs import NULL_RECORDER
from repro.parallel.simple import PartitionRunSummary, SimpleAjaxCrawler


@dataclass(frozen=True)
class MachineModel:
    """The hardware the simulated scheduler runs on.

    Defaults approximate the thesis testbed: a dual-core Xeon where JVM
    startup and model maintenance are expensive.
    """

    #: Physical cores available for CPU-bound crawl work.
    cores: int = 2
    #: Per-process (per partition) startup cost — JVM launch, class
    #: loading, heap warm-up.
    process_startup_ms: float = 4000.0
    #: Fraction of CPU work that is serialized regardless of cores
    #: (shared disk, memory bandwidth, OS scheduling).
    serial_fraction: float = 0.15

    def cpu_stretch(self, active_lines: int) -> float:
        """How much slower CPU work runs per line under contention."""
        parallel_share = max(1.0, active_lines / self.cores)
        return self.serial_fraction * active_lines + (1 - self.serial_fraction) * parallel_share


@dataclass
class ParallelRunResult:
    """Outcome of one MPAjaxCrawler run."""

    result: CrawlResult
    summaries: list[PartitionRunSummary] = field(default_factory=list)
    #: Virtual wall-clock of the whole run (max over process lines).
    makespan_ms: float = 0.0
    #: Per-line finish times: virtual ms on the simulated backend, real
    #: per-worker busy ms on the threads backend.
    line_finish_ms: list[float] = field(default_factory=list)
    #: Network counters merged over every partition worker.
    stats: NetworkStats = field(default_factory=NetworkStats)
    #: Partition numbers in scheduling order (parallel to
    #: ``partition_durations_ms``) — the critical-path analyzer's input.
    partition_numbers: list[int] = field(default_factory=list)
    #: Scheduled duration of each partition on its process line
    #: (startup + network + stretched CPU for the simulated runner,
    #: measured wall ms for the threaded one).
    partition_durations_ms: list[float] = field(default_factory=list)
    #: Process lines the run was scheduled on.
    num_proc_lines: int = 0
    #: The execution backend that produced this result.
    backend: str = "simulated"
    #: Per-partition crawl results, keyed by partition number (model
    #: persistence and per-partition indexing read these; the merged
    #: ``result`` references the same objects).
    partition_results: dict[int, CrawlResult] = field(default_factory=dict)
    #: Real elapsed milliseconds of the whole run (threads backend;
    #: 0.0 on the simulated backend, which runs on virtual time only).
    wall_time_ms: float = 0.0
    #: Real busy milliseconds per worker thread (threads backend).
    worker_wall_ms: list[float] = field(default_factory=list)
    #: Partitions a worker took from another worker's shard.
    partitions_stolen: int = 0

    @property
    def registry(self):
        """The merged metrics registry over all partitions."""
        return self.stats.registry

    @property
    def total_pages(self) -> int:
        return self.result.report.num_pages

    @property
    def total_failed_pages(self) -> int:
        """URLs that failed even after retries, across all partitions."""
        return len(self.result.failures)

    @property
    def mean_time_per_page_ms(self) -> float:
        return self.makespan_ms / self.total_pages if self.total_pages else 0.0

    @property
    def mean_time_per_state_ms(self) -> float:
        states = self.result.report.total_states
        return self.makespan_ms / states if states else 0.0


class MPAjaxCrawler:
    """Schedules SimpleAjaxCrawler runs over process lines."""

    def __init__(
        self,
        server: SimulatedServer,
        num_proc_lines: int = 4,
        config: CrawlerConfig = DEFAULT_CONFIG,
        traditional: bool = False,
        machine: MachineModel = MachineModel(),
        cost_model: Optional[CostModel] = None,
        recorder_factory: Optional[Callable[[int], object]] = None,
    ) -> None:
        if num_proc_lines < 1:
            raise ValueError("need at least one process line")
        self.server = server
        self.num_proc_lines = num_proc_lines
        self.config = config
        self.traditional = traditional
        self.machine = machine
        self.cost_model = cost_model
        #: Optional per-partition trace recorders: called with the
        #: partition number, returns the recorder that partition's
        #: worker uses.  Traces cannot share one sequence across
        #: concurrent partitions without losing determinism, so each
        #: partition gets its own recorder; the per-partition streams
        #: recombine with :func:`repro.obs.merge_partition_traces`.  A
        #: factory handing every recorder the same
        #: :class:`~repro.obs.JsonlTraceSink` is safe on the threads
        #: backend — the sink serializes writers internally.
        self.recorder_factory = recorder_factory

    def _recorder_for(self, partition: int):
        """The trace recorder one partition's worker should use."""
        if self.recorder_factory is None:
            return NULL_RECORDER
        return self.recorder_factory(partition)

    def crawl_partition(
        self,
        number: int,
        urls: list[str],
        cost_model: Optional[CostModel] = None,
    ) -> tuple[CrawlResult, PartitionRunSummary]:
        """Crawl one numbered partition with a fresh worker.

        The worker owns every piece of mutable crawl state (clock,
        browser, model store, hash caches, stats), which is what makes
        partition crawls backend-agnostic: the simulated engine calls
        this serially, the threaded engine concurrently.
        ``cost_model`` overrides the controller's (the threaded engine
        passes per-partition RNG clones); ``None`` uses the shared one.
        """
        worker = SimpleAjaxCrawler(
            self.server,
            self.config,
            traditional=self.traditional,
            cost_model=cost_model if cost_model is not None else self.cost_model,
            recorder=self._recorder_for(number),
        )
        return worker.crawl_urls(urls, partition=number)

    # -- backend dispatch ------------------------------------------------------------

    def run(
        self, partitions: list[list[str]], backend: object = "simulated"
    ) -> ParallelRunResult:
        """Crawl all partitions on the given execution backend.

        ``backend`` is a registry name (``"simulated"``, ``"threads"``)
        or an :class:`~repro.parallel.backend.ExecutionBackend`
        instance.  The merged crawl output is backend-independent; the
        scheduling and wall-clock fields are not.
        """
        from repro.parallel.backend import resolve_backend

        return resolve_backend(backend).run(self, partitions)

    def run_simulated(self, partitions: list[list[str]]) -> ParallelRunResult:
        """Crawl all partitions on virtual time (the default backend)."""
        return self.run(partitions, backend="simulated")

    def run_threaded(self, partitions: list[list[str]]) -> ParallelRunResult:
        """Crawl partitions on real threads (wall-clock parallelism)."""
        return self.run(partitions, backend="threads")
