"""The MPAjaxCrawler: process lines over URL partitions (§6.3.1).

The thesis runs ``nOfProcLines`` threads, each serially launching
``SimpleAjaxCrawler`` JVM processes until all partitions are consumed.
We reproduce that scheduler in two flavours:

* :meth:`MPAjaxCrawler.run_simulated` — a deterministic discrete-event
  simulation over virtual time.  Each process line keeps its own
  timeline; a free line grabs the next partition (exactly the
  ``getPartitionID()`` protocol).  Network waits overlap perfectly
  across lines; CPU work (JavaScript, parsing, model maintenance)
  contends for the machine's cores, and each launched process pays a
  startup overhead — which is why the thesis' measured gain from four
  process lines on a dual-core Xeon was only ~26-28% (Figure 7.8), not
  4x.

* :meth:`MPAjaxCrawler.run_threaded` — a real ``ThreadPoolExecutor``
  run for wall-clock use (each partition crawl is fully independent,
  the SPMD observation of §6.1).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.clock import CostModel
from repro.crawler import CrawlerConfig, CrawlResult, DEFAULT_CONFIG
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats
from repro.obs import NULL_RECORDER
from repro.parallel.simple import PartitionRunSummary, SimpleAjaxCrawler


@dataclass(frozen=True)
class MachineModel:
    """The hardware the simulated scheduler runs on.

    Defaults approximate the thesis testbed: a dual-core Xeon where JVM
    startup and model maintenance are expensive.
    """

    #: Physical cores available for CPU-bound crawl work.
    cores: int = 2
    #: Per-process (per partition) startup cost — JVM launch, class
    #: loading, heap warm-up.
    process_startup_ms: float = 4000.0
    #: Fraction of CPU work that is serialized regardless of cores
    #: (shared disk, memory bandwidth, OS scheduling).
    serial_fraction: float = 0.15

    def cpu_stretch(self, active_lines: int) -> float:
        """How much slower CPU work runs per line under contention."""
        parallel_share = max(1.0, active_lines / self.cores)
        return self.serial_fraction * active_lines + (1 - self.serial_fraction) * parallel_share


@dataclass
class ParallelRunResult:
    """Outcome of one MPAjaxCrawler run."""

    result: CrawlResult
    summaries: list[PartitionRunSummary] = field(default_factory=list)
    #: Virtual wall-clock of the whole run (max over process lines).
    makespan_ms: float = 0.0
    #: Per-line virtual finish times.
    line_finish_ms: list[float] = field(default_factory=list)
    #: Network counters merged over every partition worker.
    stats: NetworkStats = field(default_factory=NetworkStats)
    #: Partition numbers in scheduling order (parallel to
    #: ``partition_durations_ms``) — the critical-path analyzer's input.
    partition_numbers: list[int] = field(default_factory=list)
    #: Scheduled duration of each partition on its process line
    #: (startup + network + stretched CPU for the simulated runner,
    #: measured crawl time for the threaded one).
    partition_durations_ms: list[float] = field(default_factory=list)
    #: Process lines the run was scheduled on.
    num_proc_lines: int = 0

    @property
    def registry(self):
        """The merged metrics registry over all partitions."""
        return self.stats.registry

    @property
    def total_pages(self) -> int:
        return self.result.report.num_pages

    @property
    def total_failed_pages(self) -> int:
        """URLs that failed even after retries, across all partitions."""
        return len(self.result.failures)

    @property
    def mean_time_per_page_ms(self) -> float:
        return self.makespan_ms / self.total_pages if self.total_pages else 0.0

    @property
    def mean_time_per_state_ms(self) -> float:
        states = self.result.report.total_states
        return self.makespan_ms / states if states else 0.0


class MPAjaxCrawler:
    """Schedules SimpleAjaxCrawler runs over process lines."""

    def __init__(
        self,
        server: SimulatedServer,
        num_proc_lines: int = 4,
        config: CrawlerConfig = DEFAULT_CONFIG,
        traditional: bool = False,
        machine: MachineModel = MachineModel(),
        cost_model: Optional[CostModel] = None,
        recorder_factory: Optional[Callable[[int], object]] = None,
    ) -> None:
        if num_proc_lines < 1:
            raise ValueError("need at least one process line")
        self.server = server
        self.num_proc_lines = num_proc_lines
        self.config = config
        self.traditional = traditional
        self.machine = machine
        self.cost_model = cost_model
        #: Optional per-partition trace recorders: called with the
        #: partition number, returns the recorder that partition's
        #: worker uses (traces cannot share one sequence across
        #: concurrent partitions without losing determinism).
        self.recorder_factory = recorder_factory

    def _recorder_for(self, partition: int):
        """The trace recorder one partition's worker should use."""
        if self.recorder_factory is None:
            return NULL_RECORDER
        return self.recorder_factory(partition)

    # -- simulated scheduler -------------------------------------------------------

    def run_simulated(self, partitions: list[list[str]]) -> ParallelRunResult:
        """Crawl all partitions on virtual time.

        Each partition is crawled (deterministically) to obtain its
        network and CPU cost, then scheduled onto the earliest-free
        process line with contention-stretched CPU time.
        """
        merged = CrawlResult()
        merged_stats = NetworkStats()
        summaries: list[PartitionRunSummary] = []
        partition_numbers: list[int] = []
        partition_durations: list[float] = []
        line_times = [0.0] * self.num_proc_lines
        stretch = self.machine.cpu_stretch(min(self.num_proc_lines, max(len(partitions), 1)))
        for number, urls in enumerate(partitions, start=1):
            worker = SimpleAjaxCrawler(
                self.server,
                self.config,
                traditional=self.traditional,
                cost_model=self.cost_model,
                recorder=self._recorder_for(number),
            )
            result, summary = worker.crawl_urls(urls, partition=number)
            merged.merge(result)
            merged_stats.merge(summary.network)
            summaries.append(summary)
            duration = (
                self.machine.process_startup_ms
                + summary.network_time_ms
                + summary.cpu_time_ms * stretch
            )
            partition_numbers.append(number)
            partition_durations.append(duration)
            # Earliest-free line grabs the next partition (getPartitionID()).
            line = min(range(self.num_proc_lines), key=lambda i: line_times[i])
            line_times[line] += duration
        return ParallelRunResult(
            result=merged,
            summaries=summaries,
            makespan_ms=max(line_times) if partitions else 0.0,
            line_finish_ms=list(line_times),
            stats=merged_stats,
            partition_numbers=partition_numbers,
            partition_durations_ms=partition_durations,
            num_proc_lines=self.num_proc_lines,
        )

    # -- real threads -----------------------------------------------------------------

    def run_threaded(self, partitions: list[list[str]]) -> ParallelRunResult:
        """Crawl partitions on real threads (wall-clock parallelism).

        Virtual makespan is approximated as the max of per-line sums,
        mirroring the simulated scheduler's accounting.
        """
        def crawl_one(item: tuple[int, list[str]]):
            number, urls = item
            worker = SimpleAjaxCrawler(
                self.server,
                self.config,
                traditional=self.traditional,
                cost_model=self.cost_model,
                recorder=self._recorder_for(number),
            )
            return worker.crawl_urls(urls, partition=number)

        merged = CrawlResult()
        merged_stats = NetworkStats()
        summaries: list[PartitionRunSummary] = []
        partition_numbers: list[int] = []
        partition_durations: list[float] = []
        with ThreadPoolExecutor(max_workers=self.num_proc_lines) as pool:
            outcomes = list(pool.map(crawl_one, enumerate(partitions, start=1)))
        line_times = [0.0] * self.num_proc_lines
        for result, summary in outcomes:
            merged.merge(result)
            merged_stats.merge(summary.network)
            summaries.append(summary)
            partition_numbers.append(summary.partition)
            partition_durations.append(summary.crawl_time_ms)
            line = min(range(self.num_proc_lines), key=lambda i: line_times[i])
            line_times[line] += summary.crawl_time_ms
        return ParallelRunResult(
            result=merged,
            summaries=summaries,
            makespan_ms=max(line_times) if partitions else 0.0,
            line_finish_ms=list(line_times),
            stats=merged_stats,
            partition_numbers=partition_numbers,
            partition_durations_ms=partition_durations,
            num_proc_lines=self.num_proc_lines,
        )
