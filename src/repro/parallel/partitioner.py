"""The URLPartitioner (§6.2.2, §8.1.2).

Splits the precrawled URL list into fixed-size partitions.  Each
partition becomes a numbered subdirectory (names start at 1) containing
a ``URLsToCrawl.txt`` file — the input of one ``SimpleAjaxCrawler``
process.  An in-memory variant exists for tests and the simulated
scheduler.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import PartitionError

#: The per-partition URL list file (``URI_PART_FILE_NAME``).
URLS_TO_CRAWL = "URLsToCrawl.txt"


def partition_urls(urls: list[str], partition_size: int) -> list[list[str]]:
    """Split ``urls`` into consecutive chunks of ``partition_size``."""
    if partition_size <= 0:
        raise PartitionError(f"partition size must be positive, got {partition_size}")
    return [urls[i:i + partition_size] for i in range(0, len(urls), partition_size)]


class URLPartitioner:
    """Writes partitions to disk in the thesis' directory layout."""

    def __init__(self, partition_size: int) -> None:
        if partition_size <= 0:
            raise PartitionError(f"partition size must be positive, got {partition_size}")
        self.partition_size = partition_size

    def write(self, urls: list[str], root_dir: str | Path) -> list[Path]:
        """Create ``root_dir/1/URLsToCrawl.txt``, ``root_dir/2/...`` etc.

        Returns the created partition directories in order.
        """
        root = Path(root_dir)
        root.mkdir(parents=True, exist_ok=True)
        directories: list[Path] = []
        for number, chunk in enumerate(partition_urls(urls, self.partition_size), start=1):
            partition_dir = root / str(number)
            partition_dir.mkdir(exist_ok=True)
            (partition_dir / URLS_TO_CRAWL).write_text(
                "\n".join(chunk) + "\n", encoding="utf-8"
            )
            directories.append(partition_dir)
        return directories

    @staticmethod
    def read(partition_dir: str | Path) -> list[str]:
        """Read one partition's URL list."""
        path = Path(partition_dir) / URLS_TO_CRAWL
        if not path.exists():
            raise PartitionError(f"no {URLS_TO_CRAWL} in {partition_dir}")
        return [line for line in path.read_text(encoding="utf-8").splitlines() if line]

    @staticmethod
    def list_partitions(root_dir: str | Path) -> list[Path]:
        """All partition directories under ``root_dir``, in numeric order."""
        root = Path(root_dir)
        numbered = [
            child for child in root.iterdir() if child.is_dir() and child.name.isdigit()
        ]
        return sorted(numbered, key=lambda child: int(child.name))
