"""Parallelization of the AJAX crawler and search engine (chapter 6).

Precrawling (hyperlink graph + PageRank) → URL partitioning → process
lines of SimpleAjaxCrawlers → per-partition indexes → query shipping
with merge-time global idf.
"""

from repro.parallel.aggregation import DistributedResultAggregator
from repro.parallel.backend import (
    BACKENDS,
    ExecutionBackend,
    SimulatedBackend,
    ThreadedBackend,
    partition_cost_model,
    resolve_backend,
)
from repro.parallel.frontier import PartitionTask, ShardedFrontier
from repro.parallel.mpcrawler import MachineModel, MPAjaxCrawler, ParallelRunResult
from repro.parallel.partitioner import URLPartitioner, URLS_TO_CRAWL, partition_urls
from repro.parallel.pipeline import PhaseTimings, PipelineResult, SearchPipeline
from repro.parallel.precrawler import Precrawler, PrecrawlResult
from repro.parallel.sharding import ShardAnswer, ShardedSearchEngine
from repro.parallel.simple import (
    MODELS_FILE,
    PartitionRunSummary,
    SimpleAjaxCrawler,
    load_models,
    save_models,
)

__all__ = [
    "Precrawler",
    "PrecrawlResult",
    "URLPartitioner",
    "URLS_TO_CRAWL",
    "partition_urls",
    "SimpleAjaxCrawler",
    "PartitionRunSummary",
    "MODELS_FILE",
    "save_models",
    "load_models",
    "MPAjaxCrawler",
    "MachineModel",
    "ParallelRunResult",
    "BACKENDS",
    "ExecutionBackend",
    "SimulatedBackend",
    "ThreadedBackend",
    "resolve_backend",
    "partition_cost_model",
    "PartitionTask",
    "ShardedFrontier",
    "ShardedSearchEngine",
    "ShardAnswer",
    "SearchPipeline",
    "PipelineResult",
    "PhaseTimings",
    "DistributedResultAggregator",
]
