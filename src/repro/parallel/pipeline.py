"""The complete search-engine pipeline of Figure 6.1, as one object.

Runs every phase of the parallel architecture in order —

1. **Precrawling**: hyperlink graph + PageRank from a start URL,
2. **Partitioning**: the URL list split for the process lines,
3. **Crawling**: ``MPAjaxCrawler`` process lines over the partitions,
4. **Indexing**: one inverted file per partition (charged to the
   virtual clock per indexed state, §6.4),
5. **Query processing**: a :class:`~repro.parallel.sharding.ShardedSearchEngine`
   with query shipping and merge-time global idf

— and reports the virtual time spent in each phase, so end-to-end
experiments (and the CLI/examples) have a single entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clock import CostModel
from repro.crawler import CrawlerConfig, DEFAULT_CONFIG
from repro.net.server import SimulatedServer
from repro.parallel.mpcrawler import MachineModel, MPAjaxCrawler, ParallelRunResult
from repro.parallel.partitioner import partition_urls
from repro.parallel.precrawler import Precrawler, PrecrawlResult
from repro.parallel.sharding import ShardedSearchEngine
from repro.search.ranking import RankingWeights


@dataclass
class PhaseTimings:
    """Virtual milliseconds spent per pipeline phase."""

    precrawl_ms: float = 0.0
    crawl_makespan_ms: float = 0.0
    indexing_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.precrawl_ms + self.crawl_makespan_ms + self.indexing_ms


@dataclass
class PipelineResult:
    """Everything the pipeline produces."""

    precrawl: PrecrawlResult
    crawl: ParallelRunResult
    engine: ShardedSearchEngine
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    @property
    def num_shards(self) -> int:
        return len(self.engine.shards)


class SearchPipeline:
    """Precrawl → partition → parallel crawl → index → queryable engine."""

    def __init__(
        self,
        server: SimulatedServer,
        num_proc_lines: int = 4,
        partition_size: int = 20,
        config: CrawlerConfig = DEFAULT_CONFIG,
        machine: MachineModel = MachineModel(),
        cost_model: Optional[CostModel] = None,
        weights: RankingWeights = RankingWeights(),
    ) -> None:
        self.server = server
        self.num_proc_lines = num_proc_lines
        self.partition_size = partition_size
        self.config = config
        self.machine = machine
        self.cost_model = cost_model or CostModel()
        self.weights = weights

    def run(self, start_url: str, max_pages: int) -> PipelineResult:
        """Execute the whole pipeline starting from ``start_url``."""
        timings = PhaseTimings()

        # Phase 1: precrawling (sequential, link-following only).
        precrawler = Precrawler(
            self.server, max_pages=max_pages, cost_model=self.cost_model
        )
        precrawl = precrawler.run(start_url)
        timings.precrawl_ms = precrawler.browser.clock.now_ms

        # Phase 2: partitioning (in-memory; negligible cost).
        partitions = partition_urls(precrawl.urls, self.partition_size)

        # Phase 3: parallel crawling on process lines.
        controller = MPAjaxCrawler(
            self.server,
            num_proc_lines=self.num_proc_lines,
            config=self.config,
            machine=self.machine,
            cost_model=self.cost_model,
        )
        crawl = controller.run_simulated(partitions)
        timings.crawl_makespan_ms = crawl.makespan_ms

        # Phase 4: per-partition indexes.  Each machine indexes its own
        # models (§6.4); with enough machines this overlaps, so we charge
        # the largest shard's indexing time.
        shard_models: list[list] = [[] for _ in range(max(1, len(partitions)))]
        for model in crawl.result.models:
            shard = self._shard_of(model.url, partitions)
            shard_models[shard].append(model)
        shard_models = [models for models in shard_models if models]
        per_shard_ms = [
            sum(model.num_states for model in models) * self.cost_model.index_state_ms
            for models in shard_models
        ]
        timings.indexing_ms = max(per_shard_ms) if per_shard_ms else 0.0

        # Phase 5: the sharded engine with query shipping.
        engine = ShardedSearchEngine.build(
            shard_models, pageranks=precrawl.pageranks, weights=self.weights
        )
        return PipelineResult(
            precrawl=precrawl, crawl=crawl, engine=engine, timings=timings
        )

    @staticmethod
    def _shard_of(url: str, partitions: list[list[str]]) -> int:
        for index, urls in enumerate(partitions):
            if url in urls:
                return index
        return 0
