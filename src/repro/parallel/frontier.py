"""The sharded crawl frontier: per-worker deques with work stealing.

The real-concurrency backend distributes partition tasks over one shard
per worker.  Each shard is a deque behind its own lock: the owning
worker pops from the *front* of its shard (FIFO over the partitions it
was dealt), and a worker whose shard ran dry *steals* from the **back**
of the currently longest other shard — the classic work-stealing deque
discipline, which keeps stolen work as far as possible from the work
the victim is about to touch.  Stealing is what fixes partition skew
(the trace doctor's ``partition-skew`` rule): when one worker's shard
holds the straggler partitions, idle workers drain its queue instead of
going home early.

Shards are **bounded**: ``push`` blocks while the target shard is at
capacity, so a producer enumerating a huge partition list cannot run
arbitrarily far ahead of the crawl (backpressure).  ``close()`` marks
the end of input; ``pop`` returns ``None`` only when the frontier is
closed *and* every shard is empty, so workers never miss late pushes.

Lock discipline: shard locks are only ever taken one at a time (the
steal scan inspects lengths without locks and locks a single victim),
so there is no ordering to get wrong and no deadlock.  Idle waiting
uses short timed waits on a shared condition rather than busy-spinning.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class PartitionTask:
    """One unit of crawl work: a numbered URL partition."""

    number: int
    urls: tuple[str, ...]


class _Shard(Generic[T]):
    """One worker's deque plus the lock and not-full condition guarding it."""

    __slots__ = ("items", "lock", "not_full")

    def __init__(self) -> None:
        self.items: deque[T] = deque()
        self.lock = threading.Lock()
        self.not_full = threading.Condition(self.lock)


class ShardedFrontier(Generic[T]):
    """A bounded, lock-protected, work-stealing task frontier."""

    def __init__(self, num_shards: int, capacity: Optional[int] = None) -> None:
        """``capacity`` bounds each shard (``None`` = unbounded)."""
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if capacity is not None and capacity < 1:
            raise ValueError("shard capacity must be positive")
        self.num_shards = num_shards
        self.capacity = capacity
        self._shards: list[_Shard[T]] = [_Shard() for _ in range(num_shards)]
        self._closed = False
        # Wakes idle workers when work arrives or the frontier closes.
        self._work_available = threading.Condition(threading.Lock())
        self._steals = 0
        self._pushes = 0

    # -- producer side ------------------------------------------------------------

    def push(self, item: T, shard: Optional[int] = None) -> None:
        """Enqueue ``item`` on ``shard`` (blocking while it is full).

        Without an explicit shard, items are dealt round-robin by push
        order.  Raises ``ValueError`` on a closed frontier.
        """
        if shard is None:
            shard = self._pushes % self.num_shards
        target = self._shards[shard % self.num_shards]
        with target.not_full:
            while (
                self.capacity is not None
                and len(target.items) >= self.capacity
                and not self._closed
            ):
                target.not_full.wait(timeout=0.05)
            if self._closed:
                raise ValueError("cannot push onto a closed frontier")
            target.items.append(item)
            self._pushes += 1
        with self._work_available:
            self._work_available.notify_all()

    def close(self) -> None:
        """Mark the end of input and wake every idle worker."""
        with self._work_available:
            self._closed = True
            self._work_available.notify_all()
        for shard in self._shards:
            with shard.not_full:
                shard.not_full.notify_all()

    # -- consumer side ------------------------------------------------------------

    def pop(self, shard: int) -> Optional[T]:
        """Next task for the worker owning ``shard``.

        Pops the worker's own shard front-first; steals from the back
        of the longest other shard when the own shard is empty; blocks
        while the frontier is open but momentarily dry.  Returns
        ``None`` once the frontier is closed and fully drained.
        """
        own = self._shards[shard % self.num_shards]
        while True:
            item = self._pop_front(own)
            if item is not None:
                return item
            item = self._steal(shard % self.num_shards)
            if item is not None:
                return item
            with self._work_available:
                if self._closed and self._total_queued() == 0:
                    return None
                # Timed wait: robust against wakeups lost between the
                # length check and the wait (no shard lock is held here).
                self._work_available.wait(timeout=0.05)

    def _pop_front(self, shard: _Shard[T]) -> Optional[T]:
        with shard.not_full:
            if not shard.items:
                return None
            item = shard.items.popleft()
            shard.not_full.notify()
            return item

    def _steal(self, thief: int) -> Optional[T]:
        """Take one task from the back of the longest other shard."""
        victims = sorted(
            (index for index in range(self.num_shards) if index != thief),
            key=lambda index: len(self._shards[index].items),
            reverse=True,
        )
        for index in victims:
            victim = self._shards[index]
            with victim.not_full:
                if not victim.items:
                    continue
                item = victim.items.pop()
                victim.not_full.notify()
            with self._work_available:
                self._steals += 1
            return item
        return None

    # -- introspection ------------------------------------------------------------

    def _total_queued(self) -> int:
        return sum(len(shard.items) for shard in self._shards)

    @property
    def steals(self) -> int:
        """Tasks taken from a shard other than the popping worker's own."""
        return self._steals

    @property
    def closed(self) -> bool:
        return self._closed

    def queue_lengths(self) -> list[int]:
        """Current shard depths (diagnostics; racy by nature)."""
        return [len(shard.items) for shard in self._shards]
