"""The SimpleAjaxCrawler (§6.3.2): crawl one partition, store the models.

One instance corresponds to one JVM process of the thesis: it reads the
partition's URL list, applies the crawling algorithm of chapters 3/4 to
every URL, and serializes the resulting application models into the
partition directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.clock import CostModel, SimClock
from repro.crawler import AjaxCrawler, CrawlerConfig, CrawlResult, DEFAULT_CONFIG, TraditionalCrawler
from repro.model import ApplicationModel
from repro.net.server import SimulatedServer
from repro.net.stats import NetworkStats
from repro.obs import NULL_RECORDER
from repro.parallel.partitioner import URLPartitioner

#: The serialized application models of one partition (§6.3.2 stored
#: ajaxapplications.bin etc.; we store one JSON with every model).
MODELS_FILE = "models.json"


@dataclass
class PartitionRunSummary:
    """What one SimpleAjaxCrawler run reports back to the controller."""

    partition: int
    num_pages: int
    total_states: int
    crawl_time_ms: float
    network_time_ms: float
    cpu_time_ms: float
    #: URLs in this partition whose crawl failed even after retries.
    failed_pages: int = 0
    #: The worker's network counters (retries, failures, bytes, ...).
    network: NetworkStats = field(default_factory=NetworkStats)

    @property
    def wall_time_ms(self) -> float:
        return self.crawl_time_ms


class SimpleAjaxCrawler:
    """Crawls one URL partition with its own clock and browser."""

    def __init__(
        self,
        server: SimulatedServer,
        config: CrawlerConfig = DEFAULT_CONFIG,
        traditional: bool = False,
        cost_model: Optional[CostModel] = None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.server = server
        self.config = config
        self.traditional = traditional
        self.cost_model = cost_model
        self.recorder = recorder

    def crawl_urls(self, urls: list[str], partition: int = 0) -> tuple[CrawlResult, PartitionRunSummary]:
        """Crawl a URL list; returns models plus a timing summary."""
        clock = SimClock()
        self.recorder.rebind_clock(clock)
        if self.traditional:
            crawler = TraditionalCrawler(
                self.server,
                self.config,
                clock=clock,
                cost_model=self.cost_model,
                recorder=self.recorder,
            )
        else:
            crawler = AjaxCrawler(
                self.server,
                self.config,
                clock=clock,
                cost_model=self.cost_model,
                recorder=self.recorder,
            )
        with self.recorder.span("partition", partition=partition, urls=len(urls)) as span:
            result = crawler.crawl(urls)
            span.annotate(
                pages=result.report.num_pages, states=result.report.total_states
            )
        network = result.report.total_network_time_ms
        total = result.report.total_time_ms
        summary = PartitionRunSummary(
            partition=partition,
            num_pages=result.report.num_pages,
            total_states=result.report.total_states,
            crawl_time_ms=total,
            network_time_ms=network,
            cpu_time_ms=total - network,
            failed_pages=len(result.failures),
            network=crawler.stats,
        )
        return result, summary

    def crawl_partition_dir(self, partition_dir: str | Path) -> tuple[CrawlResult, PartitionRunSummary]:
        """Crawl the partition stored at ``partition_dir`` and persist models."""
        directory = Path(partition_dir)
        urls = URLPartitioner.read(directory)
        number = int(directory.name) if directory.name.isdigit() else 0
        result, summary = self.crawl_urls(urls, partition=number)
        save_models(result.models, directory)
        return result, summary


def save_models(models: list[ApplicationModel], directory: str | Path) -> Path:
    """Serialize a partition's application models to JSON."""
    path = Path(directory) / MODELS_FILE
    payload = [model.to_dict() for model in models]
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def load_models(directory: str | Path) -> list[ApplicationModel]:
    """Load a partition's application models (the ``loadExt()`` step)."""
    path = Path(directory) / MODELS_FILE
    payload = json.loads(path.read_text(encoding="utf-8"))
    return [ApplicationModel.from_dict(data) for data in payload]
