"""The Precrawling Phase (§6.2).

Before any AJAX crawling happens, the :class:`Precrawler` builds the
traditional, link-based site structure: starting from one URL it follows
hyperlinks breadth-first (JavaScript disabled — hyperlinks are static
content), up to a page budget.  The discovered outbound-link structure
is then used to compute PageRank, and the URL list feeds the
partitioner.

Outputs mirror the thesis' serialized structures: the link graph
(``HashMap<String, ArrayList<String>>``) and the PageRank values
(``HashMap<String, Double>``), here stored as JSON.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.browser import Browser
from repro.clock import CostModel, SimClock
from repro.errors import BrowserError
from repro.net.server import SimulatedServer
from repro.search.ranking import pagerank

#: File names used on disk (chapter 8 calls these PageRank.txt etc.).
LINK_GRAPH_FILE = "linkgraph.json"
PAGERANK_FILE = "pagerank.json"
URLS_FILE = "urls.json"


@dataclass
class PrecrawlResult:
    """Everything the precrawling phase produces."""

    #: URL -> outbound URLs (discovery-restricted).
    link_graph: dict[str, list[str]] = field(default_factory=dict)
    #: URL -> PageRank value.
    pageranks: dict[str, float] = field(default_factory=dict)
    #: URLs in breadth-first discovery order.
    urls: list[str] = field(default_factory=list)

    def save(self, root_dir: str | Path) -> None:
        root = Path(root_dir)
        root.mkdir(parents=True, exist_ok=True)
        (root / LINK_GRAPH_FILE).write_text(json.dumps(self.link_graph), encoding="utf-8")
        (root / PAGERANK_FILE).write_text(json.dumps(self.pageranks), encoding="utf-8")
        (root / URLS_FILE).write_text(json.dumps(self.urls), encoding="utf-8")

    @classmethod
    def load(cls, root_dir: str | Path) -> "PrecrawlResult":
        root = Path(root_dir)
        return cls(
            link_graph=json.loads((root / LINK_GRAPH_FILE).read_text(encoding="utf-8")),
            pageranks=json.loads((root / PAGERANK_FILE).read_text(encoding="utf-8")),
            urls=json.loads((root / URLS_FILE).read_text(encoding="utf-8")),
        )


class Precrawler:
    """Breadth-first hyperlink discovery + PageRank computation."""

    def __init__(
        self,
        server: SimulatedServer,
        max_pages: int = 1000,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.max_pages = max_pages
        self.browser = Browser(
            server, clock=clock, cost_model=cost_model, javascript_enabled=False
        )

    def run(self, start_url: str) -> PrecrawlResult:
        """Discover up to ``max_pages`` pages reachable from ``start_url``."""
        discovered: list[str] = []
        link_graph: dict[str, list[str]] = {}
        seen = {start_url}
        queue: deque[str] = deque([start_url])
        while queue and len(discovered) < self.max_pages:
            url = queue.popleft()
            try:
                page = self.browser.load(url)
            except BrowserError:
                continue  # dead link: skip, keep crawling
            discovered.append(url)
            outbound = self._extract_links(page)
            link_graph[url] = outbound
            for target in outbound:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        restricted = set(discovered)
        link_graph = {
            url: [target for target in targets if target in restricted]
            for url, targets in link_graph.items()
        }
        return PrecrawlResult(
            link_graph=link_graph,
            pageranks=pagerank(link_graph),
            urls=discovered,
        )

    @staticmethod
    def _extract_links(page) -> list[str]:
        from urllib.parse import urljoin

        links: list[str] = []
        for anchor in page.document.root.get_elements_by_tag("a"):
            href = anchor.get_attribute("href")
            if not href or href.startswith(("javascript:", "#", "mailto:")):
                continue
            resolved = urljoin(page.url, href)
            if resolved.startswith("http"):
                links.append(resolved)
        return links
