"""Distributed indexing and query shipping (§6.4-§6.6).

Each crawl partition yields its own inverted file.  A query is *shipped*
to every shard; each shard returns its boolean matches with locally
computable score parts (PageRank, AJAXRank, term proximity — all local
per §6.5.2) plus its state count and per-term document frequencies.  The
merger computes the **global idf** from the summed counts (the worked
example of §6.5.2), adds the weighted tf·idf to every partial rank
(Figure 6.4, Step 1) and sorts the merged list (Step 2).

Because tf, PageRank, AJAXRank and proximity are local, and idf is
recombined exactly, sharded ranking is *identical* to single-index
ranking — a property the test suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.model import ApplicationModel
from repro.search.engine import SearchEngine, SearchResult
from repro.search.query import evaluate
from repro.search.ranking import RankingWeights, term_proximity
from repro.search.tokenizer import query_terms


@dataclass
class ShardAnswer:
    """What one shard returns for one shipped query."""

    #: Partial results: (uri, state_id, partial_score, [tf per term]).
    partials: list[tuple[str, str, float, list[float], dict]] = field(default_factory=list)
    #: Total states in the shard's index (global idf numerator part).
    num_states: int = 0
    #: Per-term document frequencies (global idf denominator part).
    document_frequencies: list[int] = field(default_factory=list)


class ShardedSearchEngine:
    """Query shipping over per-partition search engines."""

    def __init__(
        self,
        shards: list[SearchEngine],
        weights: RankingWeights = RankingWeights(),
    ) -> None:
        self.shards = shards
        self.weights = weights

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        model_partitions: Iterable[list[ApplicationModel]],
        pageranks: Optional[dict[str, float]] = None,
        weights: RankingWeights = RankingWeights(),
        max_state_index: Optional[int] = None,
    ) -> "ShardedSearchEngine":
        """One SearchEngine per partition of application models."""
        shards = [
            SearchEngine.build(
                models,
                pageranks=pageranks,
                weights=weights,
                max_state_index=max_state_index,
            )
            for models in model_partitions
        ]
        return cls(shards, weights=weights)

    # -- query shipping -------------------------------------------------------------

    def _ship(self, shard: SearchEngine, query: str, terms: list[str]) -> ShardAnswer:
        """Evaluate ``query`` on one shard, without the tf·idf part."""
        weights = self.weights
        answer = ShardAnswer(
            num_states=shard.index.num_states,
            document_frequencies=[shard.index.document_frequency(t) for t in terms],
        )
        for match in evaluate(shard.index, query):
            length = shard.index.state_length(match.uri, match.state_id)
            tfs = [
                (posting.count / length if length else 0.0)
                for posting in match.postings
            ]
            proximity = term_proximity([p.positions for p in match.postings])
            page_rank = shard.pageranks.get(match.uri, 0.0)
            ajax_rank = shard.ajaxranks.get((match.uri, match.state_id), 0.0)
            partial = (
                weights.pagerank * page_rank
                + weights.ajaxrank * ajax_rank
                + weights.proximity * proximity
            )
            components = {
                "pagerank": page_rank,
                "ajaxrank": ajax_rank,
                "proximity": proximity,
            }
            answer.partials.append(
                (match.uri, match.state_id, partial, tfs, components)
            )
        return answer

    def search(self, query: str, limit: Optional[int] = None) -> list[SearchResult]:
        """Ship, merge, re-rank with global idf, sort (Figure 6.4)."""
        stopwords = self.shards[0].index.stopwords if self.shards else None
        terms = query_terms(query, stopwords=stopwords)
        answers = [self._ship(shard, query, terms) for shard in self.shards]
        total_states = sum(answer.num_states for answer in answers)
        global_dfs = [
            sum(answer.document_frequencies[i] for answer in answers)
            for i in range(len(terms))
        ]
        idfs = [
            math.log(total_states / df) if df and total_states else 0.0
            for df in global_dfs
        ]
        results: list[SearchResult] = []
        for answer in answers:
            for uri, state_id, partial, tfs, components in answer.partials:
                tfidf = sum(tf * idf for tf, idf in zip(tfs, idfs))
                results.append(
                    SearchResult(
                        uri=uri,
                        state_id=state_id,
                        score=partial + self.weights.tfidf * tfidf,
                        components={**components, "tfidf": tfidf},
                    )
                )
        results.sort(key=lambda result: (-result.score, result.uri, result.state_id))
        return results[:limit] if limit is not None else results

    def result_count(self, query: str) -> int:
        """Total boolean matches across all shards."""
        stopwords = self.shards[0].index.stopwords if self.shards else None
        terms = query_terms(query, stopwords=stopwords)
        return sum(len(self._ship(shard, query, terms).partials) for shard in self.shards)

    @property
    def num_states(self) -> int:
        return sum(shard.index.num_states for shard in self.shards)
