"""Pluggable execution backends for the :class:`MPAjaxCrawler`.

The controller's scheduling loop and its execution engine are separate
concerns.  A backend receives the controller (for configuration and the
per-partition worker factory) and the partition list, and returns a
:class:`~repro.parallel.mpcrawler.ParallelRunResult`:

* :class:`SimulatedBackend` — the deterministic discrete-event
  simulation over virtual time.  This is the default engine; every
  golden trace, figure and table is recorded against it, and its
  behaviour is byte-identical to the historical ``run_simulated``.

* :class:`ThreadedBackend` — a real ``ThreadPoolExecutor`` engine for
  wall-clock scaling: one worker thread per process line, a bounded
  :class:`~repro.parallel.frontier.ShardedFrontier` with work stealing
  (partition skew no longer idles workers), and a bounded result queue
  so slow merging backpressures the crawl instead of buffering it.

**Parity contract.**  Both engines crawl every partition with an
independent ``SimpleAjaxCrawler`` (own virtual clock, own browser) and
merge outcomes *in partition order*, so the merged ``CrawlReport``,
model list, failure records and network counters of a fault-free run
are identical across backends — the ``backend_parity`` conformance
check asserts exactly this on the testgen corpus.  Only the
*scheduling* fields differ (``makespan_ms``, ``line_finish_ms``,
``partition_durations_ms``, and the wall-clock fields ``wall_time_ms``
/ ``worker_wall_ms`` / ``partitions_stolen``): those describe the
engine, not the crawl, and are exempt from parity.

**Thread-safety of shared state.**  Worker threads share only the
simulated server (stateless by the thesis' §4.3 assumption; the fault
injector takes its own lock), the global digest memo in
:mod:`repro.dom.hashing` (single dict operations under the GIL; a
wholesale clear at capacity is safe because entries are pure
``bytes → digest`` facts), and the controller's configuration (frozen
dataclasses).  Everything mutable — clock, browser, model store, hash
caches, ``NetworkStats`` — is created per partition inside the worker.
The base :class:`~repro.clock.CostModel` carries a shared RNG, so the
threaded engine hands each partition a **clone seeded by partition
number**: with jitter disabled (every parity/conformance configuration)
the clones are latency-identical to the shared sequential RNG, and with
jitter enabled per-partition latency stays deterministic regardless of
thread interleaving.
"""

from __future__ import annotations

import dataclasses
import queue
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional

from repro.clock import CostModel
from repro.crawler import CrawlResult
from repro.net.stats import NetworkStats
from repro.parallel.frontier import PartitionTask, ShardedFrontier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.parallel.mpcrawler import MPAjaxCrawler, ParallelRunResult

#: Seed mixed into each partition's cost-model RNG clone.
PARTITION_RNG_SEED = 0x5EED


def partition_cost_model(
    base: Optional[CostModel], number: int
) -> Optional[CostModel]:
    """A per-partition cost model with its own deterministically seeded RNG.

    The clone shares every cost constant with ``base`` but draws jitter
    from ``Random(PARTITION_RNG_SEED ^ number)``, so concurrent
    partitions never contend on (or nondeterministically interleave)
    one RNG stream.
    """
    if base is None:
        return None
    return dataclasses.replace(
        base, rng=random.Random(PARTITION_RNG_SEED ^ (number * 2654435761))
    )


class ExecutionBackend:
    """Interface: run the controller's partitions, return the result."""

    #: Registry key and the ``ParallelRunResult.backend`` tag.
    name = "abstract"

    def run(
        self, controller: "MPAjaxCrawler", partitions: list[list[str]]
    ) -> "ParallelRunResult":
        raise NotImplementedError


class SimulatedBackend(ExecutionBackend):
    """Deterministic discrete-event scheduling over virtual time.

    Each partition is crawled (deterministically, in order) to obtain
    its network and CPU cost, then scheduled onto the earliest-free
    process line with contention-stretched CPU time — exactly the
    ``getPartitionID()`` protocol of §6.3.1.
    """

    name = "simulated"

    def run(
        self, controller: "MPAjaxCrawler", partitions: list[list[str]]
    ) -> "ParallelRunResult":
        from repro.parallel.mpcrawler import ParallelRunResult

        merged = CrawlResult()
        merged_stats = NetworkStats()
        summaries = []
        partition_numbers: list[int] = []
        partition_durations: list[float] = []
        partition_results: dict[int, CrawlResult] = {}
        line_times = [0.0] * controller.num_proc_lines
        stretch = controller.machine.cpu_stretch(
            min(controller.num_proc_lines, max(len(partitions), 1))
        )
        for number, urls in enumerate(partitions, start=1):
            result, summary = controller.crawl_partition(number, urls)
            merged.merge(result)
            merged_stats.merge(summary.network)
            summaries.append(summary)
            partition_results[number] = result
            duration = (
                controller.machine.process_startup_ms
                + summary.network_time_ms
                + summary.cpu_time_ms * stretch
            )
            partition_numbers.append(number)
            partition_durations.append(duration)
            # Earliest-free line grabs the next partition (getPartitionID()).
            line = min(
                range(controller.num_proc_lines), key=lambda i: line_times[i]
            )
            line_times[line] += duration
        return ParallelRunResult(
            result=merged,
            summaries=summaries,
            makespan_ms=max(line_times) if partitions else 0.0,
            line_finish_ms=list(line_times),
            stats=merged_stats,
            partition_numbers=partition_numbers,
            partition_durations_ms=partition_durations,
            num_proc_lines=controller.num_proc_lines,
            backend=self.name,
            partition_results=partition_results,
        )


class ThreadedBackend(ExecutionBackend):
    """Real threads over a sharded, work-stealing, bounded frontier.

    One worker thread per process line.  Partitions are dealt
    round-robin onto per-worker shards by a feeder thread (blocking on
    shard capacity — backpressure against huge partition lists); each
    worker drains its own shard FIFO and steals from the longest other
    shard when dry, so a skewed deal no longer leaves workers idle.
    Outcomes flow through a bounded queue to the collector and are
    merged **in partition order** after the last worker exits, which is
    what makes the merged result backend-independent.
    """

    name = "threads"

    def __init__(
        self,
        shard_capacity: Optional[int] = 16,
        result_capacity: int = 32,
    ) -> None:
        self.shard_capacity = shard_capacity
        self.result_capacity = result_capacity

    def run(
        self, controller: "MPAjaxCrawler", partitions: list[list[str]]
    ) -> "ParallelRunResult":
        from repro.parallel.mpcrawler import ParallelRunResult

        num_workers = controller.num_proc_lines
        started = time.perf_counter()
        frontier: ShardedFrontier[PartitionTask] = ShardedFrontier(
            num_workers, capacity=self.shard_capacity
        )
        outcomes: queue.Queue = queue.Queue(maxsize=self.result_capacity)
        worker_wall_ms = [0.0] * num_workers
        worker_errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def feed() -> None:
            try:
                for number, urls in enumerate(partitions, start=1):
                    # Deal partition k to shard (k-1) % workers; stealing
                    # rebalances whatever this static deal gets wrong.
                    frontier.push(
                        PartitionTask(number, tuple(urls)),
                        shard=(number - 1) % num_workers,
                    )
            finally:
                frontier.close()

        def work(worker_id: int) -> None:
            while True:
                task = frontier.pop(worker_id)
                if task is None:
                    return
                t0 = time.perf_counter()
                try:
                    result, summary = controller.crawl_partition(
                        task.number,
                        list(task.urls),
                        cost_model=partition_cost_model(
                            controller.cost_model, task.number
                        ),
                    )
                except BaseException as error:  # surfaced after join
                    with errors_lock:
                        worker_errors.append(error)
                    return
                wall_ms = (time.perf_counter() - t0) * 1000.0
                worker_wall_ms[worker_id] += wall_ms
                outcomes.put((task.number, result, summary, wall_ms))

        collected: dict[int, tuple] = {}

        feeder = threading.Thread(target=feed, name="frontier-feeder")
        feeder.start()
        with ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="crawl-worker"
        ) as pool:
            futures = [pool.submit(work, i) for i in range(num_workers)]
            # Drain while workers run: the bounded queue would otherwise
            # deadlock the workers once it fills.
            pending = len(partitions)
            while pending > 0:
                if worker_errors and all(f.done() for f in futures):
                    break
                try:
                    number, result, summary, wall_ms = outcomes.get(timeout=0.1)
                except queue.Empty:
                    continue
                collected[number] = (result, summary, wall_ms)
                pending -= 1
            for future in futures:
                future.result()
        feeder.join()
        if worker_errors:
            raise worker_errors[0]

        # Merge in partition order: backend-independent merged output.
        merged = CrawlResult()
        merged_stats = NetworkStats()
        summaries = []
        partition_numbers: list[int] = []
        partition_durations: list[float] = []
        partition_results: dict[int, CrawlResult] = {}
        for number in sorted(collected):
            result, summary, wall_ms = collected[number]
            merged.merge(result)
            merged_stats.merge(summary.network)
            summaries.append(summary)
            partition_results[number] = result
            partition_numbers.append(number)
            partition_durations.append(wall_ms)
        wall_time_ms = (time.perf_counter() - started) * 1000.0
        return ParallelRunResult(
            result=merged,
            summaries=summaries,
            # The virtual makespan of a wall-clock run is the largest
            # per-worker *virtual* crawl-time sum — the analogue of the
            # simulated scheduler's accounting, kept for the figures.
            makespan_ms=self._virtual_makespan(summaries, num_workers),
            line_finish_ms=list(worker_wall_ms),
            stats=merged_stats,
            partition_numbers=partition_numbers,
            partition_durations_ms=partition_durations,
            num_proc_lines=num_workers,
            backend=self.name,
            partition_results=partition_results,
            wall_time_ms=wall_time_ms,
            worker_wall_ms=list(worker_wall_ms),
            partitions_stolen=frontier.steals,
        )

    @staticmethod
    def _virtual_makespan(summaries, num_workers: int) -> float:
        line_times = [0.0] * num_workers
        for summary in summaries:
            line = min(range(num_workers), key=lambda i: line_times[i])
            line_times[line] += summary.crawl_time_ms
        return max(line_times) if summaries else 0.0


#: Backend registry: the CLI's ``--backend`` choices.
BACKENDS = {
    SimulatedBackend.name: SimulatedBackend,
    ThreadedBackend.name: ThreadedBackend,
}


def resolve_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """An :class:`ExecutionBackend` instance from a name or instance."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown execution backend {backend!r} (have {sorted(BACKENDS)})"
        ) from None
