"""Distributed result aggregation (§6.6).

In the parallel architecture the page models live with the partition
that crawled them, so materializing a search result takes one extra
step: "Determine the page model (the machine) the result originally
comes from."  The :class:`DistributedResultAggregator` keeps the
URL → model routing table over all partitions and then delegates to the
ordinary event-replay reconstruction of §5.4.
"""

from __future__ import annotations

from typing import Iterable

from repro.browser import Browser, Page
from repro.errors import SearchError
from repro.model import ApplicationModel
from repro.search.aggregation import ResultAggregator
from repro.search.engine import SearchResult


class DistributedResultAggregator:
    """Reconstructs result states when models are spread over partitions."""

    def __init__(
        self,
        browser: Browser,
        model_partitions: Iterable[list[ApplicationModel]],
    ) -> None:
        self._aggregator = ResultAggregator(browser)
        #: URL -> (partition number, model): the §6.6 routing step.
        self._route: dict[str, tuple[int, ApplicationModel]] = {}
        for partition_number, models in enumerate(model_partitions):
            for model in models:
                self._route[model.url] = (partition_number, model)

    def partition_of(self, uri: str) -> int:
        """Which partition (machine) holds the model of ``uri``."""
        entry = self._route.get(uri)
        if entry is None:
            raise SearchError(f"no crawled model for {uri!r} in any partition")
        return entry[0]

    def reconstruct(self, result: SearchResult) -> Page:
        """Materialize a search result as a live page (steps 1-5 of §6.6)."""
        entry = self._route.get(result.uri)
        if entry is None:
            raise SearchError(f"no crawled model for {result.uri!r} in any partition")
        _, model = entry
        return self._aggregator.reconstruct(model, result.state_id)
