"""A lenient HTML tokenizer and tree builder.

Covers the subset of HTML the synthetic sites (and realistic AJAX pages)
use: nested elements, quoted/unquoted attributes, void elements,
``<script>``/``<style>`` raw-text bodies, comments, doctypes and the five
predefined character entities plus numeric references.

The parser is forgiving like a browser: unmatched close tags pop to the
nearest matching ancestor and stray close tags are dropped.  A ``strict``
flag turns those recoveries into :class:`~repro.errors.HtmlParseError`
for tests that want to assert well-formedness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import HtmlParseError
from repro.dom.node import (
    Document,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
    VOID_ELEMENTS,
)

_ENTITY_RE = re.compile(r"&(#x?[0-9a-fA-F]+|[a-zA-Z]+);")

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
}


def unescape(text: str) -> str:
    """Resolve the supported character entities in ``text``."""

    def _replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        return _NAMED_ENTITIES.get(body.lower(), match.group(0))

    return _ENTITY_RE.sub(_replace, text)


@dataclass
class _Tag:
    """A parsed start or end tag."""

    name: str
    attrs: dict[str, str]
    closing: bool
    self_closing: bool
    end: int  # index just past the tag in the source


class HtmlParser:
    """Parses HTML text into :class:`~repro.dom.node.Document` trees."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict

    # -- public API ----------------------------------------------------------

    def parse_document(self, html: str, url: str = "") -> Document:
        """Parse a complete document; synthesizes ``<html>`` if absent."""
        children = self.parse_fragment(html)
        root = self._find_root(children)
        if root is None:
            root = Element("html")
            body = Element("body")
            root.append_child(body)
            for child in children:
                body.append_child(child)
        return Document(root, url=url)

    def parse_fragment(self, html: str) -> list[Node]:
        """Parse markup into a list of sibling nodes (for ``innerHTML``)."""
        root = Element("#fragment")
        stack: list[Element] = [root]
        pos = 0
        length = len(html)
        while pos < length:
            lt = html.find("<", pos)
            if lt == -1:
                self._append_text(stack[-1], html[pos:])
                break
            if lt > pos:
                self._append_text(stack[-1], html[pos:lt])
            pos = self._consume_markup(html, lt, stack)
        if self.strict and len(stack) > 1:
            raise HtmlParseError(f"unclosed element <{stack[-1].tag}>")
        return self._take_children(root)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _take_children(root: Element) -> list[Node]:
        children = list(root.children)
        for child in children:
            child.parent = None
        root.children.clear()
        return children

    @staticmethod
    def _find_root(children: list[Node]) -> Element | None:
        for child in children:
            if isinstance(child, Element) and child.tag == "html":
                return child
        return None

    @staticmethod
    def _append_text(parent: Element, raw: str) -> None:
        if not raw:
            return
        parent.append_child(Text(unescape(raw)))

    def _consume_markup(self, html: str, lt: int, stack: list[Element]) -> int:
        """Handle the markup starting at index ``lt``; return the next index."""
        if html.startswith("<!--", lt):
            end = html.find("-->", lt + 4)
            if end == -1:
                if self.strict:
                    raise HtmlParseError("unterminated comment")
                return len(html)
            return end + 3
        if html.startswith("<!", lt):  # doctype or other declaration
            end = html.find(">", lt)
            if end == -1:
                if self.strict:
                    raise HtmlParseError("unterminated declaration")
                return len(html)
            return end + 1
        tag = self._read_tag(html, lt)
        if tag is None:
            # A bare '<' that is not a tag: treat as text.
            self._append_text(stack[-1], "<")
            return lt + 1
        if tag.closing:
            self._close_tag(tag, stack)
            return tag.end
        return self._open_tag(html, tag, stack)

    def _open_tag(self, html: str, tag: _Tag, stack: list[Element]) -> int:
        element = Element(tag.name, tag.attrs)
        stack[-1].append_child(element)
        if tag.self_closing or tag.name in VOID_ELEMENTS:
            return tag.end
        if tag.name in RAW_TEXT_ELEMENTS:
            close = f"</{tag.name}"
            end = html.lower().find(close, tag.end)
            if end == -1:
                if self.strict:
                    raise HtmlParseError(f"unterminated <{tag.name}> element")
                end = len(html)
                raw = html[tag.end:end]
                close_end = end
            else:
                raw = html[tag.end:end]
                close_end = html.find(">", end)
                close_end = len(html) if close_end == -1 else close_end + 1
            if raw:
                element.append_child(Text(raw))
            return close_end
        stack.append(element)
        return tag.end

    def _close_tag(self, tag: _Tag, stack: list[Element]) -> None:
        for depth in range(len(stack) - 1, 0, -1):
            if stack[depth].tag == tag.name:
                del stack[depth:]
                return
        if self.strict:
            raise HtmlParseError(f"stray closing tag </{tag.name}>")
        # Lenient mode: ignore a close tag that matches nothing.

    def _read_tag(self, html: str, lt: int) -> _Tag | None:
        pos = lt + 1
        length = len(html)
        closing = False
        if pos < length and html[pos] == "/":
            closing = True
            pos += 1
        name_start = pos
        while pos < length and (html[pos].isalnum() or html[pos] in "-_:"):
            pos += 1
        if pos == name_start:
            return None
        name = html[name_start:pos].lower()
        attrs: dict[str, str] = {}
        self_closing = False
        while pos < length:
            while pos < length and html[pos].isspace():
                pos += 1
            if pos >= length:
                break
            char = html[pos]
            if char == ">":
                pos += 1
                return _Tag(name, attrs, closing, self_closing, pos)
            if char == "/" and pos + 1 < length and html[pos + 1] == ">":
                self_closing = True
                pos += 2
                return _Tag(name, attrs, closing, self_closing, pos)
            attr_name, attr_value, pos = self._read_attribute(html, pos)
            if attr_name:
                attrs[attr_name] = attr_value
            else:
                pos += 1  # skip an unparsable character
        if self.strict:
            raise HtmlParseError(f"unterminated tag <{name}>")
        return _Tag(name, attrs, closing, self_closing, length)

    @staticmethod
    def _read_attribute(html: str, pos: int) -> tuple[str, str, int]:
        length = len(html)
        name_start = pos
        while pos < length and html[pos] not in "=/> \t\r\n":
            pos += 1
        name = html[name_start:pos].lower()
        while pos < length and html[pos].isspace():
            pos += 1
        if pos >= length or html[pos] != "=":
            return name, "", pos
        pos += 1
        while pos < length and html[pos].isspace():
            pos += 1
        if pos < length and html[pos] in "\"'":
            quote = html[pos]
            pos += 1
            value_start = pos
            end = html.find(quote, pos)
            if end == -1:
                return name, unescape(html[value_start:]), length
            return name, unescape(html[value_start:end]), end + 1
        value_start = pos
        while pos < length and html[pos] not in "/> \t\r\n":
            pos += 1
        return name, unescape(html[value_start:pos]), pos


_DEFAULT_PARSER = HtmlParser()


def parse_document(html: str, url: str = "") -> Document:
    """Parse a full document with the default (lenient) parser."""
    return _DEFAULT_PARSER.parse_document(html, url=url)


def parse_fragment(html: str) -> list[Node]:
    """Parse a markup fragment with the default (lenient) parser."""
    return _DEFAULT_PARSER.parse_fragment(html)
