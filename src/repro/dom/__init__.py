"""DOM substrate: tree model, HTML parser, serializer and state hashing.

This package replaces the COBRA HTML toolkit the thesis used: it supplies
exactly the DOM operations the AJAX crawler and the browser substrate
need (parse, mutate via ``innerHTML``, enumerate events, hash states).
"""

from repro.dom.node import (
    Document,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
    VOID_ELEMENTS,
)
from repro.dom.parser import HtmlParser, parse_document, parse_fragment, unescape
from repro.dom.serialize import escape_attribute, escape_text, inner_html, serialize
from repro.dom.hashing import (
    DomHashes,
    HashStats,
    changed_regions,
    clear_digest_memo,
    hash_tree,
    reference_region_hashes,
    reference_state_hash,
    region_hashes,
    state_hash,
    text_hash,
)
from repro.dom.simhash import (
    bands_for_threshold,
    band_keys,
    hamming,
    simhash64,
    state_features,
)

__all__ = [
    "Document",
    "Element",
    "Node",
    "Text",
    "RAW_TEXT_ELEMENTS",
    "VOID_ELEMENTS",
    "HtmlParser",
    "parse_document",
    "parse_fragment",
    "unescape",
    "serialize",
    "inner_html",
    "escape_text",
    "escape_attribute",
    "state_hash",
    "text_hash",
    "region_hashes",
    "changed_regions",
    "hash_tree",
    "DomHashes",
    "HashStats",
    "reference_state_hash",
    "reference_region_hashes",
    "clear_digest_memo",
    "simhash64",
    "hamming",
    "band_keys",
    "bands_for_threshold",
    "state_features",
]
