"""Content hashing for duplicate-state detection.

Section 3.2: "Currently, we compute a hash of the content of the state.
Two states with the same hash value will be considered the same."

We hash the canonical serialization of the document (attributes in sorted
order, entities normalized), optionally excluding subtrees whose content
is noise for state identity (e.g. tracking pixels).  The hash is the sole
state-identity mechanism of the crawler, because every AJAX state shares
one URL.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

from repro.dom.node import Document, Element, Node, Text
from repro.dom.serialize import escape_attribute, escape_text


def state_hash(
    node: Node | Document,
    exclude: Optional[Callable[[Element], bool]] = None,
) -> str:
    """A hex SHA-256 of the canonical content of ``node``.

    ``exclude`` may mark element subtrees to skip (returns ``True`` to
    drop that element and everything below it from the digest).
    """
    digest = hashlib.sha256()
    root = node.root if isinstance(node, Document) else node
    _feed(root, digest, exclude)
    return digest.hexdigest()


def _feed(
    node: Node,
    digest: "hashlib._Hash",
    exclude: Optional[Callable[[Element], bool]],
) -> None:
    if isinstance(node, Text):
        digest.update(escape_text(node.data).encode("utf-8"))
        return
    if not isinstance(node, Element):
        return
    if exclude is not None and exclude(node):
        return
    digest.update(b"<")
    digest.update(node.tag.encode("utf-8"))
    for name in sorted(node.attrs):
        digest.update(f' {name}="{escape_attribute(node.attrs[name])}"'.encode("utf-8"))
    digest.update(b">")
    for child in node.children:
        _feed(child, digest, exclude)
    digest.update(f"</{node.tag}>".encode("utf-8"))


def region_hashes(node: Node | Document) -> dict[str, str]:
    """Per-region content digests: ``id`` attribute → subtree hash.

    The application model annotates each transition with the page
    regions an event modified (``modif*`` in Algorithm 3.1.1).  Regions
    are the elements carrying an ``id``; comparing two of these maps
    (:func:`changed_regions`) yields the ids whose subtree actually
    changed, instead of a hardcoded guess.
    """
    regions: dict[str, str] = {}
    root = node.root if isinstance(node, Document) else node
    _collect_regions(root, regions)
    return regions


def _collect_regions(node: Node, regions: dict[str, str]) -> None:
    if not isinstance(node, Element):
        return
    identifier = node.attrs.get("id")
    if identifier:
        regions[identifier] = state_hash(node)
    for child in node.children:
        _collect_regions(child, regions)


def changed_regions(before: dict[str, str], after: dict[str, str]) -> tuple[str, ...]:
    """Ids whose subtree hash differs between two region maps.

    Regions present on only one side (inserted/removed containers)
    count as changed.  Nested ids both report when an inner change also
    alters the outer subtree — callers get the full containment chain.
    """
    ids = set(before) | set(after)
    return tuple(sorted(i for i in ids if before.get(i) != after.get(i)))


def text_hash(node: Node | Document) -> str:
    """A hex SHA-256 of just the visible text (a looser identity)."""
    root = node.root if isinstance(node, Document) else node
    if isinstance(root, Element):
        text = root.text_content
    elif isinstance(root, Text):
        text = root.data
    else:
        text = ""
    normalized = " ".join(text.split())
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()
