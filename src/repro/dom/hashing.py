"""Content hashing for duplicate-state detection.

Section 3.2: "Currently, we compute a hash of the content of the state.
Two states with the same hash value will be considered the same."

We hash the canonical serialization of the document (attributes in sorted
order, entities normalized), optionally excluding subtrees whose content
is noise for state identity (e.g. tracking pixels).  The hash is the sole
state-identity mechanism of the crawler, because every AJAX state shares
one URL.

Since the incremental-hashing change, the default path is a **bottom-up
Merkle hasher**: every :class:`~repro.dom.node.Element` caches the
canonical hash-stream bytes of its subtree, and DOM mutators
(``append_child``/``remove_child``/``set_attribute``/text edits) clear
the cache along the ancestor chain (a dirty bit that propagates upward).
A hash pass therefore re-serializes and re-hashes only the dirty
subtrees and reads cached bytes/digests everywhere else, and one such
pass (:func:`hash_tree`) yields *both* the state hash and the full
region map.  Digest values are **byte-identical** to the historical
full-rewalk implementation (kept as :func:`reference_state_hash` /
:func:`reference_region_hashes` for oracle tests and baseline
benchmarks): the Merkle structure changes the work done, never the hash.

A small bounded memo maps canonical bytes to their hex digest, so a
subtree (or whole state) that toggles back to previously seen content
costs no SHA-256 work at all — the common case in a crawl, where most
fired events lead to already-known states.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dom.node import Document, Element, Node, Text
from repro.dom.serialize import escape_attribute, escape_text

#: Upper bound on the canonical-bytes -> hex digest memo; when full the
#: memo is cleared wholesale (simple, allocation-free admission policy).
DIGEST_MEMO_LIMIT = 8192

_DIGEST_MEMO: dict[bytes, str] = {}


def clear_digest_memo() -> None:
    """Drop the global digest memo (tests, memory pressure)."""
    _DIGEST_MEMO.clear()


@dataclass
class HashStats:
    """Work accounting across hash passes (one instance per page).

    ``nodes_hashed`` counts nodes whose canonical bytes had to be
    rebuilt; ``nodes_skipped`` counts nodes served from a clean subtree
    cache; ``bytes_hashed`` counts bytes actually fed to SHA-256 (memo
    hits feed nothing).  The reference full-rewalk implementations
    count into the same fields, so seed-baseline and Merkle runs are
    directly comparable.
    """

    full_passes: int = 0
    incremental_passes: int = 0
    nodes_hashed: int = 0
    nodes_skipped: int = 0
    bytes_hashed: int = 0
    digests_computed: int = 0
    digests_memoized: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "full_passes": self.full_passes,
            "incremental_passes": self.incremental_passes,
            "nodes_hashed": self.nodes_hashed,
            "nodes_skipped": self.nodes_skipped,
            "bytes_hashed": self.bytes_hashed,
            "digests_computed": self.digests_computed,
            "digests_memoized": self.digests_memoized,
        }


#: Shared throwaway accounting object for callers that do not measure.
_NULL_STATS = HashStats()


@dataclass(frozen=True)
class DomHashes:
    """Result of one combined hash pass over a document."""

    #: The state hash (hex SHA-256 of the canonical serialization).
    state: str
    #: ``id`` attribute -> canonical subtree digest, document pre-order.
    regions: dict[str, str] = field(compare=False)
    #: Nodes whose canonical bytes were rebuilt during this pass.
    nodes_hashed: int = 0
    #: Nodes served from clean subtree caches.
    nodes_skipped: int = 0
    #: Bytes fed to SHA-256 during this pass.
    bytes_hashed: int = 0
    #: Whether cached subtrees were reused (False = full rebuild).
    incremental: bool = False


# -- shared byte-chunk helpers -------------------------------------------------


def element_open_bytes(element: Element) -> bytes:
    """The canonical ``<tag a="v" ...>`` bytes of one element.

    Built once per attribute state and cached on the element (cleared by
    ``set_attribute``/``remove_attribute``); shared by the Merkle leaf
    hasher and the legacy/exclude walk so neither re-encodes attribute
    f-strings per visit.
    """
    cached = element._open_bytes
    if cached is not None:
        return cached
    attrs = element.attrs
    if attrs:
        inner = "".join(
            f' {name}="{escape_attribute(attrs[name])}"' for name in sorted(attrs)
        )
        chunk = f"<{element.tag}{inner}>".encode("utf-8")
    else:
        chunk = f"<{element.tag}>".encode("utf-8")
    element._open_bytes = chunk
    return chunk


def _text_bytes(node: Text) -> bytes:
    cached = node._hash_bytes
    if cached is None:
        cached = escape_text(node.data).encode("utf-8")
        node._hash_bytes = cached
    return cached


def _digest_of(canon: bytes, stats: HashStats) -> str:
    """Hex digest of canonical bytes, via the bounded global memo."""
    digest = _DIGEST_MEMO.get(canon)
    if digest is not None:
        stats.digests_memoized += 1
        return digest
    digest = hashlib.sha256(canon).hexdigest()
    stats.bytes_hashed += len(canon)
    stats.digests_computed += 1
    if len(_DIGEST_MEMO) >= DIGEST_MEMO_LIMIT:
        _DIGEST_MEMO.clear()
    _DIGEST_MEMO[canon] = digest
    return digest


# -- the Merkle pass -----------------------------------------------------------


def _build(element: Element, stats: HashStats) -> None:
    """Ensure ``element``'s subtree caches are populated, bottom-up.

    Rebuilds only dirty subtrees; a clean element contributes its cached
    bytes, region entries and node count without being descended into.
    """
    if element._canon_bytes is not None:
        stats.nodes_skipped += element._node_count or 1
        return
    parts: list[bytes] = [element_open_bytes(element)]
    items: list[tuple[str, str]] = []
    count = 1
    for child in element.children:
        if isinstance(child, Text):
            parts.append(_text_bytes(child))
            count += 1
            stats.nodes_hashed += 1
        elif isinstance(child, Element):
            _build(child, stats)
            parts.append(child._canon_bytes)  # type: ignore[arg-type]
            items.extend(child._region_items or ())
            count += child._node_count or 1
    parts.append(f"</{element.tag}>".encode("utf-8"))
    canon = b"".join(parts)
    element._canon_bytes = canon
    element._canon_digest = None
    element._node_count = count
    stats.nodes_hashed += 1
    identifier = element.attrs.get("id")
    if identifier:
        items.insert(0, (identifier, _digest_of(canon, stats)))
        element._canon_digest = items[0][1]
    element._region_items = tuple(items)


def hash_tree(
    node: Node | Document,
    stats: Optional[HashStats] = None,
) -> DomHashes:
    """One combined pass: state hash **and** full region map.

    Re-hashes only dirty subtrees; everything clean is read from the
    per-element caches.  Byte-identical to running the historical
    :func:`reference_state_hash` + :func:`reference_region_hashes`.
    """
    stats = stats if stats is not None else HashStats()
    root = node.root if isinstance(node, Document) else node
    if not isinstance(root, Element):
        # Degenerate roots (bare text) have no regions and no cache.
        return DomHashes(
            state=reference_state_hash(root, stats=stats), regions={}
        )
    before_hashed = stats.nodes_hashed
    before_skipped = stats.nodes_skipped
    before_bytes = stats.bytes_hashed
    was_clean = root._canon_bytes is not None
    _build(root, stats)
    digest = root._canon_digest
    if digest is None:
        digest = _digest_of(root._canon_bytes, stats)  # type: ignore[arg-type]
        root._canon_digest = digest
    incremental = was_clean or stats.nodes_skipped > before_skipped
    if incremental:
        stats.incremental_passes += 1
    else:
        stats.full_passes += 1
    return DomHashes(
        state=digest,
        regions=dict(root._region_items or ()),
        nodes_hashed=stats.nodes_hashed - before_hashed,
        nodes_skipped=stats.nodes_skipped - before_skipped,
        bytes_hashed=stats.bytes_hashed - before_bytes,
        incremental=incremental,
    )


# -- public API (historical signatures, Merkle-backed) -------------------------


def state_hash(
    node: Node | Document,
    exclude: Optional[Callable[[Element], bool]] = None,
    stats: Optional[HashStats] = None,
) -> str:
    """A hex SHA-256 of the canonical content of ``node``.

    ``exclude`` may mark element subtrees to skip (returns ``True`` to
    drop that element and everything below it from the digest); an
    exclusion changes the byte stream, so that path always takes the
    reference full walk instead of the subtree caches.
    """
    if exclude is not None:
        return reference_state_hash(node, exclude=exclude, stats=stats)
    return hash_tree(node, stats=stats).state


def region_hashes(
    node: Node | Document, stats: Optional[HashStats] = None
) -> dict[str, str]:
    """Per-region content digests: ``id`` attribute → subtree hash.

    The application model annotates each transition with the page
    regions an event modified (``modif*`` in Algorithm 3.1.1).  Regions
    are the elements carrying an ``id``; comparing two of these maps
    (:func:`changed_regions`) yields the ids whose subtree actually
    changed, instead of a hardcoded guess.
    """
    return hash_tree(node, stats=stats).regions


def changed_regions(before: dict[str, str], after: dict[str, str]) -> tuple[str, ...]:
    """Ids whose subtree hash differs between two region maps.

    Regions present on only one side (inserted/removed containers)
    count as changed.  Nested ids both report when an inner change also
    alters the outer subtree — callers get the full containment chain.
    """
    ids = set(before) | set(after)
    return tuple(sorted(i for i in ids if before.get(i) != after.get(i)))


# -- reference full-rewalk implementation --------------------------------------


def reference_state_hash(
    node: Node | Document,
    exclude: Optional[Callable[[Element], bool]] = None,
    stats: Optional[HashStats] = None,
) -> str:
    """The historical full-rewalk hash: every byte fed on every call.

    This is the oracle the Merkle hasher must match byte-for-byte, and
    the seed baseline the hashing benchmark measures against.  It never
    reads or writes the subtree caches (beyond the shared open-tag /
    text byte chunks, which are content-derived).
    """
    stats = stats if stats is not None else _NULL_STATS
    digest = hashlib.sha256()
    root = node.root if isinstance(node, Document) else node
    _feed(root, digest, exclude, stats)
    stats.full_passes += 1
    return digest.hexdigest()


def _feed(
    node: Node,
    digest: "hashlib._Hash",
    exclude: Optional[Callable[[Element], bool]],
    stats: HashStats,
) -> None:
    if isinstance(node, Text):
        chunk = _text_bytes(node)
        digest.update(chunk)
        stats.nodes_hashed += 1
        stats.bytes_hashed += len(chunk)
        return
    if not isinstance(node, Element):
        return
    if exclude is not None and exclude(node):
        return
    opening = element_open_bytes(node)
    digest.update(opening)
    for child in node.children:
        _feed(child, digest, exclude, stats)
    closing = f"</{node.tag}>".encode("utf-8")
    digest.update(closing)
    stats.nodes_hashed += 1
    stats.bytes_hashed += len(opening) + len(closing)


def reference_region_hashes(
    node: Node | Document, stats: Optional[HashStats] = None
) -> dict[str, str]:
    """The historical region walk: one full subtree re-hash per id."""
    regions: dict[str, str] = {}
    root = node.root if isinstance(node, Document) else node
    _collect_regions(root, regions, stats if stats is not None else _NULL_STATS)
    return regions


def _collect_regions(node: Node, regions: dict[str, str], stats: HashStats) -> None:
    if not isinstance(node, Element):
        return
    identifier = node.attrs.get("id")
    if identifier:
        regions[identifier] = reference_state_hash(node, stats=stats)
    for child in node.children:
        _collect_regions(child, regions, stats)


def text_hash(node: Node | Document) -> str:
    """A hex SHA-256 of just the visible text (a looser identity)."""
    root = node.root if isinstance(node, Document) else node
    if isinstance(root, Element):
        text = root.text_content
    elif isinstance(root, Text):
        text = root.data
    else:
        text = ""
    normalized = " ".join(text.split())
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()
