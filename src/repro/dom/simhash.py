"""64-bit simhash fingerprints over per-region DOM features.

Exact state hashing (``repro.dom.hashing``) treats a one-token change —
a timestamp, a rotating ad, a shuffled list — as a brand-new state,
which is exactly the state-explosion failure mode the thesis' DOM-state
model hits on real sites.  This module provides the similarity layer
underneath near-duplicate collapse (``repro.crawler.dedup``):

* :func:`state_features` walks a DOM tree and emits a *set* of feature
  strings: one structural feature per region (element carrying an
  ``id`` attribute) and one feature per distinct visible-text token,
  qualified by the innermost enclosing region so the same word in two
  different regions stays two different features.  Script/style bodies
  are excluded — they are invisible chrome shared by every state of a
  page and would swamp the signal (see DESIGN.md decision 14).
* :func:`simhash64` folds a feature set into a 64-bit fingerprint whose
  Hamming distance tracks the cosine distance between feature sets.
* :func:`hamming` / :func:`band_keys` / :func:`bands_for_threshold`
  supply the distance metric and the banded LSH decomposition with a
  recall guarantee: with ``b`` bands of ``r = 64 / b`` bits, two
  fingerprints within Hamming distance ``b - 1`` *must* agree on at
  least one full band (pigeonhole), so choosing the smallest ``b`` with
  ``b >= threshold + 1`` makes banded candidate lookup exact (recall 1)
  for that threshold.
"""

from __future__ import annotations

import re
from hashlib import blake2b
from typing import Iterable

from repro.dom.node import Document, Element, Node, RAW_TEXT_ELEMENTS, Text

__all__ = [
    "FINGERPRINT_BITS",
    "band_keys",
    "bands_for_threshold",
    "hamming",
    "simhash64",
    "state_features",
]

#: Width of every fingerprint produced by :func:`simhash64`.
FINGERPRINT_BITS = 64

_FULL_MASK = (1 << FINGERPRINT_BITS) - 1

#: Visible-text tokens: lower-case alphanumeric runs, same shape the
#: search tokenizer produces, so marker words survive intact.
_TOKEN_RE = re.compile(r"[a-z0-9]+")


def state_features(node: Node | Document) -> frozenset[str]:
    """Feature set of a DOM state: region structure + qualified tokens.

    Features come in two flavours:

    * ``r!{region_id}`` — one per element with an ``id`` attribute, so
      adding or removing a region moves the fingerprint even when no
      visible text changes;
    * ``{region_id}!{token}`` — one per distinct (innermost enclosing
      region, token) pair over visible text, plus one
      ``{region_id}!{t1}_{t2}`` feature per adjacent token pair within
      a single text run.  Text outside any region is qualified with the
      empty region id.

    Set semantics are deliberate: repeating a word does not increase
    its weight.  Unigrams keep the fingerprint stable under reorder;
    bigrams add enough stable mass that a single volatile token moves
    the fingerprint only a few bits.
    """
    root = node.root if isinstance(node, Document) else node
    features: set[str] = set()
    if root is None:
        return frozenset()
    _walk(root, "", features)
    return frozenset(features)


def _walk(node: Node, region: str, features: set[str]) -> None:
    if isinstance(node, Text):
        tokens = _TOKEN_RE.findall(node.data.lower())
        for token in tokens:
            features.add(f"{region}!{token}")
        # Adjacent-token bigrams within one text run: they widen the
        # stable feature mass, pulling twin fingerprints closer together
        # (one changed token flips few votes of many) while distinct
        # prose shares almost none of them.
        for first, second in zip(tokens, tokens[1:]):
            features.add(f"{region}!{first}_{second}")
        return
    if not isinstance(node, Element):
        return
    if node.tag in RAW_TEXT_ELEMENTS:
        return
    region_id = node.attrs.get("id")
    if region_id:
        features.add(f"r!{region_id}")
        region = region_id
    for child in node.children:
        _walk(child, region, features)


def _feature_hash(feature: str) -> int:
    return int.from_bytes(
        blake2b(feature.encode("utf-8"), digest_size=8).digest(), "big"
    )


def simhash64(features: Iterable[str]) -> int:
    """Weighted bit-vote simhash of a feature set.

    Each feature hashes to 64 bits; bit ``i`` of the fingerprint is 1
    when more features voted 1 than 0 at position ``i`` (ties break to
    0).  Input order is irrelevant and duplicates are collapsed, so any
    iterable yielding the same feature *set* produces the same value.
    """
    counts = [0] * FINGERPRINT_BITS
    for feature in set(features):
        h = _feature_hash(feature)
        for i in range(FINGERPRINT_BITS):
            if h & (1 << i):
                counts[i] += 1
            else:
                counts[i] -= 1
    fingerprint = 0
    for i, count in enumerate(counts):
        if count > 0:
            fingerprint |= 1 << i
    return fingerprint


def hamming(a: int, b: int) -> int:
    """Number of differing bits between two 64-bit fingerprints."""
    return ((a ^ b) & _FULL_MASK).bit_count()


def bands_for_threshold(threshold: int) -> int:
    """Smallest band count giving exact recall at ``threshold``.

    Two fingerprints at Hamming distance ``d`` split across ``b`` bands
    can corrupt at most ``d`` bands, so with ``b >= d + 1`` bands at
    least one band is identical on both sides.  Band counts must divide
    64 so every band has the same width.
    """
    if not 0 <= threshold < FINGERPRINT_BITS:
        raise ValueError(
            f"near-duplicate threshold must be in [0, {FINGERPRINT_BITS - 1}], "
            f"got {threshold}"
        )
    for bands in (1, 2, 4, 8, 16, 32, 64):
        if bands >= threshold + 1:
            return bands
    raise AssertionError("unreachable: threshold < 64 always fits 64 bands")


def band_keys(fingerprint: int, bands: int) -> tuple[int, ...]:
    """Split a fingerprint into ``bands`` equal-width integer keys."""
    if bands not in (1, 2, 4, 8, 16, 32, 64):
        raise ValueError(f"band count must divide {FINGERPRINT_BITS}, got {bands}")
    rows = FINGERPRINT_BITS // bands
    mask = (1 << rows) - 1
    return tuple((fingerprint >> (band * rows)) & mask for band in range(bands))
