"""Serialization of DOM trees back to HTML text.

Serialization is the inverse of parsing for the supported subset and is
also the basis of state hashing: two states are "the same" when their
canonical serializations hash equal (section 3.2 of the thesis).
"""

from __future__ import annotations

from repro.dom.node import (
    Document,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
    VOID_ELEMENTS,
)


def escape_text(text: str) -> str:
    """Escape character data for inclusion in markup."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in a double-quoted attribute."""
    return escape_text(value).replace('"', "&quot;")


def serialize(node: Node | Document) -> str:
    """Serialize a node (or whole document) to HTML text."""
    parts: list[str] = []
    if isinstance(node, Document):
        _serialize_into(node.root, parts)
    else:
        _serialize_into(node, parts)
    return "".join(parts)


def inner_html(element: Element) -> str:
    """Serialize just the children of ``element`` (the DOM ``innerHTML``)."""
    parts: list[str] = []
    for child in element.children:
        _serialize_into(child, parts, raw=element.tag in RAW_TEXT_ELEMENTS)
    return "".join(parts)


def _serialize_into(node: Node, parts: list[str], raw: bool = False) -> None:
    if isinstance(node, Text):
        parts.append(node.data if raw else escape_text(node.data))
        return
    if not isinstance(node, Element):
        raise TypeError(f"cannot serialize {type(node).__name__}")
    parts.append("<")
    parts.append(node.tag)
    for name in sorted(node.attrs):
        parts.append(f' {name}="{escape_attribute(node.attrs[name])}"')
    if node.tag in VOID_ELEMENTS and not node.children:
        parts.append("/>")
        return
    parts.append(">")
    child_raw = node.tag in RAW_TEXT_ELEMENTS
    for child in node.children:
        _serialize_into(child, parts, raw=child_raw)
    parts.append(f"</{node.tag}>")
