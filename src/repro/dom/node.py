"""A small DOM tree: documents, elements and text nodes.

The crawler only needs a focused subset of the W3C DOM: tree construction,
attribute access, ``innerHTML`` get/set, ``getElementById`` and text
extraction.  Everything here is plain Python objects — no external
dependencies — mirroring what the thesis obtained from the COBRA toolkit.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import DomError

#: Elements that never have children and never get a closing tag.
VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)

#: Elements whose body is raw text (no nested markup is parsed inside).
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


class Node:
    """Base class of every node in the tree."""

    def __init__(self) -> None:
        self.parent: Optional[Element] = None

    def _invalidate_ancestors(self) -> None:
        """Clear cached subtree digests on every ancestor (dirty bit).

        Propagation stops at the first already-dirty ancestor: its own
        ancestors were invalidated when it went dirty, so the walk is
        O(clean prefix), not O(depth), under repeated mutation.
        """
        node = self.parent
        while node is not None and node._canon_bytes is not None:
            node._canon_bytes = None
            node._canon_digest = None
            node._region_items = None
            node._node_count = None
            node = node.parent

    def detach(self) -> None:
        """Remove this node from its parent, if any."""
        if self.parent is not None:
            self.parent.remove_child(self)

    @property
    def owner_document(self) -> Optional["Document"]:
        """The :class:`Document` this node ultimately hangs off, if any."""
        node: Optional[Node] = self
        while node is not None:
            if isinstance(node, Element) and node._document is not None:
                return node._document
            node = node.parent
        return None


class Text(Node):
    """A run of character data."""

    def __init__(self, data: str) -> None:
        super().__init__()
        self._data = data
        #: Cached escaped hash-stream bytes of this run (None = dirty).
        self._hash_bytes: Optional[bytes] = None

    @property
    def data(self) -> str:
        return self._data

    @data.setter
    def data(self, value: str) -> None:
        self._data = value
        self._hash_bytes = None
        self._invalidate_ancestors()

    def clone(self) -> "Text":
        """A detached copy, carrying over the clean hash cache."""
        copy = Text(self._data)
        copy._hash_bytes = self._hash_bytes
        return copy

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"


class Element(Node):
    """An element node: tag name, attributes and ordered children."""

    def __init__(self, tag: str, attrs: Optional[dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Node] = []
        # Set on the root element by Document so owner_document resolves.
        self._document: Optional[Document] = None
        # -- Merkle hash cache (maintained by repro.dom.hashing) ------------
        #: Canonical hash-stream bytes of the whole subtree (None = dirty).
        self._canon_bytes: Optional[bytes] = None
        #: Hex SHA-256 of ``_canon_bytes`` (lazily computed, None = unknown).
        self._canon_digest: Optional[str] = None
        #: Cached ``(id, digest)`` region entries of the subtree, pre-order.
        self._region_items: Optional[tuple[tuple[str, str], ...]] = None
        #: Nodes in the subtree including self (for skip accounting).
        self._node_count: Optional[int] = None
        #: Cached open-tag bytes ``<tag a="v" ...>`` (attrs-dependent only).
        self._open_bytes: Optional[bytes] = None

    def _invalidate(self) -> None:
        """Mark this subtree's cached digest dirty and propagate upward."""
        self._canon_bytes = None
        self._canon_digest = None
        self._region_items = None
        self._node_count = None
        self._invalidate_ancestors()

    def clone(self) -> "Element":
        """A detached deep copy of the subtree, carrying over clean
        hash caches (used to restore page snapshots without losing the
        Merkle digests of unchanged regions)."""
        copy = Element(self.tag)
        copy.attrs = dict(self.attrs)
        copy._canon_bytes = self._canon_bytes
        copy._canon_digest = self._canon_digest
        copy._region_items = self._region_items
        copy._node_count = self._node_count
        copy._open_bytes = self._open_bytes
        append = copy.children.append
        for child in self.children:
            twin = child.clone()
            twin.parent = copy
            append(twin)
        return copy

    # -- tree manipulation -------------------------------------------------

    def append_child(self, child: Node) -> Node:
        """Append ``child``, detaching it from any previous parent."""
        if child is self:
            raise DomError("an element cannot be its own child")
        child.detach()
        child.parent = self
        self.children.append(child)
        self._invalidate()
        return child

    def insert_before(self, new: Node, reference: Optional[Node]) -> Node:
        """Insert ``new`` before ``reference`` (or append when ``None``)."""
        if reference is None:
            return self.append_child(new)
        try:
            index = self.children.index(reference)
        except ValueError:
            raise DomError("reference node is not a child of this element") from None
        new.detach()
        new.parent = self
        self.children.insert(index, new)
        self._invalidate()
        return new

    def remove_child(self, child: Node) -> Node:
        """Remove ``child`` from this element."""
        try:
            self.children.remove(child)
        except ValueError:
            raise DomError("node is not a child of this element") from None
        child.parent = None
        self._invalidate()
        return child

    def replace_children(self, new_children: list[Node]) -> None:
        """Atomically replace all children (used by ``innerHTML`` set)."""
        for child in list(self.children):
            self.remove_child(child)
        for child in new_children:
            self.append_child(child)

    # -- attributes ---------------------------------------------------------

    def get_attribute(self, name: str) -> Optional[str]:
        """The value of attribute ``name`` or ``None``."""
        return self.attrs.get(name.lower())

    def set_attribute(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value``."""
        self.attrs[name.lower()] = value
        self._open_bytes = None
        self._invalidate()

    def has_attribute(self, name: str) -> bool:
        """Whether attribute ``name`` is present."""
        return name.lower() in self.attrs

    def remove_attribute(self, name: str) -> None:
        """Drop attribute ``name`` if present."""
        self.attrs.pop(name.lower(), None)
        self._open_bytes = None
        self._invalidate()

    @property
    def id(self) -> Optional[str]:
        """Shorthand for the ``id`` attribute."""
        return self.attrs.get("id")

    # -- traversal ----------------------------------------------------------

    def iter_descendants(self) -> Iterator[Node]:
        """Depth-first pre-order iteration over all descendant nodes."""
        stack: list[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        """Depth-first iteration over descendant *elements* only."""
        for node in self.iter_descendants():
            if isinstance(node, Element):
                yield node

    def find(self, predicate: Callable[["Element"], bool]) -> Optional["Element"]:
        """First descendant element matching ``predicate``, or ``None``."""
        for element in self.iter_elements():
            if predicate(element):
                return element
        return None

    def find_all(self, predicate: Callable[["Element"], bool]) -> list["Element"]:
        """All descendant elements matching ``predicate``."""
        return [element for element in self.iter_elements() if predicate(element)]

    def get_elements_by_tag(self, tag: str) -> list["Element"]:
        """All descendant elements with the given tag name."""
        tag = tag.lower()
        return self.find_all(lambda element: element.tag == tag)

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        """First descendant with ``id == element_id`` (or this element itself)."""
        if self.attrs.get("id") == element_id:
            return self
        return self.find(lambda element: element.attrs.get("id") == element_id)

    # -- content ------------------------------------------------------------

    @property
    def text_content(self) -> str:
        """Concatenation of all descendant text, script/style excluded."""
        parts: list[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: list[str]) -> None:
        if self.tag in RAW_TEXT_ELEMENTS:
            return
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.data)
            elif isinstance(child, Element):
                child._collect_text(parts)

    def __repr__(self) -> str:
        element_id = self.attrs.get("id")
        suffix = f" id={element_id!r}" if element_id else ""
        return f"<Element {self.tag}{suffix} children={len(self.children)}>"


class Document:
    """A parsed HTML document: the root element plus convenience lookups."""

    def __init__(self, root: Element, url: str = "") -> None:
        self.root = root
        self.url = url
        root._document = self

    @property
    def body(self) -> Optional[Element]:
        """The ``<body>`` element, if present."""
        if self.root.tag == "body":
            return self.root
        elements = self.root.get_elements_by_tag("body")
        return elements[0] if elements else None

    @property
    def head(self) -> Optional[Element]:
        """The ``<head>`` element, if present."""
        elements = self.root.get_elements_by_tag("head")
        return elements[0] if elements else None

    def clone(self) -> "Document":
        """A deep copy of the document that keeps the clean Merkle hash
        caches of every node (snapshot restoration without re-hashing)."""
        return Document(self.root.clone(), url=self.url)

    def create_element(self, tag: str, attrs: Optional[dict[str, str]] = None) -> Element:
        """Create a detached element owned by this document."""
        return Element(tag, attrs)

    def create_text_node(self, data: str) -> Text:
        """Create a detached text node."""
        return Text(data)

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """Look up an element anywhere in the document by its ``id``."""
        return self.root.get_element_by_id(element_id)

    def get_elements_by_tag(self, tag: str) -> list[Element]:
        """All elements in the document with the given tag."""
        tag = tag.lower()
        result = [self.root] if self.root.tag == tag else []
        result.extend(self.root.get_elements_by_tag(tag))
        return result

    @property
    def text_content(self) -> str:
        """All visible text of the document."""
        return self.root.text_content

    def __repr__(self) -> str:
        return f"Document(url={self.url!r})"
