"""Span trees: reconstruct causal structure from a flat trace.

A trace recorded with ``Recorder(spans=True)`` interleaves paired
``span_start``/``span_end`` events with ordinary point events, all
linked by ``parent_id``.  :class:`SpanTree` folds that flat JSONL
stream back into a forest of :class:`Span` nodes, validating the
nesting as it goes, and charges every span two times:

* **inclusive** — ``end.t_ms - start.t_ms``, the whole subtree's
  virtual wall time;
* **exclusive** — inclusive minus the inclusive time of direct
  children, i.e. the time attributable to the span's own work.

Exclusive times are clamped at zero: per-partition clock rebinds
(:class:`repro.parallel.SimpleAjaxCrawler` starts a fresh
``SimClock`` per partition) mean time is only comparable *within* one
root span, and the builder never compares timestamps across roots.

Validation (strict mode, the default) rejects: duplicate span ids,
``span_end`` without a start, ends out of LIFO order with respect to
the per-parent open set, negative durations, parents that close before
their children, and children whose start refers to an unknown span.
Lenient mode (``strict=False``) keeps going and collects the problems
in :attr:`SpanTree.problems` — useful when doctoring a truncated trace
from a crashed crawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from repro.obs.events import SPAN_END, SPAN_START, TraceEvent, from_jsonl

#: Tolerance for float time comparisons (virtual-clock ms).
_EPS = 1e-6


class SpanNestingError(ValueError):
    """The trace's span events do not form a valid tree."""


@dataclass
class Span:
    """One reconstructed span: a node of the causal tree."""

    #: Unique id within one recorder (the ``span_id`` field).
    span_id: int
    #: Span kind — ``crawl``, ``page``, ``fire_event``, ``js_exec``, ...
    kind: str
    #: Parent span id, or None for a root.
    parent_id: Optional[int]
    #: Virtual-clock ms at ``span_start``.
    start_ms: float
    #: Virtual-clock ms at ``span_end`` (None while open / truncated).
    end_ms: Optional[float] = None
    #: Fields of the start event (minus the envelope).
    fields: dict[str, Any] = field(default_factory=dict)
    #: Fields the span_end event added (results, ``error`` flag).
    end_fields: dict[str, Any] = field(default_factory=dict)
    #: Direct children, in start order.
    children: list["Span"] = field(default_factory=list)
    #: Point events parented directly to this span, in seq order.
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_ms is not None

    @property
    def error(self) -> bool:
        return bool(self.end_fields.get("error"))

    @property
    def inclusive_ms(self) -> float:
        """Whole-subtree virtual time (0.0 for unclosed spans)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def exclusive_ms(self) -> float:
        """Inclusive minus direct children's inclusive, clamped at 0."""
        remaining = self.inclusive_ms
        for child in self.children:
            remaining -= child.inclusive_ms
        return max(0.0, remaining)

    def label(self) -> str:
        """Human-readable frame name for stacks and tables."""
        kind = self.kind
        if kind == "js_fn" and "name" in self.fields:
            return f"js_fn:{self.fields['name']}"
        if kind == "partition" and "partition" in self.fields:
            return f"partition:{self.fields['partition']}"
        if kind == "page" and "url" in self.fields:
            return f"page:{self.fields['url']}"
        return kind

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanTree:
    """A validated forest of spans plus the point events they own."""

    def __init__(
        self,
        roots: list[Span],
        spans_by_id: dict[int, Span],
        orphan_events: list[TraceEvent],
        problems: list[str],
    ) -> None:
        #: Top-level spans (no parent), in start order.
        self.roots = roots
        self._by_id = spans_by_id
        #: Point events with no (or unknown) parent span.
        self.orphan_events = orphan_events
        #: Validation problems collected in lenient mode.
        self.problems = problems

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent], strict: bool = True) -> "SpanTree":
        """Build (and validate) the tree from an event stream."""
        roots: list[Span] = []
        by_id: dict[int, Span] = {}
        open_ids: set[int] = set()
        orphans: list[TraceEvent] = []
        problems: list[str] = []

        def problem(message: str) -> None:
            if strict:
                raise SpanNestingError(message)
            problems.append(message)

        for event in sorted(events, key=lambda e: e.seq):
            if event.kind == SPAN_START:
                fields = dict(event.fields)
                span_id = fields.pop("span_id", None)
                kind = fields.pop("span", "?")
                parent_id = fields.pop("parent_id", None)
                if span_id is None:
                    problem(f"span_start without span_id at seq {event.seq}")
                    continue
                if span_id in by_id:
                    problem(f"duplicate span_id {span_id} at seq {event.seq}")
                    continue
                span = Span(
                    span_id=span_id,
                    kind=kind,
                    parent_id=parent_id,
                    start_ms=event.t_ms,
                    fields=fields,
                )
                by_id[span_id] = span
                open_ids.add(span_id)
                if parent_id is None:
                    roots.append(span)
                else:
                    parent = by_id.get(parent_id)
                    if parent is None:
                        problem(
                            f"span {span_id} ({kind}) starts under unknown "
                            f"parent {parent_id}"
                        )
                        span.parent_id = None
                        roots.append(span)
                    elif parent_id not in open_ids:
                        problem(
                            f"span {span_id} ({kind}) starts under already-"
                            f"closed parent {parent_id}"
                        )
                        span.parent_id = None
                        roots.append(span)
                    else:
                        parent.children.append(span)
            elif event.kind == SPAN_END:
                fields = dict(event.fields)
                span_id = fields.pop("span_id", None)
                fields.pop("span", None)
                fields.pop("parent_id", None)
                span = by_id.get(span_id)
                if span is None:
                    problem(f"span_end for unknown span {span_id} at seq {event.seq}")
                    continue
                if span.closed:
                    problem(f"span {span_id} ({span.kind}) ended twice")
                    continue
                still_open = [c.span_id for c in span.children if c.span_id in open_ids]
                if still_open:
                    problem(
                        f"span {span_id} ({span.kind}) closed while children "
                        f"{still_open} still open"
                    )
                if event.t_ms < span.start_ms - _EPS:
                    problem(
                        f"span {span_id} ({span.kind}) ends at {event.t_ms} "
                        f"before its start {span.start_ms}"
                    )
                span.end_ms = event.t_ms
                span.end_fields = fields
                open_ids.discard(span_id)
            else:
                parent_id = event.fields.get("parent_id")
                parent = by_id.get(parent_id) if parent_id is not None else None
                if parent is not None:
                    parent.events.append(event)
                else:
                    orphans.append(event)

        for span_id in sorted(open_ids):
            problem(f"span {span_id} ({by_id[span_id].kind}) never ended")

        tree = cls(roots, by_id, orphans, problems)
        tree._check_time_budget(problem)
        return tree

    @classmethod
    def from_jsonl(cls, text: str, strict: bool = True) -> "SpanTree":
        """Parse canonical JSONL then build the tree."""
        return cls.from_events(from_jsonl(text), strict=strict)

    def _check_time_budget(self, problem: Any) -> None:
        """Children's inclusive time must fit inside the parent's."""
        for span in self.walk():
            if not span.closed:
                continue
            child_sum = sum(c.inclusive_ms for c in span.children if c.closed)
            if child_sum > span.inclusive_ms + _EPS:
                problem(
                    f"span {span.span_id} ({span.kind}): children's inclusive "
                    f"time {child_sum:.6f}ms exceeds parent's "
                    f"{span.inclusive_ms:.6f}ms"
                )

    # -- queries ------------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def walk(self) -> Iterator[Span]:
        """Pre-order traversal of the whole forest."""
        for root in self.roots:
            yield from root.walk()

    def by_kind(self, kind: str) -> list[Span]:
        return [span for span in self.walk() if span.kind == kind]

    def __len__(self) -> int:
        return len(self._by_id)


def format_span_tree(tree: SpanTree, max_depth: Optional[int] = None) -> str:
    """Render the forest as an indented text outline."""
    lines: list[str] = []

    def render(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        marker = " [error]" if span.error else ("" if span.closed else " [open]")
        lines.append(
            f"{'  ' * depth}{span.label()}  "
            f"incl={span.inclusive_ms:.1f}ms excl={span.exclusive_ms:.1f}ms"
            f"{marker}"
        )
        for child in span.children:
            render(child, depth + 1)

    for root in tree.roots:
        render(root, 0)
    if tree.problems:
        lines.append("")
        lines.append(f"{len(tree.problems)} validation problem(s):")
        for message in tree.problems:
            lines.append(f"  ! {message}")
    return "\n".join(lines)
