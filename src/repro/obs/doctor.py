"""The trace doctor: rule-based diagnosis of sick crawls.

:func:`diagnose` scans whatever evidence is available — a trace-event
stream, a metrics snapshot (a :class:`MetricsRegistry` or its
``snapshot()`` dict), a finished parallel run — and emits typed
:class:`Finding` objects, each naming the rule that fired, the
measured signal, the threshold it crossed, and a suggested action.
A healthy crawl produces an empty list; ``make profile-smoke`` gates
on exactly that.

The rule table (also in docs/API.md):

==================== ============================================ =====================
rule id              signal                                        default threshold
==================== ============================================ =====================
quarantine-storm     quarantined events vs. fired events           >=3 and >=10% of fired
cache-collapse       hot-node hit rate over enough lookups         <10% over >=10 lookups
state-cap-truncation states rejected by the per-page cap           >=1
retry-amplification  retries vs. terminal network requests         >=3 and >=50% of requests
partition-skew       max/mean partition duration                   >=1.5x over >=2 partitions
hash-regression      subtree skip rate with incremental hashing    <40% over >=1 incr. pass
==================== ============================================ =====================

Evidence from different sources describes the *same* crawl, so
event-derived and metrics-derived counts are reconciled by ``max`` —
whichever source saw more of the phenomenon wins (a truncated trace
must not mask what the metrics recorded, and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.obs.events import (
    EVENT_FIRED,
    HASH_FULL,
    HASH_INCREMENTAL,
    HOTNODE_CACHE_HIT,
    HOTNODE_CACHE_MISS,
    PAGE_FETCH,
    RETRY,
    STATE_CAPPED,
    TraceEvent,
    XHR_CALL,
)
from repro.obs.metrics import MetricsRegistry

# -- findings ------------------------------------------------------------------------

#: Finding severities, mild to severe.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Finding:
    """One diagnosed anomaly, with evidence."""

    #: Stable rule identifier (the table above / docs/API.md).
    rule: str
    #: ``info`` | ``warning`` | ``critical``.
    severity: str
    #: One-line human statement of what was observed.
    message: str
    #: The measured value that triggered the rule.
    signal: float
    #: The threshold it crossed.
    threshold: float
    #: What the operator should do about it.
    action: str
    #: Supporting numbers (counts, rates, partition ids).
    evidence: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DoctorConfig:
    """Thresholds of every rule (see the module docstring table)."""

    quarantine_min_count: int = 3
    quarantine_min_ratio: float = 0.10
    cache_min_lookups: int = 10
    cache_min_hit_rate: float = 0.10
    retry_min_count: int = 3
    retry_min_ratio: float = 0.50
    skew_min_partitions: int = 2
    skew_max_ratio: float = 1.5
    hash_min_incremental_passes: int = 1
    hash_min_skip_rate: float = 0.40


DEFAULT_DOCTOR_CONFIG = DoctorConfig()


# -- signals: one normalized view over heterogeneous evidence ------------------------


@dataclass
class Signals:
    """The doctor's working set, extracted from any evidence source."""

    events_fired: int = 0
    events_quarantined: int = 0
    states_capped: int = 0
    retries: int = 0
    network_requests: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    hash_incremental_passes: int = 0
    hash_nodes_hashed: int = 0
    hash_nodes_skipped: int = 0
    #: (partition number, duration ms) pairs, when a parallel run or
    #: partition spans are available.
    partition_durations: list[tuple[int, float]] = field(default_factory=list)

    def merge_max(self, other: "Signals") -> None:
        """Reconcile two views of the same crawl (max wins per count)."""
        self.events_fired = max(self.events_fired, other.events_fired)
        self.events_quarantined = max(self.events_quarantined, other.events_quarantined)
        self.states_capped = max(self.states_capped, other.states_capped)
        self.retries = max(self.retries, other.retries)
        self.network_requests = max(self.network_requests, other.network_requests)
        self.cache_lookups = max(self.cache_lookups, other.cache_lookups)
        self.cache_hits = max(self.cache_hits, other.cache_hits)
        self.hash_incremental_passes = max(
            self.hash_incremental_passes, other.hash_incremental_passes
        )
        self.hash_nodes_hashed = max(self.hash_nodes_hashed, other.hash_nodes_hashed)
        self.hash_nodes_skipped = max(self.hash_nodes_skipped, other.hash_nodes_skipped)
        if other.partition_durations and not self.partition_durations:
            self.partition_durations = list(other.partition_durations)


def signals_from_events(events: Iterable[TraceEvent]) -> Signals:
    """Extract the doctor's signals from a trace-event stream."""
    events = list(events)
    signals = Signals()
    partition_spans: dict[int, float] = {}
    for event in events:
        kind = event.kind
        if kind == EVENT_FIRED:
            signals.events_fired += 1
            if event.fields.get("quarantined"):
                signals.events_quarantined += 1
        elif kind == STATE_CAPPED:
            signals.states_capped += 1
        elif kind == RETRY:
            signals.retries += 1
        elif kind == PAGE_FETCH:
            signals.network_requests += 1
        elif kind == XHR_CALL:
            if not event.fields.get("from_cache"):
                signals.network_requests += 1
        elif kind == HOTNODE_CACHE_HIT:
            signals.cache_lookups += 1
            signals.cache_hits += 1
        elif kind == HOTNODE_CACHE_MISS:
            signals.cache_lookups += 1
        elif kind in (HASH_FULL, HASH_INCREMENTAL):
            if kind == HASH_INCREMENTAL:
                signals.hash_incremental_passes += 1
            signals.hash_nodes_hashed += int(event.fields.get("nodes_hashed", 0))
            signals.hash_nodes_skipped += int(event.fields.get("nodes_skipped", 0))
    # Partition durations via span pairing (start t_ms by span_id).
    starts: dict[Any, TraceEvent] = {}
    for event in events:
        if event.kind == "span_start" and event.fields.get("span") == "partition":
            starts[event.fields.get("span_id")] = event
        elif event.kind == "span_end" and event.fields.get("span") == "partition":
            start = starts.get(event.fields.get("span_id"))
            if start is not None:
                number = int(start.fields.get("partition", 0))
                partition_spans[number] = event.t_ms - start.t_ms
    signals.partition_durations = sorted(partition_spans.items())
    return signals


def signals_from_metrics(metrics: Any) -> Signals:
    """Extract signals from a :class:`MetricsRegistry` or snapshot dict.

    Counter names come from ``crawl.*`` (:class:`CrawlReport`) and
    ``net.*`` (:class:`NetworkStats`).
    """
    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    else:
        snapshot = dict(metrics)
    counters = snapshot.get("counters", snapshot)

    def counter(name: str) -> float:
        return float(counters.get(name, 0))

    signals = Signals()
    signals.events_fired = int(counter("crawl.events_invoked"))
    signals.events_quarantined = int(counter("crawl.events_quarantined"))
    signals.states_capped = int(counter("crawl.states_capped"))
    signals.retries = int(counter("net.retries"))
    signals.network_requests = int(
        counter("net.page_fetches") + counter("net.ajax_calls")
    )
    signals.cache_hits = int(counter("crawl.cached_hits"))
    signals.cache_lookups = signals.cache_hits + int(counter("crawl.ajax_calls"))
    signals.hash_incremental_passes = int(counter("crawl.hash_incremental_passes"))
    signals.hash_nodes_hashed = int(counter("crawl.hash_nodes_hashed"))
    signals.hash_nodes_skipped = int(counter("crawl.hash_nodes_skipped"))
    return signals


def signals_from_parallel(run: Any) -> Signals:
    """Partition durations from a finished parallel run (duck-typed)."""
    signals = Signals()
    numbers = list(getattr(run, "partition_numbers", []))
    durations = list(getattr(run, "partition_durations_ms", []))
    signals.partition_durations = sorted(zip(numbers, durations))
    return signals


# -- the rules -----------------------------------------------------------------------


def _rule_quarantine_storm(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if s.events_quarantined < cfg.quarantine_min_count or not s.events_fired:
        return None
    ratio = s.events_quarantined / s.events_fired
    if ratio < cfg.quarantine_min_ratio:
        return None
    return Finding(
        rule="quarantine-storm",
        severity="critical",
        message=(
            f"{s.events_quarantined}/{s.events_fired} fired events were "
            f"quarantined ({ratio:.0%}) — the model has large blind spots"
        ),
        signal=ratio,
        threshold=cfg.quarantine_min_ratio,
        action=(
            "check server health / fault injection; raise retry budget "
            "(retry_max_attempts) or fix the failing endpoints"
        ),
        evidence={
            "events_quarantined": s.events_quarantined,
            "events_fired": s.events_fired,
        },
    )


def _rule_cache_collapse(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if s.cache_lookups < cfg.cache_min_lookups:
        return None
    hit_rate = s.cache_hits / s.cache_lookups
    if hit_rate >= cfg.cache_min_hit_rate:
        return None
    return Finding(
        rule="cache-collapse",
        severity="warning",
        message=(
            f"hot-node cache hit rate {hit_rate:.0%} over {s.cache_lookups} "
            f"lookups — the cache is not earning its keep"
        ),
        signal=hit_rate,
        threshold=cfg.cache_min_hit_rate,
        action=(
            "inspect hot-node signatures (trace doctor shows the top "
            "misses): argument-varying calls never repeat; consider "
            "widening the signature normalization"
        ),
        evidence={"cache_hits": s.cache_hits, "cache_lookups": s.cache_lookups},
    )


def _rule_state_cap(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if s.states_capped < 1:
        return None
    return Finding(
        rule="state-cap-truncation",
        severity="warning",
        message=(
            f"{s.states_capped} new state(s) rejected by the per-page "
            f"state cap — content is being hidden from the index"
        ),
        signal=float(s.states_capped),
        threshold=1.0,
        action="raise CrawlerConfig.max_states_per_page or tighten the event filter",
        evidence={"states_capped": s.states_capped},
    )


def _rule_retry_amplification(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if s.retries < cfg.retry_min_count or not s.network_requests:
        return None
    ratio = s.retries / s.network_requests
    if ratio < cfg.retry_min_ratio:
        return None
    return Finding(
        rule="retry-amplification",
        severity="warning",
        message=(
            f"{s.retries} retries against {s.network_requests} completed "
            f"requests ({ratio:.0%}) — backoff time dominates the crawl"
        ),
        signal=ratio,
        threshold=cfg.retry_min_ratio,
        action=(
            "server is flaky: check fault rate; lower retry_max_attempts "
            "or fix the origin before recrawling"
        ),
        evidence={"retries": s.retries, "network_requests": s.network_requests},
    )


def _rule_partition_skew(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if len(s.partition_durations) < cfg.skew_min_partitions:
        return None
    durations = [d for _, d in s.partition_durations]
    mean = sum(durations) / len(durations)
    if mean <= 0:
        return None
    worst_partition, worst = max(s.partition_durations, key=lambda p: p[1])
    skew = worst / mean
    if skew < cfg.skew_max_ratio:
        return None
    return Finding(
        rule="partition-skew",
        severity="warning",
        message=(
            f"partition {worst_partition} ran {skew:.1f}x the mean partition "
            f"duration — the straggler caps parallel speedup"
        ),
        signal=skew,
        threshold=cfg.skew_max_ratio,
        action=(
            "rebalance the URL partitioner (split the straggler partition) "
            "or raise num_proc_lines past the partition count"
        ),
        evidence={
            "straggler_partition": worst_partition,
            "straggler_ms": worst,
            "mean_ms": mean,
            "partitions": len(durations),
        },
    )


def _rule_hash_regression(s: Signals, cfg: DoctorConfig) -> Optional[Finding]:
    if s.hash_incremental_passes < cfg.hash_min_incremental_passes:
        return None
    total = s.hash_nodes_hashed + s.hash_nodes_skipped
    if not total:
        return None
    skip_rate = s.hash_nodes_skipped / total
    if skip_rate >= cfg.hash_min_skip_rate:
        return None
    return Finding(
        rule="hash-regression",
        severity="warning",
        message=(
            f"incremental hashing only skipped {skip_rate:.0%} of DOM nodes "
            f"over {s.hash_incremental_passes} incremental pass(es) — the "
            f"Merkle caches are not being reused"
        ),
        signal=skip_rate,
        threshold=cfg.hash_min_skip_rate,
        action=(
            "events are dirtying most of the tree (or caches are being "
            "invalidated wholesale): check dirty-propagation in repro.dom"
        ),
        evidence={
            "nodes_hashed": s.hash_nodes_hashed,
            "nodes_skipped": s.hash_nodes_skipped,
            "incremental_passes": s.hash_incremental_passes,
        },
    )


#: Every rule, in report order.
RULES = (
    _rule_quarantine_storm,
    _rule_cache_collapse,
    _rule_state_cap,
    _rule_retry_amplification,
    _rule_partition_skew,
    _rule_hash_regression,
)


# -- entry points --------------------------------------------------------------------


def diagnose(
    events: Optional[Iterable[TraceEvent]] = None,
    metrics: Optional[Any] = None,
    parallel: Optional[Any] = None,
    config: DoctorConfig = DEFAULT_DOCTOR_CONFIG,
) -> list[Finding]:
    """Run every rule over the available evidence.

    Any combination of sources may be given; their signals are
    reconciled by ``max`` (they describe the same crawl).
    """
    signals = Signals()
    if events is not None:
        signals.merge_max(signals_from_events(list(events)))
    if metrics is not None:
        signals.merge_max(signals_from_metrics(metrics))
    if parallel is not None:
        signals.merge_max(signals_from_parallel(parallel))
    findings = []
    for rule in RULES:
        finding = rule(signals, config)
        if finding is not None:
            findings.append(finding)
    return findings


def format_findings(findings: list[Finding]) -> str:
    """Render a findings list the way ``trace doctor`` prints it."""
    if not findings:
        return "doctor: no findings — crawl looks healthy"
    lines = [f"doctor: {len(findings)} finding(s)"]
    for finding in findings:
        lines.append(f"[{finding.severity}] {finding.rule}: {finding.message}")
        lines.append(
            f"    signal={finding.signal:.4g} threshold={finding.threshold:.4g}"
        )
        lines.append(f"    action: {finding.action}")
    return "\n".join(lines)
